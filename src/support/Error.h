//===- support/Error.h - Error types for the MaJIC system ------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Error handling primitives.
///
/// Two kinds of failure exist in the system:
///
///  - MATLAB *runtime errors* (dimension mismatch, undefined variable, bad
///    subscript, ...). These unwind arbitrarily deep evaluation stacks in the
///    interpreter and the register VM, so they are modeled as a single C++
///    exception type, MatlabError. They are always caught at the Session
///    boundary and reported as diagnostics; they never escape the library.
///
///  - *Compile-time* failures (parse errors, unsupported constructs). These
///    are reported through Diagnostics and signalled by Expected<T> returns.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_ERROR_H
#define MAJIC_SUPPORT_ERROR_H

#include "support/SourceLoc.h"

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace majic {

/// A MATLAB-level runtime error ("??? Undefined function or variable 'x'").
///
/// Thrown by the interpreter, the runtime library and the register VM;
/// caught at the Session/Engine boundary.
class MatlabError {
public:
  explicit MatlabError(std::string Message, SourceLoc Loc = SourceLoc())
      : Message(std::move(Message)), Loc(Loc) {}

  const std::string &message() const { return Message; }
  SourceLoc loc() const { return Loc; }

private:
  std::string Message;
  SourceLoc Loc;
};

/// Lightweight Expected: holds either a value or an error message.
///
/// Used on compile-time paths (parsing, inference setup) where failure is
/// expected and must be propagated to the caller without exceptions.
template <typename T> class Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}

  /// Constructs a failure state carrying \p Message.
  static Expected failure(std::string Message) {
    Expected E;
    E.Message = std::move(Message);
    return E;
  }

  explicit operator bool() const { return Value.has_value(); }

  T &operator*() {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  const T &operator*() const {
    assert(Value && "dereferencing failed Expected");
    return *Value;
  }
  T *operator->() {
    assert(Value && "dereferencing failed Expected");
    return &*Value;
  }

  /// The error message; only meaningful when in the failure state.
  const std::string &error() const { return Message; }

private:
  Expected() = default;

  std::optional<T> Value;
  std::string Message;
};

/// Aborts with \p Message; marks code paths that indicate internal bugs.
[[noreturn]] void reportUnreachable(const char *Message, const char *File,
                                    unsigned Line);

#define majic_unreachable(MSG) ::majic::reportUnreachable(MSG, __FILE__, __LINE__)

} // namespace majic

#endif // MAJIC_SUPPORT_ERROR_H
