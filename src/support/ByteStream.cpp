//===- support/ByteStream.cpp - Bounds-checked byte (de)coding -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/ByteStream.h"

#include <cstring>

using namespace majic;
using namespace majic::ser;

//===----------------------------------------------------------------------===//
// ByteWriter
//===----------------------------------------------------------------------===//

void ByteWriter::u32(uint32_t V) {
  for (int I = 0; I != 4; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void ByteWriter::u64(uint64_t V) {
  for (int I = 0; I != 8; ++I)
    Buf.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void ByteWriter::f64(double V) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  u64(Bits);
}

void ByteWriter::str(const std::string &S) {
  u32(static_cast<uint32_t>(S.size()));
  Buf.append(S);
}

//===----------------------------------------------------------------------===//
// ByteReader
//===----------------------------------------------------------------------===//

void ByteReader::need(size_t N) {
  if (remaining() < N)
    throw SerializeError("truncated input");
}

uint8_t ByteReader::u8() {
  need(1);
  return *P++;
}

uint32_t ByteReader::u32() {
  need(4);
  uint32_t V = 0;
  for (int I = 0; I != 4; ++I)
    V |= static_cast<uint32_t>(P[I]) << (8 * I);
  P += 4;
  return V;
}

uint64_t ByteReader::u64() {
  need(8);
  uint64_t V = 0;
  for (int I = 0; I != 8; ++I)
    V |= static_cast<uint64_t>(P[I]) << (8 * I);
  P += 8;
  return V;
}

double ByteReader::f64() {
  uint64_t Bits = u64();
  double V;
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

std::string ByteReader::str() {
  uint32_t Len = u32();
  need(Len);
  std::string S(reinterpret_cast<const char *>(P), Len);
  P += Len;
  return S;
}

uint32_t ByteReader::arrayLen(size_t MinElemBytes) {
  uint32_t N = u32();
  if (MinElemBytes && static_cast<uint64_t>(N) * MinElemBytes > remaining())
    throw SerializeError("array length exceeds remaining bytes");
  return N;
}
