//===- support/Casting.h - isa/cast/dyn_cast -------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style hand-rolled RTTI. A class opts in by providing
/// `static bool classof(const Base *)`; these templates then provide
/// isa<>, cast<> and dyn_cast<>.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_CASTING_H
#define MAJIC_SUPPORT_CASTING_H

#include <cassert>

namespace majic {

template <typename To, typename From> bool isa(const From *V) {
  assert(V && "isa<> on a null pointer");
  return To::classof(V);
}

template <typename To, typename From> To *cast(From *V) {
  assert(isa<To>(V) && "cast<> to incompatible type");
  return static_cast<To *>(V);
}

template <typename To, typename From> const To *cast(const From *V) {
  assert(isa<To>(V) && "cast<> to incompatible type");
  return static_cast<const To *>(V);
}

template <typename To, typename From> To *dyn_cast(From *V) {
  return V && To::classof(V) ? static_cast<To *>(V) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *V) {
  return V && To::classof(V) ? static_cast<const To *>(V) : nullptr;
}

} // namespace majic

#endif // MAJIC_SUPPORT_CASTING_H
