//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers and the per-phase timing used to reproduce Figure 6
/// (the composition of JIT execution time).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_TIMER_H
#define MAJIC_SUPPORT_TIMER_H

#include <array>
#include <chrono>
#include <cstddef>

namespace majic {

/// A simple monotonic stopwatch returning seconds.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// The compiler/executor phases whose times Figure 6 decomposes.
enum class Phase : unsigned {
  Parse,
  Disambiguate,
  TypeInference,
  CodeGen,
  Execute,
  NumPhases
};

/// Accumulates wall-clock seconds per phase.
class PhaseTimes {
public:
  void add(Phase P, double Seconds) {
    Times[static_cast<size_t>(P)] += Seconds;
  }
  double get(Phase P) const { return Times[static_cast<size_t>(P)]; }
  double total() const {
    double Sum = 0;
    for (double T : Times)
      Sum += T;
    return Sum;
  }
  void clear() { Times.fill(0.0); }

  static const char *phaseName(Phase P);

private:
  std::array<double, static_cast<size_t>(Phase::NumPhases)> Times{};
};

/// RAII helper that adds its lifetime to a PhaseTimes bucket.
class ScopedPhaseTimer {
public:
  ScopedPhaseTimer(PhaseTimes &PT, Phase P) : PT(PT), P(P) {}
  ~ScopedPhaseTimer() { PT.add(P, T.seconds()); }

  ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
  ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

private:
  PhaseTimes &PT;
  Phase P;
  Timer T;
};

} // namespace majic

#endif // MAJIC_SUPPORT_TIMER_H
