//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timers and the per-phase timing used to reproduce Figure 6
/// (the composition of JIT execution time).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_TIMER_H
#define MAJIC_SUPPORT_TIMER_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>

namespace majic {

/// A simple monotonic stopwatch returning seconds.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

/// The compiler/executor phases whose times Figure 6 decomposes.
enum class Phase : unsigned {
  Parse,
  Disambiguate,
  TypeInference,
  CodeGen,
  Execute,
  NumPhases
};

/// Accumulates wall-clock seconds per phase. Buckets are atomic so
/// background compile workers can record inference/codegen time while the
/// main thread times parse/execute phases.
class PhaseTimes {
public:
  void add(Phase P, double Seconds) {
    std::atomic<double> &Bucket = Times[static_cast<size_t>(P)];
    double Cur = Bucket.load(std::memory_order_relaxed);
    while (!Bucket.compare_exchange_weak(Cur, Cur + Seconds,
                                         std::memory_order_relaxed)) {
    }
  }
  double get(Phase P) const {
    return Times[static_cast<size_t>(P)].load(std::memory_order_relaxed);
  }
  double total() const {
    double Sum = 0;
    for (const std::atomic<double> &T : Times)
      Sum += T.load(std::memory_order_relaxed);
    return Sum;
  }
  void clear() {
    for (std::atomic<double> &T : Times)
      T.store(0.0, std::memory_order_relaxed);
  }

  static const char *phaseName(Phase P);

private:
  std::array<std::atomic<double>, static_cast<size_t>(Phase::NumPhases)>
      Times{};
};

/// RAII helper that adds its lifetime to a PhaseTimes bucket.
class ScopedPhaseTimer {
public:
  ScopedPhaseTimer(PhaseTimes &PT, Phase P) : PT(PT), P(P) {}
  ~ScopedPhaseTimer() { PT.add(P, T.seconds()); }

  ScopedPhaseTimer(const ScopedPhaseTimer &) = delete;
  ScopedPhaseTimer &operator=(const ScopedPhaseTimer &) = delete;

private:
  PhaseTimes &PT;
  Phase P;
  Timer T;
};

} // namespace majic

#endif // MAJIC_SUPPORT_TIMER_H
