//===- support/Support.cpp - Support library implementation --------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Diagnostics.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace majic;

void majic::reportUnreachable(const char *Message, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "majic internal error at %s:%u: %s\n", File, Line,
               Message);
  std::abort();
}

//===----------------------------------------------------------------------===//
// SourceManager
//===----------------------------------------------------------------------===//

uint32_t SourceManager::addBuffer(std::string Name, std::string Contents) {
  Files.push_back({std::move(Name), std::move(Contents)});
  return static_cast<uint32_t>(Files.size()); // Ids are 1-based.
}

const std::string &SourceManager::bufferName(uint32_t FileId) const {
  assert(FileId >= 1 && FileId <= Files.size() && "bad FileId");
  return Files[FileId - 1].Name;
}

const std::string &SourceManager::bufferContents(uint32_t FileId) const {
  assert(FileId >= 1 && FileId <= Files.size() && "bad FileId");
  return Files[FileId - 1].Contents;
}

std::string SourceManager::describe(SourceLoc Loc) const {
  if (!Loc.isValid() || Loc.FileId == 0 || Loc.FileId > Files.size())
    return "<unknown>";
  return format("%s:%u:%u", Files[Loc.FileId - 1].Name.c_str(), Loc.Line,
                Loc.Col);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

std::string Diagnostics::render(const SourceManager &SM) const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    const char *Kind = D.Kind == DiagKind::Error     ? "error"
                       : D.Kind == DiagKind::Warning ? "warning"
                                                     : "note";
    Out += format("%s: %s: %s\n", SM.describe(D.Loc).c_str(), Kind,
                  D.Message.c_str());
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// PhaseTimes
//===----------------------------------------------------------------------===//

const char *PhaseTimes::phaseName(Phase P) {
  switch (P) {
  case Phase::Parse:
    return "parse";
  case Phase::Disambiguate:
    return "disamb";
  case Phase::TypeInference:
    return "typeinf";
  case Phase::CodeGen:
    return "codegen";
  case Phase::Execute:
    return "exec";
  case Phase::NumPhases:
    break;
  }
  majic_unreachable("invalid phase");
}

//===----------------------------------------------------------------------===//
// String utilities
//===----------------------------------------------------------------------===//

std::string majic::format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list Copy;
  va_copy(Copy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  std::string Out(Size > 0 ? static_cast<size_t>(Size) : 0, '\0');
  if (Size > 0)
    std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  va_end(Args);
  return Out;
}

std::vector<std::string> majic::splitString(const std::string &S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string::npos) {
      Parts.push_back(S.substr(Start));
      return Parts;
    }
    Parts.push_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

bool majic::endsWith(const std::string &S, const std::string &Suffix) {
  return S.size() >= Suffix.size() &&
         S.compare(S.size() - Suffix.size(), Suffix.size(), Suffix) == 0;
}

std::string majic::formatDouble(double X) {
  // Integral values shorter than 2^53 print without a decimal point, the
  // way MATLAB's short-g display does.
  if (X == static_cast<long long>(X) && X > -1e15 && X < 1e15)
    return format("%lld", static_cast<long long>(X));
  std::string S = format("%.5g", X);
  return S;
}

std::string majic::cIdentifier(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 1);
  for (char C : S) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out.push_back(Ok ? C : '_');
  }
  if (Out.empty() || (Out[0] >= '0' && Out[0] <= '9'))
    Out.insert(Out.begin(), '_');
  return Out;
}

std::string majic::cStringEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (C < 0x20 || C == 0x7f) {
        // Close the literal around the octal escape so a digit that
        // follows cannot be absorbed into it.
        Out += format("\\%03o\" \"", C);
      } else {
        Out.push_back(static_cast<char>(C));
      }
    }
  }
  return Out;
}
