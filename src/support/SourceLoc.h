//===- support/SourceLoc.h - Source locations ------------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and the source manager that owns file buffers.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_SOURCELOC_H
#define MAJIC_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>
#include <vector>

namespace majic {

/// A (file, line, column) location. FileId 0 is reserved for "unknown".
struct SourceLoc {
  uint32_t FileId = 0;
  uint32_t Line = 0;
  uint32_t Col = 0;

  bool isValid() const { return Line != 0; }
};

/// Owns source buffers and maps FileIds back to names.
class SourceManager {
public:
  /// Registers a buffer under \p Name and returns its FileId (>= 1).
  uint32_t addBuffer(std::string Name, std::string Contents);

  const std::string &bufferName(uint32_t FileId) const;
  const std::string &bufferContents(uint32_t FileId) const;
  size_t numBuffers() const { return Files.size(); }

  /// Renders \p Loc as "name:line:col" (or "<unknown>").
  std::string describe(SourceLoc Loc) const;

private:
  struct File {
    std::string Name;
    std::string Contents;
  };
  std::vector<File> Files;
};

} // namespace majic

#endif // MAJIC_SUPPORT_SOURCELOC_H
