//===- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string and small string predicates.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_STRINGUTILS_H
#define MAJIC_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace majic {

/// printf into a std::string.
std::string format(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// True if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

/// Renders a double the way the MATLAB "format short g" display would,
/// trimming trailing zeros (used by disp/printing and golden tests).
std::string formatDouble(double X);

/// Maps \p S to a valid C identifier: non-[A-Za-z0-9_] characters become
/// '_', and a leading digit (or empty input) gains an underscore prefix.
/// The C emitter and the native compiler driver must agree on the entry
/// symbol a function name produces; both go through here.
std::string cIdentifier(const std::string &S);

/// Escapes \p S for splicing between double quotes in generated C source:
/// backslash, quote, and non-printing bytes (octal escapes, split so a
/// following digit cannot extend them).
std::string cStringEscape(const std::string &S);

} // namespace majic

#endif // MAJIC_SUPPORT_STRINGUTILS_H
