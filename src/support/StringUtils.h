//===- support/StringUtils.h - Small string helpers ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style formatting into std::string and small string predicates.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_STRINGUTILS_H
#define MAJIC_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace majic {

/// printf into a std::string.
std::string format(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Splits \p S on \p Sep, keeping empty fields.
std::vector<std::string> splitString(const std::string &S, char Sep);

/// True if \p S ends with \p Suffix.
bool endsWith(const std::string &S, const std::string &Suffix);

/// Renders a double the way the MATLAB "format short g" display would,
/// trimming trailing zeros (used by disp/printing and golden tests).
std::string formatDouble(double X);

} // namespace majic

#endif // MAJIC_SUPPORT_STRINGUTILS_H
