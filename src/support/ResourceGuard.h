//===- support/ResourceGuard.h - Memory and interrupt guards ---*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource guards for the execution pipeline:
///
///  - mem::  process-wide live-allocation accounting for Value storage and
///    kernel packing buffers. A byte limit turns a runaway allocation into
///    std::bad_alloc at the allocation site, which the runtime maps to a
///    recoverable MatlabError instead of an OS-level OOM kill. The
///    TrackingAllocator plugs the accounting into std::vector with no
///    change to container semantics.
///
///  - exec:: the cooperative interrupt flag (Ctrl-C semantics). Long-running
///    work polls it at cheap boundaries - the VM dispatch loop, interpreter
///    statements, parallelFor chunks - and unwinds with a clean MatlabError,
///    leaving engine state intact.
///
/// Both are process-wide: the accounting must be visible from compute and
/// compilation workers, and an interrupt targets whatever the process is
/// doing on the user's behalf.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_RESOURCEGUARD_H
#define MAJIC_SUPPORT_RESOURCEGUARD_H

#include <cstddef>
#include <cstdint>
#include <new>

namespace majic {
namespace mem {

/// Sets the live-byte ceiling; 0 disables the limit. Allocations that would
/// push liveBytes() past the ceiling fail with std::bad_alloc.
void setLimitBytes(uint64_t Bytes);
uint64_t limitBytes();

/// Bytes currently live in tracked containers, and the lifetime high-water
/// mark.
uint64_t liveBytes();
uint64_t peakBytes();

/// Accounts \p Bytes of allocation; throws std::bad_alloc when the limit
/// would be exceeded (the charge is rolled back first).
void charge(size_t Bytes);
void release(size_t Bytes);

/// std::allocator with live-byte accounting and limit enforcement.
template <typename T> struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U> &) noexcept {}

  T *allocate(size_t N) {
    charge(N * sizeof(T));
    try {
      return static_cast<T *>(::operator new(N * sizeof(T)));
    } catch (...) {
      release(N * sizeof(T));
      throw;
    }
  }
  void deallocate(T *P, size_t N) noexcept {
    release(N * sizeof(T));
    ::operator delete(P);
  }

  template <typename U>
  bool operator==(const TrackingAllocator<U> &) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const TrackingAllocator<U> &) const noexcept {
    return false;
  }
};

} // namespace mem

namespace exec {

/// Requests cooperative cancellation of in-flight execution. Sticky until
/// cleared: new invocations fail fast while the flag is up.
void requestInterrupt();
void clearInterrupt();
bool interruptRequested();

/// Throws MatlabError("execution interrupted") when the flag is set; the
/// polling points in the VM, interpreter and parallelFor call this.
void pollInterrupt();

} // namespace exec
} // namespace majic

#endif // MAJIC_SUPPORT_RESOURCEGUARD_H
