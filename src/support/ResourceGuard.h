//===- support/ResourceGuard.h - Memory and interrupt guards ---*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Resource guards for the execution pipeline:
///
///  - mem::  process-wide live-allocation accounting for Value storage and
///    kernel packing buffers. A byte limit turns a runaway allocation into
///    std::bad_alloc at the allocation site, which the runtime maps to a
///    recoverable MatlabError instead of an OS-level OOM kill. The
///    TrackingAllocator plugs the accounting into std::vector with no
///    change to container semantics.
///
///  - exec:: the cooperative interrupt flag (Ctrl-C semantics). Long-running
///    work polls it at cheap boundaries - the VM dispatch loop, interpreter
///    statements, parallelFor chunks - and unwinds with a clean MatlabError,
///    leaving engine state intact.
///
/// Both have a process-wide half (the accounting must be visible from
/// compute and compilation workers; a Ctrl-C targets whatever the process
/// is doing) and a *per-session* half for the multi-session service: a
/// mem::Account scopes a byte budget to one session's work, an exec::Token
/// scopes an interrupt to one session. Both are installed thread-locally
/// around a session's request (and propagated into parallelFor chunks by
/// support/Parallel.cpp) so N sessions in one process cannot exhaust - or
/// interrupt - each other.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SUPPORT_RESOURCEGUARD_H
#define MAJIC_SUPPORT_RESOURCEGUARD_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>

namespace majic {
namespace mem {

/// Sets the live-byte ceiling; 0 disables the limit. Allocations that would
/// push liveBytes() past the ceiling fail with std::bad_alloc.
void setLimitBytes(uint64_t Bytes);
uint64_t limitBytes();

/// Bytes currently live in tracked containers, and the lifetime high-water
/// mark.
uint64_t liveBytes();
uint64_t peakBytes();

/// Per-session live-byte account. When one is installed on the current
/// thread (ScopedAccount), charge()/release() also debit/credit it and its
/// limit is enforced in addition to the process-wide ceiling, so one
/// session of a multi-session service cannot exhaust the budget of the
/// other N-1 by ganging up on the shared pools. Balances are exact while
/// allocation and release happen under the same session's scope (the
/// overwhelmingly common case); cross-scope frees (e.g. shared compiled
/// constants outliving the session that compiled them) cause bounded
/// drift, clamped at zero - the account is an admission-control budget,
/// not an audit.
class Account {
public:
  void setLimit(uint64_t Bytes) {
    LimitV.store(Bytes, std::memory_order_relaxed);
  }
  uint64_t limit() const { return LimitV.load(std::memory_order_relaxed); }
  uint64_t live() const {
    int64_t L = LiveV.load(std::memory_order_relaxed);
    return L > 0 ? uint64_t(L) : 0;
  }
  uint64_t peak() const { return PeakV.load(std::memory_order_relaxed); }

  /// Debits \p Bytes; returns false (after rolling the debit back) when
  /// the account's limit would be exceeded.
  bool tryCharge(size_t Bytes);
  void release(size_t Bytes) {
    LiveV.fetch_sub(int64_t(Bytes), std::memory_order_relaxed);
  }

private:
  std::atomic<uint64_t> LimitV{0}; ///< 0 = unlimited
  std::atomic<int64_t> LiveV{0};   ///< signed: tolerates cross-scope frees
  std::atomic<uint64_t> PeakV{0};
};

/// The account installed on the calling thread, or null.
Account *currentAccount();

/// Installs \p A (null to clear) and returns the previous installation.
Account *setCurrentAccount(Account *A);

/// RAII installation of a per-session account for the current scope.
struct ScopedAccount {
  explicit ScopedAccount(Account *A) : Prev(setCurrentAccount(A)) {}
  ~ScopedAccount() { setCurrentAccount(Prev); }
  ScopedAccount(const ScopedAccount &) = delete;
  ScopedAccount &operator=(const ScopedAccount &) = delete;

private:
  Account *Prev;
};

/// Accounts \p Bytes of allocation; throws std::bad_alloc when the
/// process-wide limit - or the current thread's session account limit -
/// would be exceeded (the charge is rolled back first).
void charge(size_t Bytes);
void release(size_t Bytes);

/// std::allocator with live-byte accounting and limit enforcement.
template <typename T> struct TrackingAllocator {
  using value_type = T;

  TrackingAllocator() = default;
  template <typename U>
  TrackingAllocator(const TrackingAllocator<U> &) noexcept {}

  T *allocate(size_t N) {
    charge(N * sizeof(T));
    try {
      return static_cast<T *>(::operator new(N * sizeof(T)));
    } catch (...) {
      release(N * sizeof(T));
      throw;
    }
  }
  void deallocate(T *P, size_t N) noexcept {
    release(N * sizeof(T));
    ::operator delete(P);
  }

  template <typename U>
  bool operator==(const TrackingAllocator<U> &) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const TrackingAllocator<U> &) const noexcept {
    return false;
  }
};

} // namespace mem

namespace exec {

/// Requests cooperative cancellation of in-flight execution. Sticky until
/// cleared: new invocations fail fast while the flag is up.
void requestInterrupt();
void clearInterrupt();
bool interruptRequested();

/// Per-session interrupt token. The process-wide flag above answers
/// Ctrl-C; a token answers "stop *that* session" without perturbing the
/// other sessions sharing the process. Polling points see the token
/// installed on their thread (ScopedToken; parallelFor propagates the
/// caller's token into its chunks).
class Token {
public:
  void request() { Flag.store(true, std::memory_order_relaxed); }
  void clear() { Flag.store(false, std::memory_order_relaxed); }
  bool requested() const { return Flag.load(std::memory_order_relaxed); }

private:
  std::atomic<bool> Flag{false};
};

/// The token installed on the calling thread, or null.
Token *currentToken();

/// Installs \p T (null to clear) and returns the previous installation.
Token *setCurrentToken(Token *T);

/// RAII installation of a per-session interrupt token.
struct ScopedToken {
  explicit ScopedToken(Token *T) : Prev(setCurrentToken(T)) {}
  ~ScopedToken() { setCurrentToken(Prev); }
  ScopedToken(const ScopedToken &) = delete;
  ScopedToken &operator=(const ScopedToken &) = delete;

private:
  Token *Prev;
};

/// Throws MatlabError("execution interrupted") when the process-wide flag
/// or the current thread's session token is set; the polling points in the
/// VM, interpreter and parallelFor call this.
void pollInterrupt();

} // namespace exec
} // namespace majic

#endif // MAJIC_SUPPORT_RESOURCEGUARD_H
