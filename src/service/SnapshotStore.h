//===- service/SnapshotStore.h - Hibernated workspaces on disk -*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk side of session hibernation: one `session-<id>.mjws` file
/// per hibernated workspace under MAJIC_SESSION_DIR, written atomically
/// (temp + fsync + rename via support/AtomicFile) and validated on the way
/// back in by runtime/ValueSerialize's ladder. The store's verdicts mirror
/// the `.mjo` code store exactly:
///
///   Ok      the workspace decoded clean; the caller owns deleting the
///           file once the resurrected session is live (a snapshot must
///           never outlive the state it describes, or a later crash could
///           resurrect the past).
///   Missing no snapshot - nothing was ever saved, or a completed
///           resurrect consumed it.
///   Corrupt any ladder rung failed: the file is renamed `*.corrupt`
///           (evidence, and out of the `.mjws` namespace) and the session
///           restarts empty. Version skew is the one exception - routine
///           turnover, deleted silently.
///
/// Fault sites `session-snapshot-save` / `session-snapshot-load` gate the
/// two paths for both throw-mode sweeps (clean failure handling) and
/// kill-mode sweeps (the fork/SIGKILL recovery harness).
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SERVICE_SNAPSHOTSTORE_H
#define MAJIC_SERVICE_SNAPSHOTSTORE_H

#include "runtime/ValueSerialize.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace majic {

class SnapshotStore {
public:
  /// Creates \p Dir if needed. A store whose directory cannot be created
  /// reports every save as failed and every load as Missing.
  explicit SnapshotStore(std::string Dir);

  enum class LoadStatus { Ok, Missing, Corrupt };

  /// Oversized snapshot files are rejected as corrupt before reading:
  /// a torn length field must not drive a giant allocation.
  static constexpr uint64_t kMaxFileBytes = 1ull << 30;

  /// Atomically persists \p Img as session \p Id's snapshot. Returns false
  /// on any failure (including an injected one); a failed save leaves no
  /// partial file and no stale snapshot for \p Id.
  bool save(uint64_t Id, const ser::WorkspaceImage &Img);

  /// Loads and validates session \p Id's snapshot. On Corrupt the file has
  /// already been quarantined (or removed on skew) and a structured
  /// diagnostic printed to stderr.
  LoadStatus load(uint64_t Id, ser::WorkspaceImage &Out);

  /// Deletes session \p Id's snapshot (after a successful resurrect, or
  /// when a hibernated session is destroyed).
  void remove(uint64_t Id);

  /// The session ids with a snapshot on disk, sorted - the recovery sweep
  /// a restarted service runs before admitting traffic.
  std::vector<uint64_t> scan() const;

  /// Removes temp files a crashed save left behind. Call once at startup.
  unsigned sweepTemps();

  std::string pathFor(uint64_t Id) const;
  const std::string &dir() const { return Dir; }
  bool usable() const { return Usable; }

  struct StatsSnapshot {
    uint64_t Saved = 0;
    uint64_t SaveFailures = 0;
    uint64_t Loaded = 0;
    uint64_t Quarantined = 0;
    uint64_t Skewed = 0;
  };
  StatsSnapshot stats() const;

private:
  std::string Dir;
  bool Usable = false;
  mutable std::mutex Mutex;
  StatsSnapshot Stats;
};

} // namespace majic

#endif // MAJIC_SERVICE_SNAPSHOTSTORE_H
