//===- service/SessionManager.cpp - Multi-session engine service ----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SessionManager.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace majic;

namespace {

uint64_t envU64(const char *Name) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return 0;
  return std::strtoull(V, nullptr, 10);
}

} // namespace

const char *majic::replyStatusName(Reply::Status S) {
  switch (S) {
  case Reply::Status::Ok:
    return "ok";
  case Reply::Status::Error:
    return "error";
  case Reply::Status::RejectedOverloaded:
    return "rejected-overloaded";
  case Reply::Status::SessionGone:
    return "session-gone";
  case Reply::Status::ShuttingDown:
    return "shutting-down";
  }
  return "?";
}

SessionManager::SessionManager(ServiceOptions O) : Opts(std::move(O)) {
  if (!Opts.MaxSessions)
    Opts.MaxSessions = unsigned(envU64("MAJIC_MAX_SESSIONS"));
  if (!Opts.MaxSessions)
    Opts.MaxSessions = 64;
  if (!Opts.Workers) {
    unsigned HW = std::thread::hardware_concurrency();
    Opts.Workers = std::min(HW ? HW : 4u, 8u);
  }
  if (!Opts.SpecThreads)
    Opts.SpecThreads = 1;
  if (!Opts.MaxQueuedRequests)
    Opts.MaxQueuedRequests = 4096;
  if (!Opts.MaxQueuedPerSession)
    Opts.MaxQueuedPerSession = 256;
  if (!Opts.ShedQueuedRequests)
    Opts.ShedQueuedRequests = std::max(1u, Opts.MaxQueuedRequests / 2);
  if (!Opts.SessionLimits.MaxOps)
    Opts.SessionLimits.MaxOps = envU64("MAJIC_SESSION_MAX_OPS");
  if (!Opts.SessionLimits.MaxAllocBytes)
    Opts.SessionLimits.MaxAllocBytes = envU64("MAJIC_SESSION_MAX_ALLOC_BYTES");
  if (!Opts.SessionLimits.MaxWallMillis)
    Opts.SessionLimits.MaxWallMillis = envU64("MAJIC_SESSION_MAX_WALL_MILLIS");

  Inst.SessionsCreated = &Metrics.counter("service.sessions.created");
  Inst.SessionsRejected = &Metrics.counter("service.sessions.rejected");
  Inst.SessionsDestroyed = &Metrics.counter("service.sessions.destroyed");
  Inst.SessionsLive = &Metrics.gauge("service.sessions.live");
  Inst.ReqAccepted = &Metrics.counter("service.requests.accepted");
  Inst.ReqRejected = &Metrics.counter("service.requests.rejected");
  Inst.ReqCompleted = &Metrics.counter("service.requests.completed");
  Inst.ReqFailed = &Metrics.counter("service.requests.failed");
  Inst.ReqQueued = &Metrics.gauge("service.requests.queued");
  Inst.ShedEntered = &Metrics.counter("service.shed.entered");
  Inst.ShedExited = &Metrics.counter("service.shed.exited");
  Inst.ShedActive = &Metrics.gauge("service.shed.active");
  Inst.RequestSeconds = &Metrics.histogram("service.request.seconds");
  Inst.QueueSeconds = &Metrics.histogram("service.request.queue_seconds");

  Cache = std::make_shared<SharedCodeCache>(Opts.SharedCacheCapacity);
  Cache->registerMetrics(Metrics);

  // Shared persistent repository: preload yesterday's compiles into the
  // cache, then persist tomorrow's through the publish hook. The preload
  // runs before the hook is installed so warm entries aren't rewritten.
  // Stored objects are keyed optimistic: serving *less* optimized code
  // under an optimistic key is always correct, never the reverse.
  if (!Opts.RepoDir.empty()) {
    Store = std::make_unique<RepoStore>(Opts.RepoDir);
    Store->sweepTemps();
    uint64_t CfgHash = Engine::sharedCacheConfigHash(sessionEngineOptions());
    for (RepoStore::Entry &E : Store->loadAll()) {
      std::string Key =
          SharedCodeCache::key(E.Obj.FunctionName, E.SourceHash, CfgHash,
                               E.Obj.Mode, /*Optimistic=*/true, E.Obj.Sig);
      auto Obj = std::make_shared<CompiledObject>(std::move(E.Obj));
      Cache->publish(Key, std::move(Obj), E.SourceHash);
      Store->noteAdopted();
    }
    Cache->setOnPublish(
        [S = Store.get()](const CompiledObjectPtr &Obj, uint64_t SrcHash) {
          S->save(*Obj, SrcHash);
        });
  }

  SpecPool =
      std::make_unique<ThreadPool>(Opts.SpecThreads, ThreadPool::Priority::Idle);

  Workers.reserve(Opts.Workers);
  for (unsigned I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

SessionManager::~SessionManager() { shutdown(); }

EngineOptions SessionManager::sessionEngineOptions() const {
  EngineOptions E = Opts.Session;
  E.Limits = Opts.SessionLimits;
  E.PerSessionLimits = true;
  E.SharedSpecPool = SpecPool.get(); // null during the preload hash; the
                                     // field is not part of the cfg hash
  E.SharedCache = Cache;
  E.EnvFallbacks = false; // N sessions must not race dumps into one file
  E.ComputeThreads = 1;   // request workers are the service's parallelism
  E.RepoDir.clear();      // persistence is service-wide, not per-session
  E.ProfileDir.clear();
  E.TracePath.clear();
  E.MetricsPath.clear();
  return E;
}

SessionId SessionManager::createSession() {
  // Build the engine outside the manager lock: creation cost must not
  // stall dispatch. The slot is only claimed under the lock afterwards.
  std::unique_ptr<Engine> Eng;
  try {
    faults::maybeThrow(faults::Site::SessionCreate);
    Eng = std::make_unique<Engine>(sessionEngineOptions());
  } catch (...) {
    Inst.SessionsRejected->inc();
    return 0;
  }

  SessionPtr S;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (Stopping || Sessions.size() >= Opts.MaxSessions) {
      Inst.SessionsRejected->inc();
      S = nullptr;
    } else {
      S = std::make_shared<Session>();
      S->Id = NextId++;
      S->Eng = std::move(Eng);
      Sessions.emplace(S->Id, S);
      Inst.SessionsCreated->inc();
      Inst.SessionsLive->set(int64_t(Sessions.size()));
    }
  }
  if (!S) {
    // Rejected after construction: tear the engine down off-lock.
    Eng.reset();
    return 0;
  }
  return S->Id;
}

bool SessionManager::destroySession(SessionId Id) {
  SessionPtr S;
  {
    std::unique_lock<std::mutex> L(Mu);
    auto It = Sessions.find(Id);
    if (It == Sessions.end() || It->second->Closing)
      return false;
    S = It->second;
    S->Closing = true;
    // Accepted requests drain first - they were promised a Reply. The
    // session stays in the ready ring until its queue is empty.
    DrainCv.wait(L, [&] {
      return (S->Queue.empty() && !S->Busy) || Stopping;
    });
    if (Stopping)
      return false; // shutdown() took over every session's teardown
    Sessions.erase(Id);
    Inst.SessionsLive->set(int64_t(Sessions.size()));
    Inst.SessionsDestroyed->inc();
  }
  // Engine teardown off-lock, on the caller's thread: it may wait out an
  // in-flight background compile on the shared pool, and that wait must
  // never hold up other sessions' dispatch.
  S->Eng->shutdown();
  S.reset();
  return true;
}

std::future<Reply> SessionManager::submit(SessionId Id, std::string Text) {
  std::promise<Reply> Rejected;
  std::future<Reply> F = Rejected.get_future();

  std::unique_lock<std::mutex> L(Mu);
  if (Stopping) {
    Inst.ReqRejected->inc();
    Rejected.set_value({Reply::Status::ShuttingDown, ""});
    return F;
  }
  auto It = Sessions.find(Id);
  if (It == Sessions.end() || It->second->Closing) {
    Inst.ReqRejected->inc();
    Rejected.set_value({Reply::Status::SessionGone, ""});
    return F;
  }
  SessionPtr S = It->second;
  bool Faulted = false;
  try {
    faults::maybeThrow(faults::Site::Admission);
  } catch (...) {
    Faulted = true;
  }
  if (Faulted || QueuedTotal >= Opts.MaxQueuedRequests ||
      S->Queue.size() >= Opts.MaxQueuedPerSession) {
    Inst.ReqRejected->inc();
    Rejected.set_value({Reply::Status::RejectedOverloaded, ""});
    return F;
  }

  Request R;
  R.Text = std::move(Text);
  F = R.Promise.get_future();
  S->Queue.push_back(std::move(R));
  ++QueuedTotal;
  Inst.ReqAccepted->inc();
  Inst.ReqQueued->set(int64_t(QueuedTotal));
  enqueueReady(S);
  updateShedLocked();
  L.unlock();
  WorkCv.notify_one();
  return F;
}

bool SessionManager::interrupt(SessionId Id) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return false;
  // Token-based and internally synchronized; only this session's program
  // stops at its next poll point.
  It->second->Eng->requestInterrupt();
  return true;
}

size_t SessionManager::liveSessions() const {
  std::lock_guard<std::mutex> L(Mu);
  return Sessions.size();
}

size_t SessionManager::queuedRequests() const {
  std::lock_guard<std::mutex> L(Mu);
  return QueuedTotal;
}

bool SessionManager::shedding() const {
  std::lock_guard<std::mutex> L(Mu);
  return SheddingFlag;
}

void SessionManager::setWorkersPaused(bool Paused) {
  {
    std::lock_guard<std::mutex> L(Mu);
    WorkersPausedFlag = Paused;
  }
  if (!Paused)
    WorkCv.notify_all();
}

void SessionManager::enqueueReady(const SessionPtr &S) {
  if (S->InReady || S->Busy || S->Queue.empty())
    return;
  S->InReady = true;
  Ready.push_back(S->Id);
}

void SessionManager::updateShedLocked() {
  // Speculation is the first load to go: pause the shared compile pool
  // when the backlog crosses the threshold, resume when it halves.
  // Running compiles finish (pausing is cooperative); queued ones hold,
  // freeing the idle workers' cores for the request backlog.
  if (!SheddingFlag && QueuedTotal >= Opts.ShedQueuedRequests) {
    SheddingFlag = true;
    SpecPool->setPaused(true);
    Inst.ShedEntered->inc();
    Inst.ShedActive->set(1);
  } else if (SheddingFlag && QueuedTotal <= Opts.ShedQueuedRequests / 2) {
    SheddingFlag = false;
    SpecPool->setPaused(false);
    Inst.ShedExited->inc();
    Inst.ShedActive->set(0);
  }
}

Reply SessionManager::runRequest(Session &S, const std::string &Text) {
  try {
    faults::maybeThrow(faults::Site::BudgetCheck);
  } catch (const std::exception &E) {
    return {Reply::Status::Error, std::string("??? ") + E.what() + "\n"};
  }
  std::string Out;
  try {
    Out = S.Eng->runScript(Text);
  } catch (const std::exception &E) {
    S.Eng->clearInterrupt();
    // runScript reports program errors in its output; anything escaping
    // is unexpected - contain it to this reply.
    return {Reply::Status::Error, std::string("??? ") + E.what() + "\n"};
  }
  // An interrupt kills at most the request it raced with; the next one
  // starts clean.
  S.Eng->clearInterrupt();
  // The engine renders program errors as "??? <message>" lines.
  bool HasError =
      Out.rfind("??? ", 0) == 0 || Out.find("\n??? ") != std::string::npos;
  return {HasError ? Reply::Status::Error : Reply::Status::Ok, std::move(Out)};
}

void SessionManager::workerLoop() {
  for (;;) {
    SessionPtr S;
    Request R;
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkCv.wait(L, [this] {
        return Stopping || (!WorkersPausedFlag && !Ready.empty());
      });
      if (Stopping)
        return;
      SessionId Id = Ready.front();
      Ready.pop_front();
      auto It = Sessions.find(Id);
      if (It == Sessions.end())
        continue; // destroyed while queued; its requests were drained
      S = It->second;
      S->InReady = false;
      if (S->Busy || S->Queue.empty())
        continue;
      R = std::move(S->Queue.front());
      S->Queue.pop_front();
      S->Busy = true;
      --QueuedTotal;
      Inst.ReqQueued->set(int64_t(QueuedTotal));
      updateShedLocked();
    }

    Inst.QueueSeconds->observe(R.Queued.seconds());
    Timer Run;
    Reply Rep = runRequest(*S, R.Text);
    Inst.RequestSeconds->observe(Run.seconds());
    (Rep.St == Reply::Status::Ok ? Inst.ReqCompleted : Inst.ReqFailed)->inc();

    bool MoreWork;
    {
      std::lock_guard<std::mutex> L(Mu);
      S->Busy = false;
      // Round-robin fairness: the session rejoins at the *tail*, so a
      // session with an endless stream of requests advances one request
      // per turn of the ring, never starving the others.
      enqueueReady(S);
      MoreWork = !Ready.empty();
      if (S->Closing && S->Queue.empty())
        DrainCv.notify_all();
    }
    R.Promise.set_value(std::move(Rep));
    if (MoreWork)
      WorkCv.notify_one();
  }
}

obs::MetricsSnapshot SessionManager::sampleMetrics() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Inst.SessionsLive->set(int64_t(Sessions.size()));
    Inst.ReqQueued->set(int64_t(QueuedTotal));
    Inst.ShedActive->set(SheddingFlag ? 1 : 0);
  }
  return Metrics.snapshot();
}

std::string SessionManager::metricsJson() {
  sampleMetrics();
  return Metrics.json();
}

void SessionManager::shutdown() {
  std::vector<SessionPtr> Doomed;
  std::vector<Request> Orphans;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (ShutdownDone)
      return;
    ShutdownDone = true;
    Stopping = true;
    for (auto &[Id, S] : Sessions) {
      (void)Id;
      for (Request &R : S->Queue)
        Orphans.push_back(std::move(R));
      S->Queue.clear();
      Doomed.push_back(S);
    }
    Sessions.clear();
    Ready.clear();
    QueuedTotal = 0;
  }
  WorkCv.notify_all();
  DrainCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  // Promises resolve after the workers are gone: a request that was
  // *running* at shutdown still resolved through its worker; only
  // never-started ones land here.
  for (Request &R : Orphans) {
    Inst.ReqFailed->inc();
    R.Promise.set_value({Reply::Status::ShuttingDown, ""});
  }

  // Engine shutdown needs the shared pool's workers awake (it waits out
  // its in-flight compiles), so lift any shed pause first.
  if (SpecPool)
    SpecPool->setPaused(false);
  for (SessionPtr &S : Doomed) {
    S->Eng->shutdown();
    S.reset();
  }
  Doomed.clear();
  SpecPool.reset();

  if (!Opts.MetricsPath.empty()) {
    std::string Json = metricsJson();
    if (FILE *F = std::fopen(Opts.MetricsPath.c_str(), "w")) {
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    }
  }
}
