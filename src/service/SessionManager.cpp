//===- service/SessionManager.cpp - Multi-session engine service ----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SessionManager.h"

#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

using namespace majic;

namespace {

uint64_t envU64(const char *Name) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return 0;
  return std::strtoull(V, nullptr, 10);
}

} // namespace

const char *majic::replyStatusName(Reply::Status S) {
  switch (S) {
  case Reply::Status::Ok:
    return "ok";
  case Reply::Status::Error:
    return "error";
  case Reply::Status::RejectedOverloaded:
    return "rejected-overloaded";
  case Reply::Status::SessionGone:
    return "session-gone";
  case Reply::Status::ShuttingDown:
    return "shutting-down";
  }
  return "?";
}

const char *majic::rejectReasonName(Reply::Reason R) {
  switch (R) {
  case Reply::Reason::None:
    return "none";
  case Reply::Reason::QueueFull:
    return "queue-full";
  case Reply::Reason::BudgetExceeded:
    return "budget-exceeded";
  case Reply::Reason::SessionCapNoIdle:
    return "session-cap-no-idle";
  }
  return "?";
}

SessionManager::SessionManager(ServiceOptions O) : Opts(std::move(O)) {
  if (!Opts.MaxSessions)
    Opts.MaxSessions = unsigned(envU64("MAJIC_MAX_SESSIONS"));
  if (!Opts.MaxSessions)
    Opts.MaxSessions = 64;
  if (!Opts.Workers) {
    unsigned HW = std::thread::hardware_concurrency();
    Opts.Workers = std::min(HW ? HW : 4u, 8u);
  }
  if (!Opts.SpecThreads)
    Opts.SpecThreads = 1;
  if (!Opts.MaxQueuedRequests)
    Opts.MaxQueuedRequests = 4096;
  if (!Opts.MaxQueuedPerSession)
    Opts.MaxQueuedPerSession = 256;
  if (!Opts.ShedQueuedRequests)
    Opts.ShedQueuedRequests = std::max(1u, Opts.MaxQueuedRequests / 2);
  if (!Opts.SessionLimits.MaxOps)
    Opts.SessionLimits.MaxOps = envU64("MAJIC_SESSION_MAX_OPS");
  if (!Opts.SessionLimits.MaxAllocBytes)
    Opts.SessionLimits.MaxAllocBytes = envU64("MAJIC_SESSION_MAX_ALLOC_BYTES");
  if (!Opts.SessionLimits.MaxWallMillis)
    Opts.SessionLimits.MaxWallMillis = envU64("MAJIC_SESSION_MAX_WALL_MILLIS");
  if (Opts.SessionDir.empty())
    if (const char *D = std::getenv("MAJIC_SESSION_DIR"))
      Opts.SessionDir = D;

  Inst.SessionsCreated = &Metrics.counter("service.sessions.created");
  Inst.SessionsRejected = &Metrics.counter("service.sessions.rejected");
  Inst.SessionsDestroyed = &Metrics.counter("service.sessions.destroyed");
  Inst.SessionsLive = &Metrics.gauge("service.sessions.live");
  Inst.ReqAccepted = &Metrics.counter("service.requests.accepted");
  Inst.ReqRejected = &Metrics.counter("service.requests.rejected");
  Inst.ReqCompleted = &Metrics.counter("service.requests.completed");
  Inst.ReqFailed = &Metrics.counter("service.requests.failed");
  Inst.ReqQueued = &Metrics.gauge("service.requests.queued");
  Inst.ShedEntered = &Metrics.counter("service.shed.entered");
  Inst.ShedExited = &Metrics.counter("service.shed.exited");
  Inst.ShedActive = &Metrics.gauge("service.shed.active");
  Inst.RequestSeconds = &Metrics.histogram("service.request.seconds");
  Inst.QueueSeconds = &Metrics.histogram("service.request.queue_seconds");
  Inst.Hibernates = &Metrics.counter("service.hibernates");
  Inst.HibernateFailures = &Metrics.counter("service.hibernate.failures");
  Inst.Resurrects = &Metrics.counter("service.resurrects");
  Inst.ResurrectCorrupt = &Metrics.counter("service.resurrect.corrupt");
  Inst.NoIdleRejects = &Metrics.counter("service.rejected.no_idle");
  Inst.SessionsHibernated = &Metrics.gauge("service.sessions.hibernated");
  Inst.HibernateSeconds = &Metrics.histogram("service.hibernate.seconds");
  Inst.ResurrectSeconds = &Metrics.histogram("service.resurrect.seconds");

  Cache = std::make_shared<SharedCodeCache>(Opts.SharedCacheCapacity);
  Cache->registerMetrics(Metrics);

  // Shared persistent repository: preload yesterday's compiles into the
  // cache, then persist tomorrow's through the publish hook. The preload
  // runs before the hook is installed so warm entries aren't rewritten.
  // Stored objects are keyed optimistic: serving *less* optimized code
  // under an optimistic key is always correct, never the reverse.
  if (!Opts.RepoDir.empty()) {
    Store = std::make_unique<RepoStore>(Opts.RepoDir);
    Store->sweepTemps();
    uint64_t CfgHash = Engine::sharedCacheConfigHash(sessionEngineOptions());
    for (RepoStore::Entry &E : Store->loadAll()) {
      std::string Key =
          SharedCodeCache::key(E.Obj.FunctionName, E.SourceHash, CfgHash,
                               E.Obj.Mode, /*Optimistic=*/true, E.Obj.Sig);
      auto Obj = std::make_shared<CompiledObject>(std::move(E.Obj));
      Cache->publish(Key, std::move(Obj), E.SourceHash);
      Store->noteAdopted();
    }
    Cache->setOnPublish(
        [S = Store.get()](const CompiledObjectPtr &Obj, uint64_t SrcHash) {
          S->save(*Obj, SrcHash);
        });
  }

  // Recovery sweep: before any traffic is admitted, clear torn temp files
  // a crashed save left behind and re-register every hibernated session
  // found on disk. A snapshot that turns out corrupt is only discovered -
  // and quarantined - at resurrect time; registration trusts nothing but
  // the file name. NextId advances past every recovered id so new
  // sessions can never collide with a hibernated one.
  if (!Opts.SessionDir.empty()) {
    Snapshots = std::make_unique<SnapshotStore>(Opts.SessionDir);
    Snapshots->sweepTemps();
    for (uint64_t Id : Snapshots->scan()) {
      auto S = std::make_shared<Session>();
      S->Id = Id;
      S->Hibernated = true;
      Sessions.emplace(Id, S);
      NextId = std::max(NextId, Id + 1);
    }
    Inst.SessionsHibernated->set(int64_t(hibernatedCountLocked()));
  }

  SpecPool =
      std::make_unique<ThreadPool>(Opts.SpecThreads, ThreadPool::Priority::Idle);

  Workers.reserve(Opts.Workers);
  for (unsigned I = 0; I < Opts.Workers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

SessionManager::~SessionManager() { shutdown(); }

EngineOptions SessionManager::sessionEngineOptions() const {
  EngineOptions E = Opts.Session;
  E.Limits = Opts.SessionLimits;
  E.PerSessionLimits = true;
  E.SharedSpecPool = SpecPool.get(); // null during the preload hash; the
                                     // field is not part of the cfg hash
  E.SharedCache = Cache;
  E.EnvFallbacks = false; // N sessions must not race dumps into one file
  E.ComputeThreads = 1;   // request workers are the service's parallelism
  E.RepoDir.clear();      // persistence is service-wide, not per-session
  E.ProfileDir.clear();
  E.TracePath.clear();
  E.MetricsPath.clear();
  return E;
}

SessionId SessionManager::createSession() {
  // Build the engine outside the manager lock: creation cost must not
  // stall dispatch. The slot is only claimed under the lock afterwards.
  std::unique_ptr<Engine> Eng;
  try {
    faults::maybeThrow(faults::Site::SessionCreate);
    Eng = std::make_unique<Engine>(sessionEngineOptions());
  } catch (...) {
    Inst.SessionsRejected->inc();
    return 0;
  }

  SessionPtr S;
  {
    std::unique_lock<std::mutex> L(Mu);
    // At the cap, hibernate the LRU idle session to free a slot; the loop
    // re-checks because freeSlotLocked drops the lock and a concurrent
    // creator may claim the slot it freed.
    while (!Stopping && LiveEngines >= Opts.MaxSessions)
      if (!freeSlotLocked(L))
        break;
    if (Stopping || LiveEngines >= Opts.MaxSessions) {
      Inst.SessionsRejected->inc();
      S = nullptr;
    } else {
      S = std::make_shared<Session>();
      S->Id = NextId++;
      S->Eng = std::move(Eng);
      S->LastUsed = ++UseTick;
      ++LiveEngines;
      Sessions.emplace(S->Id, S);
      Inst.SessionsCreated->inc();
      Inst.SessionsLive->set(int64_t(LiveEngines));
    }
  }
  if (!S) {
    // Rejected after construction: tear the engine down off-lock.
    Eng.reset();
    return 0;
  }
  return S->Id;
}

bool SessionManager::destroySession(SessionId Id) {
  SessionPtr S;
  bool WasHibernated = false;
  {
    std::unique_lock<std::mutex> L(Mu);
    auto It = Sessions.find(Id);
    if (It == Sessions.end() || It->second->Closing)
      return false;
    S = It->second;
    S->Closing = true;
    // Accepted requests drain first - they were promised a Reply. The
    // session stays in the ready ring until its queue is empty. Busy also
    // covers an in-flight hibernate/resurrect of this session.
    DrainCv.wait(L, [&] {
      return (S->Queue.empty() && !S->Busy) || Stopping;
    });
    if (Stopping)
      return false; // shutdown() took over every session's teardown
    WasHibernated = S->Hibernated;
    if (S->Eng)
      --LiveEngines;
    Sessions.erase(Id);
    Inst.SessionsLive->set(int64_t(LiveEngines));
    Inst.SessionsHibernated->set(int64_t(hibernatedCountLocked()));
    Inst.SessionsDestroyed->inc();
  }
  // Engine teardown off-lock, on the caller's thread: it may wait out an
  // in-flight background compile on the shared pool, and that wait must
  // never hold up other sessions' dispatch.
  if (S->Eng)
    S->Eng->shutdown();
  S.reset();
  // A destroyed session's snapshot must not resurrect as a ghost at the
  // next service start.
  if (WasHibernated && Snapshots)
    Snapshots->remove(Id);
  return true;
}

std::future<Reply> SessionManager::submit(SessionId Id, std::string Text) {
  std::promise<Reply> Rejected;
  std::future<Reply> F = Rejected.get_future();

  std::unique_lock<std::mutex> L(Mu);
  if (Stopping) {
    Inst.ReqRejected->inc();
    Rejected.set_value({Reply::Status::ShuttingDown, ""});
    return F;
  }
  auto It = Sessions.find(Id);
  if (It == Sessions.end() || It->second->Closing) {
    Inst.ReqRejected->inc();
    Rejected.set_value({Reply::Status::SessionGone, ""});
    return F;
  }
  SessionPtr S = It->second;
  bool Faulted = false;
  try {
    faults::maybeThrow(faults::Site::Admission);
  } catch (...) {
    Faulted = true;
  }
  if (Faulted || QueuedTotal >= Opts.MaxQueuedRequests) {
    Inst.ReqRejected->inc();
    Rejected.set_value(
        {Reply::Status::RejectedOverloaded, "", Reply::Reason::QueueFull});
    return F;
  }
  if (S->Queue.size() >= Opts.MaxQueuedPerSession) {
    Inst.ReqRejected->inc();
    Rejected.set_value({Reply::Status::RejectedOverloaded, "",
                        Reply::Reason::BudgetExceeded});
    return F;
  }

  // A request for a hibernated session resurrects it transparently -
  // after securing a live slot, hibernating someone else's idle session
  // if need be. Only when nothing is idle does admission reject, and the
  // reason says so: this rejection is retryable the moment any session
  // goes quiet. Busy means another thread's resurrect is already in
  // flight; just queue behind it.
  bool NeedResurrect = S->Hibernated && !S->Busy;
  if (NeedResurrect) {
    while (!Stopping && !S->Closing && S->Hibernated && !S->Busy &&
           LiveEngines >= Opts.MaxSessions)
      if (!freeSlotLocked(L))
        break;
    // freeSlotLocked drops the lock; every precondition needs a re-check.
    if (Stopping) {
      Inst.ReqRejected->inc();
      Rejected.set_value({Reply::Status::ShuttingDown, ""});
      return F;
    }
    if (S->Closing) {
      Inst.ReqRejected->inc();
      Rejected.set_value({Reply::Status::SessionGone, ""});
      return F;
    }
    NeedResurrect = S->Hibernated && !S->Busy;
    if (NeedResurrect && LiveEngines >= Opts.MaxSessions) {
      Inst.ReqRejected->inc();
      Inst.NoIdleRejects->inc();
      Rejected.set_value({Reply::Status::RejectedOverloaded, "",
                          Reply::Reason::SessionCapNoIdle});
      return F;
    }
  }

  Request R;
  R.Text = std::move(Text);
  F = R.Promise.get_future();
  S->Queue.push_back(std::move(R));
  ++QueuedTotal;
  S->LastUsed = ++UseTick;
  Inst.ReqAccepted->inc();
  Inst.ReqQueued->set(int64_t(QueuedTotal));
  if (NeedResurrect)
    resurrectLocked(L, S); // ends with enqueueReady(S)
  else
    enqueueReady(S);
  updateShedLocked();
  L.unlock();
  WorkCv.notify_one();
  return F;
}

bool SessionManager::interrupt(SessionId Id) {
  std::lock_guard<std::mutex> L(Mu);
  auto It = Sessions.find(Id);
  if (It == Sessions.end() || !It->second->Eng)
    return false; // hibernated (or mid-move): nothing is running
  // Token-based and internally synchronized; only this session's program
  // stops at its next poll point.
  It->second->Eng->requestInterrupt();
  return true;
}

size_t SessionManager::liveSessions() const {
  std::lock_guard<std::mutex> L(Mu);
  return LiveEngines;
}

size_t SessionManager::hibernatedSessions() const {
  std::lock_guard<std::mutex> L(Mu);
  return hibernatedCountLocked();
}

size_t SessionManager::hibernatedCountLocked() const {
  size_t N = 0;
  for (const auto &[Id, S] : Sessions) {
    (void)Id;
    N += S->Hibernated;
  }
  return N;
}

size_t SessionManager::queuedRequests() const {
  std::lock_guard<std::mutex> L(Mu);
  return QueuedTotal;
}

bool SessionManager::shedding() const {
  std::lock_guard<std::mutex> L(Mu);
  return SheddingFlag;
}

void SessionManager::setWorkersPaused(bool Paused) {
  {
    std::lock_guard<std::mutex> L(Mu);
    WorkersPausedFlag = Paused;
  }
  if (!Paused)
    WorkCv.notify_all();
}

void SessionManager::enqueueReady(const SessionPtr &S) {
  if (S->InReady || S->Busy || S->Queue.empty())
    return;
  S->InReady = true;
  Ready.push_back(S->Id);
}

void SessionManager::updateShedLocked() {
  // Speculation is the first load to go: pause the shared compile pool
  // when the backlog crosses the threshold, resume when it halves.
  // Running compiles finish (pausing is cooperative); queued ones hold,
  // freeing the idle workers' cores for the request backlog.
  if (!SheddingFlag && QueuedTotal >= Opts.ShedQueuedRequests) {
    SheddingFlag = true;
    SpecPool->setPaused(true);
    Inst.ShedEntered->inc();
    Inst.ShedActive->set(1);
  } else if (SheddingFlag && QueuedTotal <= Opts.ShedQueuedRequests / 2) {
    SheddingFlag = false;
    SpecPool->setPaused(false);
    Inst.ShedExited->inc();
    Inst.ShedActive->set(0);
  }
}

bool SessionManager::freeSlotLocked(std::unique_lock<std::mutex> &L) {
  if (!Snapshots || !Snapshots->usable())
    return false;
  // The LRU *idle* session: engine-resident, nothing queued, nothing
  // running, not being destroyed. Sessions mid-request are never torn
  // out from under their worker.
  SessionPtr V;
  for (const auto &[Id, S] : Sessions) {
    (void)Id;
    if (!S->Eng || S->Busy || S->Closing || !S->Queue.empty())
      continue;
    if (!V || S->LastUsed < V->LastUsed)
      V = S;
  }
  if (!V)
    return false;

  // Busy claims the victim against dispatch, destroy and rival hibernate
  // passes; moving the engine out makes interrupt() a clean no-op.
  V->Busy = true;
  std::unique_ptr<Engine> Eng = std::move(V->Eng);
  L.unlock();
  Timer T;
  ser::WorkspaceImage Img = Eng->workspaceImage();
  bool Saved = Snapshots->save(V->Id, Img);
  if (Saved) {
    Eng->shutdown();
    Eng.reset();
  }
  double Secs = T.seconds();
  L.lock();
  V->Busy = false;
  if (!Saved) {
    // Failed saves must not strand the victim: it keeps its engine and
    // stays fully live, and the caller reports the cap instead.
    V->Eng = std::move(Eng);
    Inst.HibernateFailures->inc();
    enqueueReady(V); // requests may have queued during the attempt
  } else {
    V->Hibernated = true;
    --LiveEngines;
    Inst.Hibernates->inc();
    Inst.HibernateSeconds->observe(Secs);
    Inst.SessionsLive->set(int64_t(LiveEngines));
    Inst.SessionsHibernated->set(int64_t(hibernatedCountLocked()));
    if (!V->Queue.empty() && !Stopping) {
      // A request slipped in while the snapshot was being written. It was
      // accepted - it must run - so the hibernation is immediately undone
      // (the slot this call freed goes right back to its old owner, and
      // the caller's retry loop looks for another victim).
      resurrectLocked(L, V);
    }
  }
  if (V->Closing && V->Queue.empty() && !V->Busy)
    DrainCv.notify_all();
  return Saved;
}

void SessionManager::resurrectLocked(std::unique_lock<std::mutex> &L,
                                     const SessionPtr &S) {
  S->Busy = true;
  L.unlock();
  Timer T;
  std::unique_ptr<Engine> Eng;
  std::string Loud;
  bool Corrupt = false;
  try {
    faults::maybeThrow(faults::Site::SessionCreate);
    Eng = std::make_unique<Engine>(sessionEngineOptions());
    ser::WorkspaceImage Img;
    switch (Snapshots->load(S->Id, Img)) {
    case SnapshotStore::LoadStatus::Ok:
      try {
        Eng->restoreWorkspaceImage(Img);
        // The snapshot must not outlive the live state it described: if
        // it did, a crash after the session mutates could resurrect the
        // past. Deleting it here, before any request runs, closes that
        // window (SnapshotStore's load-site kill point sits on either
        // side for the crash sweep).
        Snapshots->remove(S->Id);
        faults::killPoint(faults::Site::SessionSnapshotLoad);
      } catch (const std::exception &E) {
        // The ladder vouched for the bytes but the replay failed - a
        // writer bug, handled like corruption: evidence kept, loud
        // structured error, session restarts empty.
        Corrupt = true;
        Loud = format("??? resurrect: workspace snapshot for session %llu "
                      "failed to replay (%s); session restarts empty\n",
                      (unsigned long long)S->Id, E.what());
        Snapshots->remove(S->Id);
        Eng = std::make_unique<Engine>(sessionEngineOptions());
      }
      break;
    case SnapshotStore::LoadStatus::Missing:
      // No snapshot (vanished, or format turnover): a fresh empty
      // session, silently.
      break;
    case SnapshotStore::LoadStatus::Corrupt:
      // The store already quarantined the file and shouted to stderr;
      // the structured reply error makes the client hear it too.
      Corrupt = true;
      Loud = format("??? resurrect: workspace snapshot for session %llu "
                    "failed validation; quarantined, session restarts "
                    "empty\n",
                    (unsigned long long)S->Id);
      break;
    }
  } catch (const std::exception &E) {
    // Engine construction failed (injected session-create fault, OOM):
    // the snapshot stays on disk and the session stays hibernated, so a
    // later submit retries the whole resurrect. Queued requests fail
    // loudly through the worker's no-engine path below.
    Eng.reset();
    Loud = format("??? resurrect: session %llu engine construction failed "
                  "(%s)\n",
                  (unsigned long long)S->Id, E.what());
  }
  double Secs = T.seconds();
  L.lock();
  S->Busy = false;
  S->PendingError = Loud;
  if (Eng) {
    S->Eng = std::move(Eng);
    S->Hibernated = false;
    ++LiveEngines;
    Inst.Resurrects->inc();
    if (Corrupt)
      Inst.ResurrectCorrupt->inc();
    Inst.ResurrectSeconds->observe(Secs);
    Inst.SessionsLive->set(int64_t(LiveEngines));
    Inst.SessionsHibernated->set(int64_t(hibernatedCountLocked()));
  }
  enqueueReady(S);
  if (S->Closing && S->Queue.empty())
    DrainCv.notify_all();
}

Reply SessionManager::runRequest(Session &S, const std::string &Text) {
  try {
    faults::maybeThrow(faults::Site::BudgetCheck);
  } catch (const std::exception &E) {
    return {Reply::Status::Error, std::string("??? ") + E.what() + "\n"};
  }
  std::string Out;
  try {
    Out = S.Eng->runScript(Text);
  } catch (const std::exception &E) {
    S.Eng->clearInterrupt();
    // runScript reports program errors in its output; anything escaping
    // is unexpected - contain it to this reply.
    return {Reply::Status::Error, std::string("??? ") + E.what() + "\n"};
  }
  // An interrupt kills at most the request it raced with; the next one
  // starts clean.
  S.Eng->clearInterrupt();
  // The engine renders program errors as "??? <message>" lines.
  bool HasError =
      Out.rfind("??? ", 0) == 0 || Out.find("\n??? ") != std::string::npos;
  return {HasError ? Reply::Status::Error : Reply::Status::Ok, std::move(Out)};
}

void SessionManager::workerLoop() {
  for (;;) {
    SessionPtr S;
    Request R;
    std::string Pending;
    {
      std::unique_lock<std::mutex> L(Mu);
      WorkCv.wait(L, [this] {
        return Stopping || (!WorkersPausedFlag && !Ready.empty());
      });
      if (Stopping)
        return;
      SessionId Id = Ready.front();
      Ready.pop_front();
      auto It = Sessions.find(Id);
      if (It == Sessions.end())
        continue; // destroyed while queued; its requests were drained
      S = It->second;
      S->InReady = false;
      if (S->Busy || S->Queue.empty())
        continue;
      R = std::move(S->Queue.front());
      S->Queue.pop_front();
      S->Busy = true;
      Pending = std::move(S->PendingError);
      S->PendingError.clear();
      --QueuedTotal;
      Inst.ReqQueued->set(int64_t(QueuedTotal));
      updateShedLocked();
    }

    Inst.QueueSeconds->observe(R.Queued.seconds());
    Timer Run;
    // A pending resurrect diagnostic preempts the request: a session
    // whose workspace was quarantined must fail its triggering request
    // with the structured error, never silently recompute on an empty
    // workspace. The no-engine case is a resurrect whose engine
    // construction failed; the request was accepted, so it still gets a
    // (loud) reply. Busy is ours, so reading S->Eng off-lock is safe.
    Reply Rep;
    if (!Pending.empty())
      Rep = {Reply::Status::Error, std::move(Pending)};
    else if (!S->Eng)
      Rep = {Reply::Status::Error,
             "??? session not resident and resurrect failed; retry\n"};
    else
      Rep = runRequest(*S, R.Text);
    Inst.RequestSeconds->observe(Run.seconds());
    (Rep.St == Reply::Status::Ok ? Inst.ReqCompleted : Inst.ReqFailed)->inc();

    bool MoreWork;
    {
      std::lock_guard<std::mutex> L(Mu);
      S->Busy = false;
      // Round-robin fairness: the session rejoins at the *tail*, so a
      // session with an endless stream of requests advances one request
      // per turn of the ring, never starving the others.
      enqueueReady(S);
      MoreWork = !Ready.empty();
      if (S->Closing && S->Queue.empty())
        DrainCv.notify_all();
    }
    R.Promise.set_value(std::move(Rep));
    if (MoreWork)
      WorkCv.notify_one();
  }
}

obs::MetricsSnapshot SessionManager::sampleMetrics() {
  {
    std::lock_guard<std::mutex> L(Mu);
    Inst.SessionsLive->set(int64_t(LiveEngines));
    Inst.SessionsHibernated->set(int64_t(hibernatedCountLocked()));
    Inst.ReqQueued->set(int64_t(QueuedTotal));
    Inst.ShedActive->set(SheddingFlag ? 1 : 0);
  }
  return Metrics.snapshot();
}

std::string SessionManager::metricsJson() {
  sampleMetrics();
  return Metrics.json();
}

void SessionManager::shutdown() {
  std::vector<SessionPtr> Doomed;
  std::vector<Request> Orphans;
  {
    std::lock_guard<std::mutex> L(Mu);
    if (ShutdownDone)
      return;
    ShutdownDone = true;
    Stopping = true;
    for (auto &[Id, S] : Sessions) {
      (void)Id;
      for (Request &R : S->Queue)
        Orphans.push_back(std::move(R));
      S->Queue.clear();
      Doomed.push_back(S);
    }
    Sessions.clear();
    Ready.clear();
    QueuedTotal = 0;
    LiveEngines = 0;
  }
  WorkCv.notify_all();
  DrainCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
  Workers.clear();
  // Promises resolve after the workers are gone: a request that was
  // *running* at shutdown still resolved through its worker; only
  // never-started ones land here.
  for (Request &R : Orphans) {
    Inst.ReqFailed->inc();
    R.Promise.set_value({Reply::Status::ShuttingDown, ""});
  }

  // Engine shutdown needs the shared pool's workers awake (it waits out
  // its in-flight compiles), so lift any shed pause first.
  if (SpecPool)
    SpecPool->setPaused(false);
  // Hibernated sessions have no engine to tear down; their snapshots stay
  // on disk, to be re-registered by the next service start's recovery
  // sweep - that durability is the point of hibernation.
  for (SessionPtr &S : Doomed) {
    if (S->Eng)
      S->Eng->shutdown();
    S.reset();
  }
  Doomed.clear();
  SpecPool.reset();

  if (!Opts.MetricsPath.empty()) {
    std::string Json = metricsJson();
    if (FILE *F = std::fopen(Opts.MetricsPath.c_str(), "w")) {
      std::fwrite(Json.data(), 1, Json.size(), F);
      std::fclose(F);
    }
  }
}
