//===- service/SessionManager.h - Multi-session engine service -*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-session engine service: M concurrent interactive sessions
/// multiplexed onto a fixed worker pool, sharing one process-wide
/// compiled-code cache (repo/SharedCache.h) so one compile serves every
/// session that hits the same (function source, signature, configuration).
/// Everything else - workspace, profiles, budgets, interrupts - stays
/// per-session.
///
/// The service makes four promises:
///
///  * Admission control. Live sessions and queued requests are capped;
///    past the caps, createSession() and submit() return explicit
///    rejections (never silent drops, never unbounded queues). Every
///    request that is *accepted* completes with a Reply. With a
///    SessionDir configured the live cap stops bounding *users*: hitting
///    it hibernates the LRU idle session's workspace to disk and reuses
///    its slot, a request for a hibernated session resurrects it
///    transparently, and only when nothing is idle does admission reject
///    (with a machine-readable retryable reason).
///
///  * Fair scheduling. Sessions are dispatched round-robin with at most
///    one in-flight request per session, so a session stuck in `while 1`
///    occupies one worker while every other session keeps its turn.
///
///  * Fault containment. A session that trips its budget, quarantines a
///    function, or absorbs an injected fault reports an error on its own
///    reply and perturbs nothing else: other sessions' results stay
///    bit-identical to solo runs. Destroying one session never blocks or
///    crashes the rest.
///
///  * Graceful degradation. Under load the service sheds speculative
///    work first (the shared background-compile pool is paused until the
///    backlog halves), then rejects new work; it never corrupts state.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_SERVICE_SESSIONMANAGER_H
#define MAJIC_SERVICE_SESSIONMANAGER_H

#include "engine/Engine.h"
#include "service/SnapshotStore.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace majic {

/// Opaque session handle. 0 is never a valid id.
using SessionId = uint64_t;

struct ServiceOptions {
  /// Cap on live sessions; createSession() past it is rejected. 0 falls
  /// back to the MAJIC_MAX_SESSIONS environment variable, then to 64.
  unsigned MaxSessions = 0;
  /// Service worker threads executing requests. 0 = min(hardware, 8).
  unsigned Workers = 0;
  /// Threads in the shared background-compile pool every session's
  /// speculation and store saves run on. 0 = 1.
  unsigned SpecThreads = 0;
  /// Cap on requests queued across all sessions; submit() past it is
  /// rejected with Overloaded. 0 = 4096.
  unsigned MaxQueuedRequests = 0;
  /// Cap on requests queued in one session (a single flooding client
  /// hits its own wall long before the service-wide one). 0 = 256.
  unsigned MaxQueuedPerSession = 0;
  /// Backlog at which the service starts shedding: the shared compile
  /// pool is paused (speculation is the first load to go) until the
  /// backlog drops below half this. 0 = half of MaxQueuedRequests.
  unsigned ShedQueuedRequests = 0;
  /// Per-session resource budgets applied to every session engine
  /// (0 = unlimited). Fields left 0 fall back to MAJIC_SESSION_MAX_OPS,
  /// MAJIC_SESSION_MAX_ALLOC_BYTES and MAJIC_SESSION_MAX_WALL_MILLIS.
  ExecutionLimits SessionLimits;
  /// Template for session engines. The service overrides the sharing and
  /// isolation fields (SharedSpecPool, SharedCache, PerSessionLimits,
  /// EnvFallbacks, ComputeThreads, RepoDir/ProfileDir/TracePath/
  /// MetricsPath); policy, platform and compiler options are yours.
  EngineOptions Session;
  /// Directory of the shared persistent code repository. Entries are
  /// preloaded into the shared cache at service start and accepted cache
  /// publishes are persisted back, so a service restart warm-starts every
  /// session. Empty = no persistence.
  std::string RepoDir;
  /// Shared compiled-code cache capacity (0 = unlimited).
  size_t SharedCacheCapacity = 4096;
  /// Metrics-dump path written at shutdown (service + shared-cache
  /// instruments). Empty = no dump.
  std::string MetricsPath;
  /// Directory idle sessions hibernate to when the live-session cap is
  /// hit (crash-durable `.mjws` workspace snapshots; a request for a
  /// hibernated session resurrects it transparently). Empty falls back to
  /// the MAJIC_SESSION_DIR environment variable; when both are empty,
  /// hibernation is off and the cap rejects as before.
  std::string SessionDir;
};

/// The outcome of one submitted request.
struct Reply {
  enum class Status : uint8_t {
    Ok,                 ///< ran to completion
    Error,              ///< ran, but the program raised an error
    RejectedOverloaded, ///< not admitted: queue caps reached
    SessionGone,        ///< no such session (or it is being destroyed)
    ShuttingDown,       ///< service is shutting down
  };
  /// Machine-readable cause of a RejectedOverloaded reply, so clients can
  /// tell retryable service-wide pressure (QueueFull, SessionCapNoIdle -
  /// back off and retry) from their own per-session backlog
  /// (BudgetExceeded - drain your futures first).
  enum class Reason : uint8_t {
    None,             ///< not a rejection
    QueueFull,        ///< service-wide queue cap (or admission fault)
    BudgetExceeded,   ///< this session's own queue cap
    SessionCapNoIdle, ///< session cap hit and no idle session to hibernate
  };
  Status St = Status::Ok;
  std::string Output; ///< what the script printed (Ok/Error)
  Reason Why = Reason::None;
};

const char *replyStatusName(Reply::Status S);
const char *rejectReasonName(Reply::Reason R);

class SessionManager {
public:
  explicit SessionManager(ServiceOptions Opts = ServiceOptions());
  ~SessionManager();

  SessionManager(const SessionManager &) = delete;
  SessionManager &operator=(const SessionManager &) = delete;

  /// Creates a session, or returns 0 when the service is at its session
  /// cap, shutting down, or the creation faulted (injected session-create
  /// fault). Rejection is a clean denial: nothing is left half-built.
  SessionId createSession();

  /// Destroys session \p Id: no further submits are admitted, already
  /// accepted requests drain (they were promised a Reply), then the
  /// engine is shut down and destroyed on the calling thread - never on a
  /// worker, so one session's teardown cannot stall dispatch. Returns
  /// false when no such session exists.
  bool destroySession(SessionId Id);

  /// Submits \p Text to run as a script in session \p Id. The future
  /// always resolves: with the script's output, or with an explicit
  /// rejection status when the request was not admitted. Admission is
  /// decided synchronously (queue caps, session liveness, injected
  /// admission faults), so a returned Ok/Error future means the request
  /// was accepted and will execute.
  std::future<Reply> submit(SessionId Id, std::string Text);

  /// Requests cooperative interruption of \p Id's running program (its
  /// engine's own token: other sessions are untouched). Returns false
  /// when no such session exists.
  bool interrupt(SessionId Id);

  /// Number of engine-resident sessions / hibernated sessions / queued
  /// requests right now. A hibernated session is still addressable
  /// (submit resurrects it) but holds no live slot.
  size_t liveSessions() const;
  size_t hibernatedSessions() const;
  size_t queuedRequests() const;

  /// True while the service is shedding speculative load.
  bool shedding() const;

  /// Test hook: pause/resume the request workers (accepted requests
  /// queue; admission still runs). Deterministic overload staging.
  void setWorkersPaused(bool Paused);

  /// The shared compiled-code cache (tests inspect hit counters).
  SharedCodeCache &sharedCache() { return *Cache; }

  /// Service-level metrics: sessions, requests, queue depth, shed state,
  /// request latency histograms, shared-cache counters.
  obs::MetricsRegistry &metrics() { return Metrics; }
  obs::MetricsSnapshot sampleMetrics();
  std::string metricsJson();

  /// Stops the service: pending requests are failed with ShuttingDown,
  /// workers are joined, every session engine is shut down, the shared
  /// pool is drained. Idempotent; the destructor calls it.
  void shutdown();

private:
  struct Request {
    std::string Text;
    std::promise<Reply> Promise;
    Timer Queued; ///< queue-latency measurement
  };

  struct Session {
    SessionId Id = 0;
    std::unique_ptr<Engine> Eng; ///< null while hibernated (or mid-move)
    std::deque<Request> Queue; ///< guarded by the manager mutex
    bool Busy = false;    ///< a worker is executing a request right now,
                          ///< or the session is mid-hibernate/-resurrect
    bool Closing = false; ///< destroySession() ran; no new admissions
    bool InReady = false; ///< sits in the round-robin ready ring
    bool Hibernated = false; ///< workspace snapshotted to disk, slot freed
    uint64_t LastUsed = 0;   ///< admission tick, the hibernation LRU key
    /// Structured "??? resurrect: ..." diagnostic from a corrupt-snapshot
    /// resurrect, delivered loudly on the next dispatched request.
    std::string PendingError;
  };
  using SessionPtr = std::shared_ptr<Session>;

  void workerLoop();
  /// Executes one request on \p S's engine (no manager lock held).
  Reply runRequest(Session &S, const std::string &Text);
  /// Ready-ring invariant: S joins iff it has work, isn't running, isn't
  /// closing-and-empty, and isn't already queued. Call with the lock.
  void enqueueReady(const SessionPtr &S);
  /// Shed-state transitions from the current backlog. Call with the lock.
  void updateShedLocked();
  EngineOptions sessionEngineOptions() const;
  /// Frees one live slot by hibernating the LRU idle session (snapshot to
  /// disk, engine shut down). Drops and reacquires \p L around the save;
  /// returns false when hibernation is off or nothing is idle. A failed
  /// save leaves the victim fully live.
  bool freeSlotLocked(std::unique_lock<std::mutex> &L);
  /// Brings hibernated \p S back: fresh engine, snapshot loaded through
  /// the validation ladder, workspace restored, snapshot deleted. A
  /// corrupt snapshot is quarantined and the session restarts empty with
  /// a PendingError. Drops and reacquires \p L; caller guarantees a free
  /// live slot and !S->Busy.
  void resurrectLocked(std::unique_lock<std::mutex> &L, const SessionPtr &S);
  size_t hibernatedCountLocked() const;

  ServiceOptions Opts;
  std::shared_ptr<SharedCodeCache> Cache;
  /// Shared persistent store behind the cache (null without RepoDir).
  /// Declared before the pool and sessions: publish hooks write to it.
  std::unique_ptr<RepoStore> Store;
  /// The one idle-priority pool all sessions' speculation runs on.
  /// Declared before Sessions: engines hold a pointer to it.
  std::unique_ptr<ThreadPool> SpecPool;
  /// Hibernated workspaces on disk (null when SessionDir is empty).
  std::unique_ptr<SnapshotStore> Snapshots;

  obs::MetricsRegistry Metrics;
  struct {
    obs::Counter *SessionsCreated = nullptr;
    obs::Counter *SessionsRejected = nullptr;
    obs::Counter *SessionsDestroyed = nullptr;
    obs::Gauge *SessionsLive = nullptr;
    obs::Counter *ReqAccepted = nullptr;
    obs::Counter *ReqRejected = nullptr;
    obs::Counter *ReqCompleted = nullptr;
    obs::Counter *ReqFailed = nullptr;
    obs::Gauge *ReqQueued = nullptr;
    obs::Counter *ShedEntered = nullptr;
    obs::Counter *ShedExited = nullptr;
    obs::Gauge *ShedActive = nullptr;
    obs::Histogram *RequestSeconds = nullptr;
    obs::Histogram *QueueSeconds = nullptr;
    obs::Counter *Hibernates = nullptr;
    obs::Counter *HibernateFailures = nullptr;
    obs::Counter *Resurrects = nullptr;
    obs::Counter *ResurrectCorrupt = nullptr;
    obs::Counter *NoIdleRejects = nullptr;
    obs::Gauge *SessionsHibernated = nullptr;
    obs::Histogram *HibernateSeconds = nullptr;
    obs::Histogram *ResurrectSeconds = nullptr;
  } Inst;

  mutable std::mutex Mu;
  std::condition_variable WorkCv;  ///< workers: work available / stopping
  std::condition_variable DrainCv; ///< destroySession: session drained
  std::map<SessionId, SessionPtr> Sessions;
  std::deque<SessionId> Ready; ///< round-robin dispatch ring
  SessionId NextId = 1;
  size_t QueuedTotal = 0;
  /// Engine-resident sessions; Sessions.size() minus the hibernated ones.
  /// The MaxSessions cap binds this, not the addressable-session count.
  size_t LiveEngines = 0;
  uint64_t UseTick = 0; ///< monotonic clock feeding Session::LastUsed
  bool Stopping = false;
  bool WorkersPausedFlag = false;
  bool SheddingFlag = false;
  bool ShutdownDone = false;

  std::vector<std::thread> Workers;
};

} // namespace majic

#endif // MAJIC_SERVICE_SESSIONMANAGER_H
