//===- service/SnapshotStore.cpp - Hibernated workspaces on disk -----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "service/SnapshotStore.h"

#include "support/AtomicFile.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

using namespace majic;
namespace fs = std::filesystem;

namespace {

const char *const kExtension = ".mjws";
const char *const kPrefix = "session-";

/// Parses "session-<16 hex digits>.mjws"; anything else in the directory
/// (quarantined files, temp strays, unrelated droppings) is not a
/// snapshot.
bool parseSnapshotName(const std::string &Name, uint64_t &Id) {
  const std::string Pre = kPrefix;
  const std::string Ext = kExtension;
  if (Name.size() != Pre.size() + 16 + Ext.size())
    return false;
  if (Name.compare(0, Pre.size(), Pre) != 0 ||
      Name.compare(Name.size() - Ext.size(), Ext.size(), Ext) != 0)
    return false;
  uint64_t V = 0;
  for (size_t I = Pre.size(); I != Pre.size() + 16; ++I) {
    char C = Name[I];
    unsigned D;
    if (C >= '0' && C <= '9')
      D = C - '0';
    else if (C >= 'a' && C <= 'f')
      D = C - 'a' + 10;
    else
      return false;
    V = (V << 4) | D;
  }
  Id = V;
  return true;
}

} // namespace

SnapshotStore::SnapshotStore(std::string D) : Dir(std::move(D)) {
  std::error_code EC;
  fs::create_directories(Dir, EC);
  Usable = !EC && fs::is_directory(Dir, EC) && !EC;
  if (!Usable)
    std::fprintf(stderr,
                 "majic: session directory '%s' is unusable; hibernation "
                 "will reject instead of snapshot\n",
                 Dir.c_str());
}

std::string SnapshotStore::pathFor(uint64_t Id) const {
  return Dir + "/" + kPrefix + format("%016llx", (unsigned long long)Id) +
         kExtension;
}

bool SnapshotStore::save(uint64_t Id, const ser::WorkspaceImage &Img) {
  if (!Usable) {
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.SaveFailures;
    return false;
  }
  bool Ok = false;
  try {
    faults::maybeThrow(faults::Site::SessionSnapshotSave);
    std::string Bytes = ser::encodeWorkspaceImage(Img);
    faults::killPoint(faults::Site::SessionSnapshotSave);
    std::string Error;
    Ok = atomicfile::writeFileAtomic(pathFor(Id), Bytes, &Error);
    if (Ok)
      faults::killPoint(faults::Site::SessionSnapshotSave);
    else
      std::fprintf(stderr,
                   "majic: cannot save workspace snapshot for session "
                   "%llu: %s\n",
                   (unsigned long long)Id, Error.c_str());
  } catch (const std::exception &E) {
    std::fprintf(stderr,
                 "majic: cannot save workspace snapshot for session %llu: "
                 "%s\n",
                 (unsigned long long)Id, E.what());
    Ok = false;
  }
  std::lock_guard<std::mutex> L(Mutex);
  ++(Ok ? Stats.Saved : Stats.SaveFailures);
  return Ok;
}

SnapshotStore::LoadStatus SnapshotStore::load(uint64_t Id,
                                              ser::WorkspaceImage &Out) {
  std::string Path = pathFor(Id);
  std::error_code EC;
  if (!Usable || !fs::exists(Path, EC) || EC)
    return LoadStatus::Missing;

  enum class Verdict { Corrupt, Skew, Ok } V = Verdict::Corrupt;
  std::string Reason = "unknown";
  try {
    faults::maybeThrow(faults::Site::SessionSnapshotLoad);
    std::error_code SzEC;
    uint64_t Size = fs::file_size(Path, SzEC);
    if (SzEC || Size > kMaxFileBytes)
      throw ser::SerializeError("unreadable or oversized file");
    std::string Bytes;
    if (!atomicfile::readFile(Path, Bytes))
      throw ser::SerializeError("cannot read file");
    faults::killPoint(faults::Site::SessionSnapshotLoad);
    Out = ser::decodeWorkspaceImage(Bytes);
    V = Verdict::Ok;
  } catch (const ser::WorkspaceSkew &E) {
    V = Verdict::Skew;
    Reason = E.what();
  } catch (const std::exception &E) {
    Reason = E.what();
  }

  std::error_code IgnoredEC;
  switch (V) {
  case Verdict::Ok: {
    faults::killPoint(faults::Site::SessionSnapshotLoad);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.Loaded;
    return LoadStatus::Ok;
  }
  case Verdict::Corrupt: {
    // Quarantine, don't delete: the bytes are evidence, and the rename
    // takes the file out of the .mjws namespace so the session is never
    // offered the same torn snapshot twice. If even the rename fails,
    // fall back to removal.
    std::fprintf(stderr,
                 "majic: workspace snapshot for session %llu failed "
                 "validation (%s); quarantined as '%s.corrupt', session "
                 "restarts empty\n",
                 (unsigned long long)Id, Reason.c_str(), Path.c_str());
    fs::rename(Path, Path + ".corrupt", IgnoredEC);
    if (IgnoredEC)
      fs::remove(Path, IgnoredEC);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.Quarantined;
    return LoadStatus::Corrupt;
  }
  case Verdict::Skew: {
    // A different snapshot format owns this file; discarding it is
    // routine turnover, not corruption - the session restarts empty
    // without the corruption klaxon.
    fs::remove(Path, IgnoredEC);
    std::lock_guard<std::mutex> L(Mutex);
    ++Stats.Skewed;
    return LoadStatus::Missing;
  }
  }
  return LoadStatus::Corrupt; // unreachable
}

void SnapshotStore::remove(uint64_t Id) {
  std::error_code IgnoredEC;
  fs::remove(pathFor(Id), IgnoredEC);
}

std::vector<uint64_t> SnapshotStore::scan() const {
  std::vector<uint64_t> Ids;
  std::error_code EC;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir, EC)) {
    if (EC)
      break;
    if (!E.is_regular_file())
      continue;
    uint64_t Id;
    if (parseSnapshotName(E.path().filename().string(), Id))
      Ids.push_back(Id);
  }
  std::sort(Ids.begin(), Ids.end());
  return Ids;
}

unsigned SnapshotStore::sweepTemps() {
  return atomicfile::sweepTempFiles(Dir, kExtension);
}

SnapshotStore::StatsSnapshot SnapshotStore::stats() const {
  std::lock_guard<std::mutex> L(Mutex);
  return Stats;
}
