function s = mei(n, m)
% MEI  Fractal landscape generator: midpoint-displacement heights whose
% spectral content is summarized through eig (the Section 3.6 failure
% case: the speculator cannot prove the eig argument is real).
H = zeros(n, m);
scale = 1;
for i = 1:n
  for j = 1:m
    H(i, j) = scale * (rand - 0.5);
  end
end
step = 4;
while step > 1
  half = step / 2;
  scale = scale / 2;
  for i = 1:step:n-step
    for j = 1:step:m-step
      mid = (H(i, j) + H(i + step, j) + H(i, j + step) + H(i + step, j + step)) / 4;
      H(i + half, j + half) = mid + scale * (rand - 0.5);
    end
  end
  step = half;
end
C = H' * H;
C = (C + C') / 2;
e = eig(C);
s = sum(e) + max(e);
