function s = orbrk(nstep)
% ORBRK  Fourth-order Runge-Kutta for the one-body Kepler problem
% (Garcia). The derivative function is a separate (inlinable) function.
x = [1, 0, 0, 6.2831853071795862];
tau = 0.002;
s = 0;
for k = 1:nstep
  f1 = gravrk(x);
  xh = [x(1) + 0.5 * tau * f1(1), x(2) + 0.5 * tau * f1(2), ...
        x(3) + 0.5 * tau * f1(3), x(4) + 0.5 * tau * f1(4)];
  f2 = gravrk(xh);
  xh = [x(1) + 0.5 * tau * f2(1), x(2) + 0.5 * tau * f2(2), ...
        x(3) + 0.5 * tau * f2(3), x(4) + 0.5 * tau * f2(4)];
  f3 = gravrk(xh);
  xh = [x(1) + tau * f3(1), x(2) + tau * f3(2), ...
        x(3) + tau * f3(3), x(4) + tau * f3(4)];
  f4 = gravrk(xh);
  x = [x(1) + tau * (f1(1) + 2 * f2(1) + 2 * f3(1) + f4(1)) / 6, ...
       x(2) + tau * (f1(2) + 2 * f2(2) + 2 * f3(2) + f4(2)) / 6, ...
       x(3) + tau * (f1(3) + 2 * f2(3) + 2 * f3(3) + f4(3)) / 6, ...
       x(4) + tau * (f1(4) + 2 * f2(4) + 2 * f3(4) + f4(4)) / 6];
  s = s + x(1);
end

function deriv = gravrk(x)
% Gravitational acceleration for the RK driver.
gm = 4 * pi * pi;
rn = sqrt(x(1)^2 + x(2)^2);
deriv = [x(3), x(4), -gm * x(1) / rn^3, -gm * x(2) / rn^3];
