function s = fractal(npoints)
% FRACTAL  Barnsley fern generator: random affine maps applied to a small
% 2-vector, history stored in growing arrays.
px = 0;
py = 0;
xs = zeros(1, npoints);
ys = zeros(1, npoints);
for k = 1:npoints
  r = rand;
  if r < 0.01
    p = [0.0 * px, 0.16 * py];
  elseif r < 0.86
    p = [0.85 * px + 0.04 * py, -0.04 * px + 0.85 * py + 1.6];
  elseif r < 0.93
    p = [0.2 * px - 0.26 * py, 0.23 * px + 0.22 * py + 1.6];
  else
    p = [-0.15 * px + 0.28 * py, 0.26 * px + 0.24 * py + 0.44];
  end
  px = p(1);
  py = p(2);
  xs(k) = px;
  ys(k) = py;
end
s = 0;
for k = 1:npoints
  s = s + abs(xs(k)) + abs(ys(k));
end
