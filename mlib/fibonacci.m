function f = fibonacci(n)
% FIBONACCI  Doubly recursive Fibonacci (exercises call/inline machinery).
if n <= 1
  f = n;
else
  f = fibonacci(n - 1) + fibonacci(n - 2);
end
