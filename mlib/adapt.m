function q = adapt(tol, nmax)
% ADAPT  Adaptive quadrature of f(x) = 13 (x - x^2) e^{-3x/2} over [0, 4]
% (Mathews). A worklist of subintervals lives in dynamically growing
% arrays; Simpson values on each interval are small-vector work.
lo = zeros(1, 1);
hi = zeros(1, 1);
lo(1) = 0;
hi(1) = 4;
n = 1;
q = 0;
steps = 0;
while n > 0
  if steps >= nmax
    break;
  end
  steps = steps + 1;
  a = lo(n);
  b = hi(n);
  n = n - 1;
  c = (a + b) / 2;
  s1 = simp(a, b);
  s2 = simp(a, c) + simp(c, b);
  if abs(s2 - s1) < tol
    q = q + s2;
  else
    % Push both halves; the worklist arrays grow on demand.
    n = n + 1;
    lo(n) = a;
    hi(n) = c;
    n = n + 1;
    lo(n) = c;
    hi(n) = b;
  end
end

function s = simp(a, b)
% Simpson's rule on [a, b] for the Mathews test integrand.
c = (a + b) / 2;
fa = 13 * (a - a^2) * exp(-3 * a / 2);
fb = 13 * (b - b^2) * exp(-3 * b / 2);
fc = 13 * (c - c^2) * exp(-3 * c / 2);
s = (b - a) * (fa + 4 * fc + fb) / 6;
