function a = ackermann(m, n)
% ACKERMANN  Ackermann's function: deeply recursive control flow.
if m == 0
  a = n + 1;
elseif n == 0
  a = ackermann(m - 1, 1);
else
  a = ackermann(m - 1, ackermann(m, n - 1));
end
