function U = crnich(c1, c2, n, m)
% CRNICH  Crank-Nicholson solution to the heat equation (Mathews),
% with an inline tridiagonal solve per time step.
h = 1 / (n - 1);
k = 1 / (m - 1);
r = c1^2 * k / h^2;
s1 = 2 + 2 / r;
s2 = 2 / r - 2;
U = zeros(n, m);
for i = 2:n-1
  U(i, 1) = sin(pi * h * (i - 1)) + sin(c2 * pi * h * (i - 1));
end
Vd = zeros(1, n);
Va = zeros(1, n - 1);
Vc = zeros(1, n - 1);
Vb = zeros(1, n);
for i = 1:n
  Vd(i) = s1;
end
Vd(1) = 1;
Vd(n) = 1;
for i = 1:n-1
  Va(i) = -1;
  Vc(i) = -1;
end
Va(n - 1) = 0;
Vc(1) = 0;
for j = 2:m
  Vb(1) = 0;
  Vb(n) = 0;
  for i = 2:n-1
    Vb(i) = U(i-1, j-1) + U(i+1, j-1) + s2 * U(i, j-1);
  end
  % Thomas algorithm: forward elimination, back substitution.
  A = zeros(1, n);
  D = zeros(1, n);
  C = zeros(1, n);
  for i = 1:n
    D(i) = Vd(i);
  end
  for i = 1:n-1
    A(i) = Va(i);
    C(i) = Vc(i);
  end
  for i = 2:n
    mult = A(i - 1) / D(i - 1);
    D(i) = D(i) - mult * C(i - 1);
    Vb(i) = Vb(i) - mult * Vb(i - 1);
  end
  U(n, j) = Vb(n) / D(n);
  for i = n-1:-1:1
    U(i, j) = (Vb(i) - C(i) * U(i + 1, j)) / D(i);
  end
end
