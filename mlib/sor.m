function x = sor(n, w, maxit)
% SOR  Successive over-relaxation for a linear system, written in the
% matrix-splitting style of the Templates book: built-in heavy.
A = zeros(n, n);
for i = 1:n
  A(i, i) = 4;
end
for i = 1:n-1
  A(i, i + 1) = -1;
  A(i + 1, i) = -1;
end
b = ones(n, 1);
% Splitting: M = D/w + L, N = (1/w - 1) D - U.
M = zeros(n, n);
N = zeros(n, n);
for i = 1:n
  M(i, i) = A(i, i) / w;
  N(i, i) = (1 / w - 1) * A(i, i);
end
for i = 2:n
  for j = 1:i-1
    M(i, j) = A(i, j);
  end
end
for i = 1:n-1
  for j = i+1:n
    N(i, j) = -A(i, j);
  end
end
x = zeros(n, 1);
for it = 1:maxit
  x = M \ (N * x + b);
  if norm(b - A * x) < 1e-10
    break;
  end
end
