function x = heavyball(n, maxit)
% HEAVYBALL  Polyak heavy-ball (momentum) iteration for the tridiagonal
% test system shared with cgopt/qmr/sor, written in vectorized
% whole-array style rather than the corpus' Fortran-77 scalar loops.
% The update is a single five-operator elementwise expression - the
% statement shape MaJIC's elementwise fusion compiles to one loop.
A = zeros(n, n);
for i = 1:n
  A(i, i) = 4;
end
for i = 1:n-1
  A(i, i + 1) = -1;
  A(i + 1, i) = -1;
end
b = ones(n, 1);
x = zeros(n, 1);
xp = zeros(n, 1);
% Optimal step and momentum from the eigenvalue bounds 4 - 2cos(k*pi/(n+1))
% in (2, 6): alpha = 4/(sqrt(L)+sqrt(mu))^2, beta = ((sqrt(L)-sqrt(mu)) /
% (sqrt(L)+sqrt(mu)))^2 with mu = 2, L = 6.
alpha = 4 / (sqrt(6) + sqrt(2))^2;
beta = ((sqrt(6) - sqrt(2)) / (sqrt(6) + sqrt(2)))^2;
for it = 1:maxit
  r = b - A * x;
  xn = x + alpha * r + beta * (x - xp);
  xp = x;
  x = xn;
  if norm(r) < 1e-10
    break;
  end
end
