function s = orbec(nstep)
% ORBEC  Euler-Cromer integration of the one-body Kepler problem
% (Garcia, "Numerical Methods for Physics"). Small fixed-size vectors.
r = [1, 0];
v = [0, 6.2831853071795862];
gm = 4 * pi * pi;
tau = 0.0005;
s = 0;
for k = 1:nstep
  rn = sqrt(r(1)^2 + r(2)^2);
  accel = [-gm * r(1) / rn^3, -gm * r(2) / rn^3];
  v = [v(1) + tau * accel(1), v(2) + tau * accel(2)];
  r = [r(1) + tau * v(1), r(2) + tau * v(2)];
  s = s + rn;
end
