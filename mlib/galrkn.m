function s = galrkn(n)
% GALRKN  Galerkin finite-element solution of -u'' = f on [0, 1] with
% linear elements (after Garcia): per-element assembly with quadrature
% loops and an inline tridiagonal (Thomas) solve.
h = 1 / (n + 1);
d = zeros(1, n);
e = zeros(1, n);
F = zeros(1, n);
for i = 1:n
  d(i) = 2 / h;
end
for i = 1:n-1
  e(i) = -1 / h;
end
% Load vector by 4-point quadrature of f(x) phi_i(x), f = sin(pi x).
for i = 1:n
  xi = i * h;
  acc = 0;
  for q = 1:4
    xq = xi - h + (q - 0.5) * h / 2;
    w = 1 - abs(xq - xi) / h;
    acc = acc + sin(pi * xq) * w;
  end
  F(i) = acc * h / 2;
end
% Thomas algorithm for the symmetric tridiagonal system.
cp = zeros(1, n);
dp = zeros(1, n);
cp(1) = e(1) / d(1);
dp(1) = F(1) / d(1);
for i = 2:n
  m = d(i) - e(i - 1) * cp(i - 1);
  if i < n
    cp(i) = e(i) / m;
  end
  dp(i) = (F(i) - e(i - 1) * dp(i - 1)) / m;
end
u = zeros(1, n);
u(n) = dp(n);
for i = n-1:-1:1
  u(i) = dp(i) - cp(i) * u(i + 1);
end
% Compare with the exact solution sin(pi x) / pi^2 at the nodes.
s = 0;
for i = 1:n
  xi = i * h;
  s = s + abs(u(i) - sin(pi * xi) / (pi * pi));
end
