function U = finedif(a, b, c, n, m)
% FINEDIF  Finite-difference solution to the wave equation
% u_tt = c^2 u_xx on [0,a] x [0,b] (Mathews). Scalar-indexed loops.
h = a / (n - 1);
k = b / (m - 1);
r = c * k / h;
r2 = r^2;
r22 = r^2 / 2;
s1 = 1 - r^2;
s2 = 2 - 2 * r^2;
U = zeros(n, m);
for i = 2:n-1
  x = h * (i - 1);
  U(i, 1) = sin(pi * x);
  U(i, 2) = s1 * sin(pi * x) + r22 * (sin(pi * (x + h)) + sin(pi * (x - h)));
end
for j = 3:m
  for i = 2:n-1
    U(i, j) = s2 * U(i, j-1) + r2 * (U(i-1, j-1) + U(i+1, j-1)) - U(i, j-2);
  end
end
