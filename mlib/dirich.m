function U = dirich(n, tol, maxit)
% DIRICH  Dirichlet solution to Laplace's equation on the unit square.
% SOR iteration over the interior grid (Mathews, "Numerical Methods").
% Fortran-77 style: all array accesses use scalar subscripts.
U = zeros(n, n);
ave = (20 + 180 + 80 + 0) / 4;
for i = 2:n-1
  for j = 2:n-1
    U(i, j) = ave;
  end
end
for i = 1:n
  U(i, 1) = 20;
  U(i, n) = 180;
end
for j = 1:n
  U(1, j) = 80;
  U(n, j) = 0;
end
U(1, 1) = (20 + 80) / 2;
U(1, n) = (80 + 180) / 2;
U(n, 1) = (20 + 0) / 2;
U(n, n) = (180 + 0) / 2;
w = 4 / (2 + sqrt(4 - (cos(pi / (n - 1)) + cos(pi / (n - 1)))^2));
err = 1;
cnt = 0;
while err > tol
  if cnt >= maxit
    break;
  end
  err = 0;
  for j = 2:n-1
    for i = 2:n-1
      relx = w * (U(i, j+1) + U(i, j-1) + U(i+1, j) + U(i-1, j) - 4 * U(i, j)) / 4;
      U(i, j) = U(i, j) + relx;
      if err <= abs(relx)
        err = abs(relx);
      end
    end
  end
  cnt = cnt + 1;
end
