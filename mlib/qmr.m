function x = qmr(n, maxit)
% QMR  Quasi-minimal residual solver without look-ahead (Templates).
% Built-in heavy: matvecs, transposed matvecs, norms and scalar updates.
A = zeros(n, n);
for i = 1:n
  A(i, i) = 4;
end
for i = 1:n-1
  A(i, i + 1) = -1;
  A(i + 1, i) = -2;
end
b = ones(n, 1);
x = zeros(n, 1);
r = b - A * x;
vt = r;
rho = norm(vt);
wt = r;
xi = norm(wt);
gamma0 = 1;
eta = -1;
theta0 = 0;
epsok = 1;
d = zeros(n, 1);
s = zeros(n, 1);
p = zeros(n, 1);
q = zeros(n, 1);
delta = 0;
pde = 0;
for it = 1:maxit
  v = vt / rho;
  w = wt / xi;
  delta = w' * v;
  if it == 1
    p = v;
    q = w;
  else
    p = v - (xi * delta / epsok) * p;
    q = w - (rho * delta / epsok) * q;
  end
  pt = A * p;
  epsok = q' * pt;
  beta = epsok / delta;
  vt = pt - beta * v;
  rho0 = rho;
  rho = norm(vt);
  wt = A' * q - beta * w;
  xi = norm(wt);
  theta = rho / (gamma0 * abs(beta));
  gamma = 1 / sqrt(1 + theta^2);
  eta = -eta * rho0 * gamma^2 / (beta * gamma0^2);
  if it == 1
    d = eta * p;
    s = eta * pt;
  else
    d = eta * p + (theta0 * gamma)^2 * d;
    s = eta * pt + (theta0 * gamma)^2 * s;
  end
  x = x + d;
  r = r - s;
  theta0 = theta;
  gamma0 = gamma;
  if norm(r) < 1e-10
    break;
  end
end
