function s = icn(n)
% ICN  Incomplete Cholesky factorization (no fill) of the 2-D Laplacian
% (after R. Bramley). Scalar triple loop in Fortran-77 style.
A = zeros(n, n);
for i = 1:n
  A(i, i) = 4;
end
for i = 1:n-1
  A(i, i + 1) = -1;
  A(i + 1, i) = -1;
end
L = zeros(n, n);
for j = 1:n
  sum0 = A(j, j);
  for k = 1:j-1
    sum0 = sum0 - L(j, k) * L(j, k);
  end
  L(j, j) = sqrt(sum0);
  for i = j+1:n
    if A(i, j) ~= 0
      sum1 = A(i, j);
      for k = 1:j-1
        sum1 = sum1 - L(i, k) * L(j, k);
      end
      L(i, j) = sum1 / L(j, j);
    end
  end
end
s = 0;
for i = 1:n
  s = s + L(i, i);
end
