function M = mandel(n, maxit)
% MANDEL  Mandelbrot set membership counts on an n x n grid.
% Complex scalar arithmetic in the inner loop (uses the builtin i).
M = zeros(n, n);
for ix = 1:n
  cx = -2 + 3 * (ix - 1) / (n - 1);
  for iy = 1:n
    cy = -1.5 + 3 * (iy - 1) / (n - 1);
    c = cx + cy * i;
    z = 0 + 0 * i;
    k = 0;
    while k < maxit
      if abs(z) >= 2
        break;
      end
      z = z * z + c;
      k = k + 1;
    end
    M(ix, iy) = k;
  end
end
