function x = cgopt(n, maxit)
% CGOPT  Conjugate gradient with a diagonal (Jacobi) preconditioner
% (Templates for the Solution of Linear Systems). Built-in heavy: the
% runtime lives in matrix-vector products, dots and norms.
A = zeros(n, n);
for i = 1:n
  A(i, i) = 4;
end
for i = 1:n-1
  A(i, i + 1) = -1;
  A(i + 1, i) = -1;
end
b = ones(n, 1);
x = zeros(n, 1);
d = zeros(n, 1);
for i = 1:n
  d(i) = 1 / A(i, i);
end
r = b - A * x;
z = d .* r;
p = z;
rz = r' * z;
for it = 1:maxit
  q = A * p;
  alpha = rz / (p' * q);
  x = x + alpha * p;
  r = r - alpha * q;
  if norm(r) < 1e-10
    break;
  end
  z = d .* r;
  rznew = r' * z;
  beta = rznew / rz;
  rz = rznew;
  p = z + beta * p;
end
