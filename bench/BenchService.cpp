//===- bench/BenchService.cpp - Multi-session service benchmark -----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives the multi-session service at scale: hundreds of scripted
/// sessions cycled through a bounded live set by concurrent client
/// threads, every session defining and calling the same two functions.
/// What the paper's repository promises for one user across sessions -
/// "compiled code outlives the session that compiled it" - the service
/// extends across *concurrent* users: the first session pays each
/// compile, every later one reuses it from the shared cache.
///
/// Reported (BENCH_service.json): cross-session repo hit rate (target:
/// >= 90% of sessions served without a fresh compile), request latency
/// p50/p99, admission counters, and the accepted-vs-resolved accounting
/// (the service's contract: zero accepted requests lost). The process
/// exits nonzero when the hit-rate or accounting gates fail, so CI can
/// run it as a check.
///
/// MAJIC_BENCH_SESSIONS overrides the total session count (CI smoke runs
/// use a small value); the default is 320 sessions through a live cap of
/// 64, driven by 8 clients.
///
//===----------------------------------------------------------------------===//

#include "Harness.h"
#include "service/SessionManager.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace majic;
using namespace majic::bench;

namespace {

const char *kMandelSrc =
    "function it = mandel(cr, ci, maxit)\n"
    "zr = 0; zi = 0; it = 0;\n"
    "while it < maxit\n"
    "  t = zr * zr - zi * zi + cr;\n"
    "  zi = 2 * zr * zi + ci;\n"
    "  zr = t;\n"
    "  if zr * zr + zi * zi > 4\n"
    "    break;\n"
    "  end\n"
    "  it = it + 1;\n"
    "end\n";

const char *kSumSrc = "function s = sumsq(n)\n"
                      "s = 0;\n"
                      "for i = 1:n\n  s = s + i * i;\nend\n";

/// One scripted session: define both functions, call each a few times.
const char *kRequests[] = {
    kMandelSrc,
    kSumSrc,
    "a = mandel(-0.5, 0.3, 200);",
    "b = sumsq(500);",
    "c = mandel(0.1, 0.1, 150) + sumsq(300);",
};
constexpr unsigned kRequestsPerSession = 5;

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  uint64_t N = std::strtoull(V, nullptr, 10);
  return N ? N : Default;
}

/// Percentile estimate from a histogram snapshot: the floor of the bucket
/// the Pth observation falls in, in microseconds (log2 buckets; good to
/// 2x, which is plenty for a latency gate).
uint64_t percentileUs(const obs::HistogramSnapshot &H, double P) {
  if (!H.Count)
    return 0;
  uint64_t Rank = uint64_t(P * double(H.Count - 1)) + 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I != obs::Histogram::kNumBuckets; ++I) {
    Seen += H.Buckets[I];
    if (Seen >= Rank)
      return obs::Histogram::bucketFloorUs(I);
  }
  return obs::Histogram::bucketFloorUs(obs::Histogram::kNumBuckets - 1);
}

//===----------------------------------------------------------------------===//
// Oversubscription mode (MAJIC_BENCH_OVERSUBSCRIBE=1)
//===----------------------------------------------------------------------===//
//
// Sessions = 4x the live cap, all of them long-lived: the only way every
// user keeps a working session is hibernation churn - idle workspaces
// snapshotted to MAJIC_SESSION_DIR-style storage, resurrected on their
// next request. The run is held to the robustness bar, not a throughput
// one: zero accepted requests lost, and every session's outputs
// bit-identical to an uncapped reference run where nobody ever hibernated.

/// The per-slot scripts. Distinctive per slot so a resurrect that mixed
/// up two workspaces would change an output, not just a latency.
std::string oversubDef() {
  return "function s = sumsq(n)\ns = 0;\nfor i = 1:n\n  s = s + i * i;\n"
         "end\n";
}
std::string oversubSetup(unsigned Slot) {
  return "base = " + std::to_string(Slot + 1) + ";";
}
std::string oversubRound(unsigned Slot, unsigned Round) {
  return "y = sumsq(" + std::to_string(40 + Slot % 7) + ") + base * " +
         std::to_string(Round + 1);
}

/// Submits with retry: a RejectedOverloaded reply in this mode means
/// "nothing idle right now" - the documented retryable condition.
Reply submitRetry(SessionManager &M, SessionId Id, const std::string &Text,
                  std::atomic<uint64_t> &Retries) {
  for (;;) {
    Reply R = M.submit(Id, Text).get();
    if (R.St != Reply::Status::RejectedOverloaded)
      return R;
    Retries.fetch_add(1);
    std::this_thread::yield();
  }
}

/// Runs \p Slots sessions through \p Rounds request rounds on \p Clients
/// threads. Outputs land in \p Outputs at slot * Rounds + round; any
/// non-Ok terminal reply bumps \p Failures.
void driveOversubscribed(SessionManager &M, unsigned Slots, unsigned Clients,
                         unsigned Rounds, std::vector<std::string> &Outputs,
                         std::atomic<uint64_t> &Retries,
                         std::atomic<uint64_t> &Failures) {
  std::vector<std::thread> Pool;
  unsigned PerClient = (Slots + Clients - 1) / Clients;
  for (unsigned C = 0; C != Clients; ++C) {
    Pool.emplace_back([&, C] {
      unsigned Lo = C * PerClient;
      unsigned Hi = std::min(Slots, Lo + PerClient);
      std::vector<SessionId> Ids(Hi > Lo ? Hi - Lo : 0, 0);
      for (unsigned S = Lo; S != Hi; ++S) {
        SessionId Id = 0;
        while (!(Id = M.createSession())) {
          Retries.fetch_add(1);
          std::this_thread::yield();
        }
        Ids[S - Lo] = Id;
        if (submitRetry(M, Id, oversubDef(), Retries).St != Reply::Status::Ok)
          Failures.fetch_add(1);
        if (submitRetry(M, Id, oversubSetup(S), Retries).St !=
            Reply::Status::Ok)
          Failures.fetch_add(1);
      }
      for (unsigned R = 0; R != Rounds; ++R) {
        for (unsigned S = Lo; S != Hi; ++S) {
          Reply Rep = submitRetry(M, Ids[S - Lo], oversubRound(S, R), Retries);
          if (Rep.St != Reply::Status::Ok)
            Failures.fetch_add(1);
          Outputs[S * Rounds + R] = std::move(Rep.Output);
        }
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();
}

int runOversubscribed() {
  const unsigned LiveCap = unsigned(envU64("MAJIC_BENCH_LIVE_SESSIONS", 16));
  const unsigned Slots = LiveCap * 4;
  const unsigned Clients = unsigned(envU64("MAJIC_BENCH_CLIENTS", 4));
  const unsigned Rounds = unsigned(envU64("MAJIC_BENCH_ROUNDS", 3));

  printHeader("Multi-session service (oversubscribed)",
              std::to_string(Slots) + " persistent sessions through a live "
              "cap of " + std::to_string(LiveCap) + " (4x), " +
              std::to_string(Clients) + " clients, " +
              std::to_string(Rounds) + " rounds");

  std::atomic<uint64_t> Retries{0}, Failures{0};
  std::vector<std::string> Reference(size_t(Slots) * Rounds);
  std::vector<std::string> Observed(size_t(Slots) * Rounds);

  // Reference: same sessions, same requests, cap high enough that nobody
  // ever hibernates. These outputs are the bit-identity bar.
  {
    ServiceOptions O;
    O.Session.Policy = CompilePolicy::Jit;
    O.MaxSessions = Slots;
    O.Workers = Clients;
    O.SpecThreads = 1;
    SessionManager M(O);
    std::atomic<uint64_t> RefRetries{0};
    driveOversubscribed(M, Slots, Clients, Rounds, Reference, RefRetries,
                        Failures);
    M.shutdown();
  }

  // A scratch session directory; the snapshots are ephemeral benchmark
  // state, cleared on both sides of the run.
  std::string Dir = (std::filesystem::temp_directory_path() /
                     "majic_bench_oversub_sessions")
                        .string();
  std::error_code CleanupEC;
  std::filesystem::remove_all(Dir, CleanupEC);
  ServiceOptions O;
  O.Session.Policy = CompilePolicy::Jit;
  O.MaxSessions = LiveCap;
  O.Workers = Clients;
  O.SpecThreads = 1;
  O.SessionDir = Dir;
  SessionManager M(O);

  Timer Wall;
  driveOversubscribed(M, Slots, Clients, Rounds, Observed, Retries, Failures);
  double Seconds = Wall.seconds();

  obs::MetricsSnapshot Snap = M.sampleMetrics();
  auto CounterOf = [&Snap](const std::string &Name) -> uint64_t {
    for (const auto &[N, V] : Snap.Counters)
      if (N == Name)
        return V;
    return 0;
  };
  const obs::HistogramSnapshot *HibHist = nullptr, *ResHist = nullptr;
  for (const obs::HistogramSnapshot &H : Snap.Histograms) {
    if (H.Name == "service.hibernate.seconds")
      HibHist = &H;
    if (H.Name == "service.resurrect.seconds")
      ResHist = &H;
  }

  uint64_t Hibernations = CounterOf("service.hibernates");
  uint64_t Resurrections = CounterOf("service.resurrects");
  uint64_t SvcAccepted = CounterOf("service.requests.accepted");
  uint64_t SvcCompleted = CounterOf("service.requests.completed");
  uint64_t SvcFailed = CounterOf("service.requests.failed");
  uint64_t AcceptedLost = SvcAccepted - (SvcCompleted + SvcFailed);

  uint64_t Mismatches = 0;
  for (size_t I = 0; I != Observed.size(); ++I)
    if (Observed[I] != Reference[I])
      ++Mismatches;

  uint64_t HibP50 = HibHist ? percentileUs(*HibHist, 0.50) : 0;
  uint64_t HibP99 = HibHist ? percentileUs(*HibHist, 0.99) : 0;
  uint64_t ResP50 = ResHist ? percentileUs(*ResHist, 0.50) : 0;
  uint64_t ResP99 = ResHist ? percentileUs(*ResHist, 0.99) : 0;

  std::printf("  sessions            %u persistent through live cap %u\n",
              Slots, LiveCap);
  std::printf("  hibernations        %llu (p50 %llu us, p99 %llu us)\n",
              (unsigned long long)Hibernations, (unsigned long long)HibP50,
              (unsigned long long)HibP99);
  std::printf("  resurrections       %llu (p50 %llu us, p99 %llu us)\n",
              (unsigned long long)Resurrections, (unsigned long long)ResP50,
              (unsigned long long)ResP99);
  std::printf("  no-idle retries     %llu\n", (unsigned long long)Retries.load());
  std::printf("  accepted lost       %llu (must be 0)\n",
              (unsigned long long)AcceptedLost);
  std::printf("  output mismatches   %llu of %zu vs uncapped (must be 0)\n",
              (unsigned long long)Mismatches, Observed.size());
  std::printf("  wall time           %.2f s\n", Seconds);

  JsonWriter W;
  W.beginObject();
  W.field("benchmark", "service");
  W.field("mode", "oversubscribed");
  writeMachineInfo(W);
  W.beginObject("config");
  W.field("live_cap", LiveCap);
  W.field("sessions", Slots);
  W.field("clients", Clients);
  W.field("rounds", Rounds);
  W.endObject();
  W.beginObject("results");
  W.field("hibernations", Hibernations);
  W.field("resurrections", Resurrections);
  W.field("hibernate_p50_us", HibP50);
  W.field("hibernate_p99_us", HibP99);
  W.field("resurrect_p50_us", ResP50);
  W.field("resurrect_p99_us", ResP99);
  W.field("no_idle_retries", Retries.load());
  W.field("accepted_lost", AcceptedLost);
  W.field("request_failures", Failures.load());
  W.field("output_mismatches", Mismatches);
  W.field("outputs_identical", Mismatches == 0 ? 1 : 0);
  W.field("wall_seconds", Seconds);
  W.endObject();
  W.endObject();
  if (!W.writeFile("BENCH_service.json"))
    std::fprintf(stderr, "warning: could not write BENCH_service.json\n");
  else
    std::printf("\n  wrote BENCH_service.json\n");

  M.shutdown();
  std::filesystem::remove_all(Dir, CleanupEC);

  bool Pass = true;
  if (AcceptedLost != 0) {
    std::fprintf(stderr, "FAIL: %llu accepted requests were lost\n",
                 (unsigned long long)AcceptedLost);
    Pass = false;
  }
  if (Failures.load() != 0) {
    std::fprintf(stderr, "FAIL: %llu requests failed outright\n",
                 (unsigned long long)Failures.load());
    Pass = false;
  }
  if (Mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu outputs differ from the uncapped reference\n",
                 (unsigned long long)Mismatches);
    Pass = false;
  }
  if (Hibernations < Slots - LiveCap || Resurrections == 0) {
    std::fprintf(stderr,
                 "FAIL: oversubscription never exercised hibernation "
                 "(%llu hibernates, %llu resurrects)\n",
                 (unsigned long long)Hibernations,
                 (unsigned long long)Resurrections);
    Pass = false;
  }
  return Pass ? 0 : 1;
}

} // namespace

int main() {
  if (envU64("MAJIC_BENCH_OVERSUBSCRIBE", 0))
    return runOversubscribed();
  const uint64_t TotalSessions = envU64("MAJIC_BENCH_SESSIONS", 320);
  const unsigned LiveCap = unsigned(envU64("MAJIC_BENCH_LIVE_SESSIONS", 64));
  const unsigned Clients = unsigned(envU64("MAJIC_BENCH_CLIENTS", 8));

  printHeader("Multi-session service",
              std::to_string(TotalSessions) + " sessions through a live cap " +
                  "of " + std::to_string(LiveCap) + ", " +
                  std::to_string(Clients) + " clients, 2 shared functions");

  ServiceOptions O;
  O.Session.Policy = CompilePolicy::Jit;
  O.MaxSessions = LiveCap;
  O.Workers = Clients;
  O.SpecThreads = 1;
  SessionManager M(O);

  std::atomic<uint64_t> NextSession{0};
  std::atomic<uint64_t> Accepted{0}, Resolved{0}, OkReplies{0}, ErrReplies{0};
  std::atomic<uint64_t> Rejected{0}, CreateRetries{0};

  Timer Wall;
  std::vector<std::thread> Pool;
  Pool.reserve(Clients);
  for (unsigned C = 0; C != Clients; ++C) {
    Pool.emplace_back([&] {
      while (NextSession.fetch_add(1) < TotalSessions) {
        // The live set is bounded: creation can be rejected while other
        // clients hold every slot. Back off and retry - rejection is
        // admission control working, not an error.
        SessionId Id = 0;
        while (!(Id = M.createSession())) {
          CreateRetries.fetch_add(1);
          std::this_thread::yield();
        }
        std::vector<std::future<Reply>> Fs;
        Fs.reserve(kRequestsPerSession);
        for (unsigned R = 0; R != kRequestsPerSession; ++R)
          Fs.push_back(M.submit(Id, kRequests[R]));
        for (auto &F : Fs) {
          Reply Rep = F.get();
          Resolved.fetch_add(1);
          switch (Rep.St) {
          case Reply::Status::Ok:
            Accepted.fetch_add(1);
            OkReplies.fetch_add(1);
            break;
          case Reply::Status::Error:
            Accepted.fetch_add(1);
            ErrReplies.fetch_add(1);
            break;
          default:
            Rejected.fetch_add(1);
            break;
          }
        }
        M.destroySession(Id);
      }
    });
  }
  for (std::thread &T : Pool)
    T.join();
  double Seconds = Wall.seconds();

  obs::MetricsSnapshot Snap = M.sampleMetrics();
  auto CounterOf = [&Snap](const std::string &Name) -> uint64_t {
    for (const auto &[N, V] : Snap.Counters)
      if (N == Name)
        return V;
    return 0;
  };
  const obs::HistogramSnapshot *ReqHist = nullptr, *QueueHist = nullptr;
  for (const obs::HistogramSnapshot &H : Snap.Histograms) {
    if (H.Name == "service.request.seconds")
      ReqHist = &H;
    if (H.Name == "service.request.queue_seconds")
      QueueHist = &H;
  }

  // Cross-session reuse: every session compiles nothing the cache already
  // holds. The first session publishes one object per (function, sig);
  // every later session's compile path must hit. Sessions served entirely
  // without a fresh compile = total - sessions that published something.
  uint64_t Hits = M.sharedCache().hits();
  uint64_t Misses = M.sharedCache().misses();
  uint64_t Published = M.sharedCache().published();
  double HitRate =
      (Hits + Misses) ? double(Hits) / double(Hits + Misses) : 0.0;

  uint64_t SvcAccepted = CounterOf("service.requests.accepted");
  uint64_t SvcCompleted = CounterOf("service.requests.completed");
  uint64_t SvcFailed = CounterOf("service.requests.failed");
  uint64_t AcceptedLost = SvcAccepted - (SvcCompleted + SvcFailed);

  uint64_t P50 = ReqHist ? percentileUs(*ReqHist, 0.50) : 0;
  uint64_t P99 = ReqHist ? percentileUs(*ReqHist, 0.99) : 0;
  uint64_t QP50 = QueueHist ? percentileUs(*QueueHist, 0.50) : 0;
  uint64_t QP99 = QueueHist ? percentileUs(*QueueHist, 0.99) : 0;

  std::printf("  sessions            %llu (live cap %u, %u clients)\n",
              (unsigned long long)TotalSessions, LiveCap, Clients);
  std::printf("  requests            %llu accepted, %llu ok, %llu error, "
              "%llu rejected\n",
              (unsigned long long)SvcAccepted, (unsigned long long)OkReplies.load(),
              (unsigned long long)ErrReplies.load(),
              (unsigned long long)Rejected.load());
  std::printf("  shared cache        %llu hits / %llu misses (hit rate "
              "%.1f%%), %llu published\n",
              (unsigned long long)Hits, (unsigned long long)Misses,
              HitRate * 100.0, (unsigned long long)Published);
  std::printf("  request latency     p50 %llu us, p99 %llu us\n",
              (unsigned long long)P50, (unsigned long long)P99);
  std::printf("  queue latency       p50 %llu us, p99 %llu us\n",
              (unsigned long long)QP50, (unsigned long long)QP99);
  std::printf("  accepted lost       %llu (must be 0)\n",
              (unsigned long long)AcceptedLost);
  std::printf("  wall time           %.2f s (%.0f requests/s)\n", Seconds,
              double(Resolved.load()) / (Seconds > 0 ? Seconds : 1));

  JsonWriter W;
  W.beginObject();
  W.field("benchmark", "service");
  writeMachineInfo(W);
  W.beginObject("config");
  W.field("sessions", TotalSessions);
  W.field("live_cap", LiveCap);
  W.field("clients", Clients);
  W.field("requests_per_session", kRequestsPerSession);
  W.endObject();
  W.beginObject("results");
  W.field("requests_accepted", SvcAccepted);
  W.field("requests_ok", OkReplies.load());
  W.field("requests_error", ErrReplies.load());
  W.field("requests_rejected", Rejected.load());
  W.field("accepted_lost", AcceptedLost);
  W.field("create_retries", CreateRetries.load());
  W.field("cache_hits", Hits);
  W.field("cache_misses", Misses);
  W.field("cache_published", Published);
  W.field("cache_hit_rate", HitRate);
  W.field("latency_p50_us", P50);
  W.field("latency_p99_us", P99);
  W.field("queue_p50_us", QP50);
  W.field("queue_p99_us", QP99);
  W.field("wall_seconds", Seconds);
  W.endObject();
  W.endObject();
  if (!W.writeFile("BENCH_service.json"))
    std::fprintf(stderr, "warning: could not write BENCH_service.json\n");
  else
    std::printf("\n  wrote BENCH_service.json\n");

  M.shutdown();

  // The gates CI holds this harness to.
  bool Pass = true;
  if (HitRate < 0.9 && TotalSessions >= 8) {
    std::fprintf(stderr, "FAIL: cross-session cache hit rate %.3f < 0.9\n",
                 HitRate);
    Pass = false;
  }
  if (AcceptedLost != 0) {
    std::fprintf(stderr, "FAIL: %llu accepted requests were lost\n",
                 (unsigned long long)AcceptedLost);
    Pass = false;
  }
  if (Resolved.load() != TotalSessions * kRequestsPerSession) {
    std::fprintf(stderr, "FAIL: %llu futures resolved, expected %llu\n",
                 (unsigned long long)Resolved.load(),
                 (unsigned long long)(TotalSessions * kRequestsPerSession));
    Pass = false;
  }
  return Pass ? 0 : 1;
}
