//===- bench/BenchResponsiveness.cpp - Time-to-first-result under snooping ------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The responsiveness claim behind the asynchronous speculation subsystem
// (Section 1: MaJIC "hides the compiler's latency from the user"). The
// scenario is a fresh interactive session: the snooper discovers the whole
// mlib corpus, and the user immediately invokes one function. Measured:
// wall time from the start of snoop() through the first result.
//
//  - synchronous baseline (BackgroundCompileThreads = 0): snoop() compiles
//    all 16 corpus functions before returning, so the first result waits
//    behind every speculative compile;
//  - background mode (workers > 0): snoop() only enqueues; the invocation
//    proceeds at once (interpreting if its own compile is still in flight)
//    while the workers chew through the queue.
//
// A third, profile-primed mode isolates what the persisted profiles buy
// on top of background workers: a priming session runs the benchmark so
// its profile entry dominates, writing profiles.mjp to a profile-only
// directory (no code store - the compiled code is NOT reused, only the
// invocation counts and observed signatures). The measured session then
// snoops hot-first and speculates on the observed signature; an untimed
// paused-pool probe records where the benchmark lands in the queue.
//
// All modes must produce identical numeric results; the table reports
// the latency ratio (the acceptance bar for the subsystem is <= 0.50 on at
// least three programs). Emits BENCH_responsiveness.json with the
// queue-order and time-to-first-result numbers.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

using namespace majic;
using namespace majic::bench;

namespace {

struct Scenario {
  const char *Name;
  std::vector<double> Args;
};

// Small first-invocation arguments (an interactive user's exploratory
// call), matching the sizes the corpus tests use.
const Scenario kScenarios[] = {
    {"fibonacci", {11}},
    {"dirich", {20, 1e-3, 10}},
    {"sor", {24, 1.2, 10}},
    {"crnich", {1, 3, 33, 33}},
    {"galrkn", {24}},
};

std::vector<ValuePtr> boxArgs(const std::vector<double> &Args) {
  std::vector<ValuePtr> Out;
  for (double A : Args)
    Out.push_back(A == std::floor(A)
                      ? makeValue(Value::intScalar(static_cast<long>(A)))
                      : makeValue(Value::scalar(A)));
  return Out;
}

struct FirstResult {
  double Seconds;
  std::vector<ValuePtr> Values;
};

/// One fresh-session measurement: snoop the full corpus, then invoke
/// \p S. Wall time covers snoop() + the first call - the user-perceived
/// time to the first answer.
FirstResult measure(const Scenario &S, unsigned Workers) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = Workers;
  Engine E(O);
  E.watchDirectory(mlibDirectory());
  Timer T;
  E.snoop();
  FirstResult R;
  R.Values = E.callFunction(S.Name, boxArgs(S.Args), 1, SourceLoc());
  R.Seconds = T.seconds();
  E.drainCompiles(); // settle the queue before the engine dies
  return R;
}

/// Primes \p ProfDir: a speculative session snoops the corpus, drains the
/// backlog, then runs the benchmark a few times; teardown persists the
/// profile (invocation counts + observed signatures) to profiles.mjp.
/// No RepoDir is set, so no compiled code survives - only the profile.
void primeProfiles(const Scenario &S, unsigned Workers,
                   const std::string &ProfDir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = Workers;
  O.ProfileDir = ProfDir;
  Engine E(O);
  E.watchDirectory(mlibDirectory());
  E.snoop();
  E.drainCompiles();
  for (int I = 0; I != 3; ++I)
    E.callFunction(S.Name, boxArgs(S.Args), 1, SourceLoc());
  E.drainCompiles();
}

struct QueueProbe {
  size_t Rank = 0; ///< 0-based position of the benchmark in the queue
  size_t Len = 0;
  std::string Front;
};

/// Untimed probe of the primed session's speculation queue: pause the
/// workers, snoop, and record where the hot-first ranking put the
/// benchmark. This session has never run anything - the ordering comes
/// entirely from the persisted profile.
QueueProbe probeQueueOrder(const Scenario &S, unsigned Workers,
                           const std::string &ProfDir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = Workers;
  O.ProfileDir = ProfDir;
  Engine E(O);
  E.pauseBackgroundCompiles();
  E.watchDirectory(mlibDirectory());
  E.snoop();
  QueueProbe P;
  std::vector<std::string> Q = E.queuedSpeculations();
  P.Len = Q.size();
  P.Rank = Q.size();
  for (size_t I = 0; I != Q.size(); ++I)
    if (Q[I] == S.Name) {
      P.Rank = I;
      break;
    }
  if (!Q.empty())
    P.Front = Q.front();
  E.resumeBackgroundCompiles();
  E.drainCompiles();
  return P;
}

/// The primed measurement: like measure(), but the engine loads the
/// persisted profile at birth, so snoop() queues hot-first and the
/// workers compile the observed signature instead of the hint's guess.
FirstResult measurePrimed(const Scenario &S, unsigned Workers,
                          const std::string &ProfDir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = Workers;
  O.ProfileDir = ProfDir;
  Engine E(O);
  E.watchDirectory(mlibDirectory());
  Timer T;
  E.snoop();
  FirstResult R;
  R.Values = E.callFunction(S.Name, boxArgs(S.Args), 1, SourceLoc());
  R.Seconds = T.seconds();
  E.drainCompiles();
  return R;
}

bool sameValues(const std::vector<ValuePtr> &A, const std::vector<ValuePtr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    const Value &X = *A[I], &Y = *B[I];
    if (X.rows() != Y.rows() || X.cols() != Y.cols() ||
        X.isComplex() != Y.isComplex())
      return false;
    for (size_t K = 0; K != X.numel(); ++K)
      if (X.reData()[K] != Y.reData()[K] ||
          (X.isComplex() && X.imData()[K] != Y.imData()[K]))
        return false;
  }
  return true;
}

} // namespace

int main() {
  namespace fs = std::filesystem;
  const unsigned Workers = 2;
  const fs::path ProfDir =
      fs::temp_directory_path() / "majic_bench_responsiveness_prof";

  printHeader("Responsiveness: time to first result after snooping mlib",
              "fresh session, snoop() discovers the whole corpus, then one "
              "invocation;\nsync = speculative compiles block snoop(), "
              "async = background workers,\nprimed = async + persisted "
              "profile (hot-first queue, observed signature)");

  std::printf("%-10s %12s %12s %8s %12s %7s  %s\n", "benchmark", "sync (ms)",
              "async (ms)", "ratio", "primed (ms)", "queue", "results");
  std::printf("%.*s\n", 81,
              "-----------------------------------------------------------"
              "-----------------------");

  JsonWriter W;
  W.beginObject();
  W.field("benchmark_set", "responsiveness");
  W.field("policy", "speculative");
  W.field("workers", Workers);
  writeMachineInfo(W);
  W.beginArray("results");

  int Passing = 0, Matching = 0;
  const int N = repetitions();
  for (const Scenario &S : kScenarios) {
    // Best-of-N with a fresh engine per run: first-invocation latency is
    // only defined against an empty repository.
    FirstResult Sync = measure(S, 0), Async = measure(S, Workers);
    for (int R = 1; R < N; ++R) {
      FirstResult S2 = measure(S, 0);
      if (S2.Seconds < Sync.Seconds)
        Sync = std::move(S2);
      FirstResult A2 = measure(S, Workers);
      if (A2.Seconds < Async.Seconds)
        Async = std::move(A2);
    }

    // Profile-primed: fresh profile directory per benchmark so each row
    // measures its own priming, not a mixture.
    fs::remove_all(ProfDir);
    primeProfiles(S, Workers, ProfDir.string());
    QueueProbe Q = probeQueueOrder(S, Workers, ProfDir.string());
    FirstResult Primed = measurePrimed(S, Workers, ProfDir.string());
    for (int R = 1; R < N; ++R) {
      FirstResult P2 = measurePrimed(S, Workers, ProfDir.string());
      if (P2.Seconds < Primed.Seconds)
        Primed = std::move(P2);
    }

    double Ratio = Async.Seconds / Sync.Seconds;
    bool Match = sameValues(Sync.Values, Async.Values) &&
                 sameValues(Sync.Values, Primed.Values);
    Passing += Ratio <= 0.5;
    Matching += Match;
    std::printf("%-10s %12.3f %12.3f %8.2f %12.3f %4zu/%-2zu  %s\n", S.Name,
                Sync.Seconds * 1e3, Async.Seconds * 1e3, Ratio,
                Primed.Seconds * 1e3, Q.Rank, Q.Len,
                Match ? "identical" : "MISMATCH");

    W.beginObject();
    W.field("benchmark", S.Name);
    W.field("sync_ms", Sync.Seconds * 1e3);
    W.field("async_ms", Async.Seconds * 1e3);
    W.field("ratio", Ratio);
    W.field("primed_ms", Primed.Seconds * 1e3);
    W.field("primed_queue_rank", static_cast<uint64_t>(Q.Rank));
    W.field("primed_queue_len", static_cast<uint64_t>(Q.Len));
    W.field("primed_queue_front", Q.Front);
    W.field("results_identical", Match);
    W.endObject();
  }
  fs::remove_all(ProfDir);

  const int Total = static_cast<int>(std::size(kScenarios));
  W.endArray();
  W.field("ratio_passing", static_cast<uint64_t>(Passing));
  W.field("results_identical", static_cast<uint64_t>(Matching));
  W.field("total", static_cast<uint64_t>(Total));
  W.endObject();
  if (!W.writeFile("BENCH_responsiveness.json"))
    std::fprintf(stderr,
                 "warning: could not write BENCH_responsiveness.json\n");

  std::printf("\n%d/%d program(s) at or under the 0.50 latency ratio; "
              "%d/%d with identical results.\n",
              Passing, Total, Matching, Total);
  return Passing >= 3 && Matching == Total ? 0 : 1;
}
