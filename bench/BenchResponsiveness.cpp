//===- bench/BenchResponsiveness.cpp - Time-to-first-result under snooping ------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The responsiveness claim behind the asynchronous speculation subsystem
// (Section 1: MaJIC "hides the compiler's latency from the user"). The
// scenario is a fresh interactive session: the snooper discovers the whole
// mlib corpus, and the user immediately invokes one function. Measured:
// wall time from the start of snoop() through the first result.
//
//  - synchronous baseline (BackgroundCompileThreads = 0): snoop() compiles
//    all 16 corpus functions before returning, so the first result waits
//    behind every speculative compile;
//  - background mode (workers > 0): snoop() only enqueues; the invocation
//    proceeds at once (interpreting if its own compile is still in flight)
//    while the workers chew through the queue.
//
// The two modes must produce identical numeric results; the table reports
// the latency ratio (the acceptance bar for the subsystem is <= 0.50 on at
// least three programs).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace majic;
using namespace majic::bench;

namespace {

struct Scenario {
  const char *Name;
  std::vector<double> Args;
};

// Small first-invocation arguments (an interactive user's exploratory
// call), matching the sizes the corpus tests use.
const Scenario kScenarios[] = {
    {"fibonacci", {11}},
    {"dirich", {20, 1e-3, 10}},
    {"sor", {24, 1.2, 10}},
    {"crnich", {1, 3, 33, 33}},
    {"galrkn", {24}},
};

std::vector<ValuePtr> boxArgs(const std::vector<double> &Args) {
  std::vector<ValuePtr> Out;
  for (double A : Args)
    Out.push_back(A == std::floor(A)
                      ? makeValue(Value::intScalar(static_cast<long>(A)))
                      : makeValue(Value::scalar(A)));
  return Out;
}

struct FirstResult {
  double Seconds;
  std::vector<ValuePtr> Values;
};

/// One fresh-session measurement: snoop the full corpus, then invoke
/// \p S. Wall time covers snoop() + the first call - the user-perceived
/// time to the first answer.
FirstResult measure(const Scenario &S, unsigned Workers) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = Workers;
  Engine E(O);
  E.watchDirectory(mlibDirectory());
  Timer T;
  E.snoop();
  FirstResult R;
  R.Values = E.callFunction(S.Name, boxArgs(S.Args), 1, SourceLoc());
  R.Seconds = T.seconds();
  E.drainCompiles(); // settle the queue before the engine dies
  return R;
}

bool sameValues(const std::vector<ValuePtr> &A, const std::vector<ValuePtr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    const Value &X = *A[I], &Y = *B[I];
    if (X.rows() != Y.rows() || X.cols() != Y.cols() ||
        X.isComplex() != Y.isComplex())
      return false;
    for (size_t K = 0; K != X.numel(); ++K)
      if (X.reData()[K] != Y.reData()[K] ||
          (X.isComplex() && X.imData()[K] != Y.imData()[K]))
        return false;
  }
  return true;
}

} // namespace

int main() {
  const unsigned Workers = 2;
  printHeader("Responsiveness: time to first result after snooping mlib",
              "fresh session, snoop() discovers the whole corpus, then one "
              "invocation;\nsync = speculative compiles block snoop(), "
              "async = background workers");

  std::printf("%-10s %12s %12s %8s  %s\n", "benchmark", "sync (ms)",
              "async (ms)", "ratio", "results");
  std::printf("%.*s\n", 60,
              "-----------------------------------------------------------"
              "-----");

  int Passing = 0, Matching = 0;
  const int N = repetitions();
  for (const Scenario &S : kScenarios) {
    // Best-of-N with a fresh engine per run: first-invocation latency is
    // only defined against an empty repository.
    FirstResult Sync = measure(S, 0), Async = measure(S, Workers);
    for (int R = 1; R < N; ++R) {
      FirstResult S2 = measure(S, 0);
      if (S2.Seconds < Sync.Seconds)
        Sync = std::move(S2);
      FirstResult A2 = measure(S, Workers);
      if (A2.Seconds < Async.Seconds)
        Async = std::move(A2);
    }
    double Ratio = Async.Seconds / Sync.Seconds;
    bool Match = sameValues(Sync.Values, Async.Values);
    Passing += Ratio <= 0.5;
    Matching += Match;
    std::printf("%-10s %12.3f %12.3f %8.2f  %s\n", S.Name,
                Sync.Seconds * 1e3, Async.Seconds * 1e3, Ratio,
                Match ? "identical" : "MISMATCH");
  }

  std::printf("\n%d/%zu program(s) at or under the 0.50 latency ratio; "
              "%d/%zu with identical results.\n",
              Passing, std::size(kScenarios), Matching, std::size(kScenarios));
  return Passing >= 3 && Matching == static_cast<int>(std::size(kScenarios))
             ? 0
             : 1;
}
