//===- bench/BenchAblationBackend.cpp - Section 5's backend headroom estimate ---===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates the Section 5 hand-optimization experiment: "we
// hand-optimized the finedif benchmark by hand-unrolling its innermost loop
// and performing common subexpression elimination. We obtained a version of
// finedif that was almost 100% faster than the normal JIT-compiled finedif".
// Here the optimizer pipeline (unroll + CSE + LICM) plays the hand
// optimizer: it runs on top of JIT-quality annotations, compile time
// excluded, for the scalar benchmarks the paper calls out.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace majic;
using namespace majic::bench;

namespace {

double timeExecOnly(const BenchmarkSpec &Spec, CompilePolicy Policy) {
  EngineOptions O;
  O.Policy = Policy;
  Engine E(O);
  loadBenchmark(E, Spec);
  if (Policy == CompilePolicy::Falcon)
    E.precompileWithArgs(Spec.Name, scaledArgs(Spec));
  else
    E.callFunction(Spec.Name, scaledArgs(Spec), 1, SourceLoc()); // warm JIT
  return bestOf(repetitions(), [&] {
    E.context().Rand.reseed(0x5eed5eed5eedull);
    E.callFunction(Spec.Name, scaledArgs(Spec), 1, SourceLoc());
  });
}

} // namespace

int main() {
  printHeader("Backend-headroom ablation (Section 5)",
              "JIT code vs the same annotations through the optimizing "
              "backend (unroll + CSE + LICM);\ncompile time excluded in "
              "both columns");

  std::printf("%-10s %12s %14s %10s\n", "benchmark", "jit exec(s)",
              "optimized(s)", "gain");
  std::printf("%.*s\n", 50,
              "-----------------------------------------------------------");

  for (const char *Name : {"finedif", "dirich", "crnich", "icn", "mandel"}) {
    const BenchmarkSpec *Spec = findBenchmark(Name);
    double TJit = timeExecOnly(*Spec, CompilePolicy::Jit);
    double TOpt = timeExecOnly(*Spec, CompilePolicy::Falcon);
    std::printf("%-10s %12.4f %14.4f %9.1f%%\n", Name, TJit, TOpt,
                100.0 * (TJit / TOpt - 1.0));
  }
  std::printf("\nPaper claim: unrolling + CSE makes finedif 'almost 100%% "
              "faster' than plain JIT\ncode, 'within 20%% of the best "
              "native-compiled version'; similar but smaller gains\non the "
              "other Fortran-like benchmarks.\n");
  return 0;
}
