//===- bench/BenchTable2Spec.cpp - Table 2: JIT vs speculative inference --------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 2: "speedups produced by the same code generator using
// type annotations generated with either speculation or JIT type inference
// (the speedups were calculated without considering compile time)."
//
// Methodology here: both configurations use the identical pipeline
// (Optimized code generator), differing only in the seeding signature —
// the invocation's actual types (JIT inference) vs the speculated guess.
// When the speculative signature rejects the invocation, the JIT recompiles
// at runtime and Table 2 reports that degraded number (the paper's
// "recursive benchmarks ... always need to be recompiled at runtime").
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace majic;
using namespace majic::bench;

namespace {

/// Execution time with speculation-derived annotations: the speculative
/// object is precompiled; a signature mismatch falls back to the JIT
/// inside the timed region.
double timeSpecAnnotations(const BenchmarkSpec &Spec,
                           const PlatformModel &Platform, bool &Rejected) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.Platform = Platform;
  Engine E(O);
  loadBenchmark(E, Spec);
  E.precompileSpeculative(Spec.Name);
  double T = bestOf(repetitions(), [&] {
    E.context().Rand.reseed(0x5eed5eed5eedull);
    E.callFunction(Spec.Name, scaledArgs(Spec), 1, SourceLoc());
  });
  Rejected = E.jitCompiles() > 0;
  return T;
}

/// Execution time with JIT-inference annotations through the same code
/// generator, compile time excluded (precompiled with the actual types).
double timeJitAnnotations(const BenchmarkSpec &Spec,
                          const PlatformModel &Platform) {
  EngineOptions O;
  O.Policy = CompilePolicy::Falcon; // optimized pipeline, actual types
  O.Platform = Platform;
  Engine E(O);
  loadBenchmark(E, Spec);
  E.precompileWithArgs(Spec.Name, scaledArgs(Spec));
  return bestOf(repetitions(), [&] {
    E.context().Rand.reseed(0x5eed5eed5eedull);
    E.callFunction(Spec.Name, scaledArgs(Spec), 1, SourceLoc());
  });
}

} // namespace

int main() {
  PlatformModel Platform = PlatformModel::sparc();
  printHeader("Table 2: JIT vs. speculative type inference",
              "same code generator, annotations from speculation vs the "
              "runtime signature;\ncompile time excluded (except inside "
              "rejected speculations, per the paper)");

  std::printf("%-10s %10s %10s %8s  %s\n", "benchmark", "spec", "JIT",
              "ratio", "notes");
  std::printf("%.*s\n", 64,
              "-----------------------------------------------------------"
              "-----");

  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    double Ti = timeInterpreted(Spec);
    bool Rejected = false;
    double TSpec = timeSpecAnnotations(Spec, Platform, Rejected);
    double TJit = timeJitAnnotations(Spec, Platform);
    std::printf("%-10s %10.2f %10.2f %8.2f  %s\n", Spec.Name.c_str(),
                Ti / TSpec, Ti / TJit, (Ti / TSpec) / (Ti / TJit),
                Rejected ? "speculation rejected -> JIT recompiled" : "");
  }
  std::printf("\nExpected shape (paper Table 2): spec matches JIT closely "
              "on scalar and vector codes;\nbuiltin-heavy codes (qmr, mei) "
              "and recursion (fibo, ack) lose ground.\n");
  return 0;
}
