//===- bench/BenchFig4Sparc.cpp - Figure 4: speedups on SPARC -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 4: per-benchmark speedups (log scale in the paper) of
// mcc, FALCON, MaJIC-JIT and MaJIC-speculative over the interpreter, on the
// SPARC platform model. The paper omits FALCON bars for ack, fractal, fibo
// and mandel ("not part of the original FALCON benchmark series"); this
// harness measures them anyway and tags the rows.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>
#include <set>
#include <string>

using namespace majic;
using namespace majic::bench;

int main() {
  PlatformModel Platform = PlatformModel::sparc();
  printHeader("Figure 4: performance on the SPARC platform",
              "speedup s = t_i / t_c; jit includes compile time, "
              "mcc/falcon/spec are precompiled");

  const std::set<std::string> NoFalconInPaper = {"ackermann", "fractal",
                                                 "fibonacci", "mandel"};

  std::printf("%-10s %9s %9s %9s %9s %9s\n", "benchmark", "t_i(s)", "mcc",
              "falcon", "jit", "spec");
  std::printf("%.*s\n", 62,
              "-----------------------------------------------------------"
              "---");

  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    double Ti = timeInterpreted(Spec);
    double Mcc = timeMcc(Spec, Platform);
    double Falcon = timeFalcon(Spec, Platform);
    double Jit = timeJit(Spec, Platform);
    double SpecT = timeSpec(Spec, Platform);
    std::printf("%-10s %9.3f %9.2f %9.2f %9.2f %9.2f%s\n", Spec.Name.c_str(),
                Ti, Ti / Mcc, Ti / Falcon, Ti / Jit, Ti / SpecT,
                NoFalconInPaper.count(Spec.Name)
                    ? "   (no falcon bar in the paper)"
                    : "");
  }
  std::printf("\nExpected shape (paper): mcc stays within a few x; jit and "
              "spec gain 1-3 orders of\nmagnitude on scalar/small-vector "
              "codes; builtin-heavy codes (cgopt, mei, qmr, sor)\nbarely "
              "improve under any compiler.\n");
  return 0;
}
