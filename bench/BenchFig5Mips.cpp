//===- bench/BenchFig5Mips.cpp - Figure 5: speedups on MIPS ---------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 5: the same four configurations on the MIPS platform
// model, where the JIT backend is immature (no small-vector unrolling, half
// the register file) and the native compiler is excellent (two optimizer
// rounds). The paper's qualitative finding: "on the MIPS platform the
// native compiler is excellent, causing MaJIC's JIT compiler to fall behind
// FALCON". The paper left adapt out ("the JIT compiler on this platform is
// not yet completely implemented"); this harness measures it anyway.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace majic;
using namespace majic::bench;

int main() {
  PlatformModel Mips = PlatformModel::mips();
  PlatformModel Sparc = PlatformModel::sparc();
  printHeader("Figure 5: performance on the MIPS platform",
              "speedup s = t_i / t_c; platform model: immature JIT backend, "
              "excellent native compiler");

  std::printf("%-10s %9s %9s %9s %9s %9s %12s %12s\n", "benchmark",
              "t_i(s)", "mcc", "falcon", "jit", "spec", "falcon/jit",
              "(sparc f/j)");
  std::printf("%.*s\n", 88,
              "-----------------------------------------------------------"
              "------------------------------");

  double GeoMips = 1, GeoSparc = 1;
  unsigned Counted = 0;
  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    double Ti = timeInterpreted(Spec);
    double Mcc = timeMcc(Spec, Mips);
    double Falcon = timeFalcon(Spec, Mips);
    double Jit = timeJit(Spec, Mips);
    double SpecT = timeSpec(Spec, Mips);
    double SparcRatio = timeJit(Spec, Sparc) / timeFalcon(Spec, Sparc);
    double Ratio = Jit / Falcon; // >1 means falcon wins
    GeoMips *= Ratio;
    GeoSparc *= SparcRatio;
    ++Counted;
    std::printf("%-10s %9.3f %9.2f %9.2f %9.2f %9.2f %12.2f %12.2f\n",
                Spec.Name.c_str(), Ti, Ti / Mcc, Ti / Falcon, Ti / Jit,
                Ti / SpecT, Ratio, SparcRatio);
  }
  std::printf("\nGeometric-mean falcon-over-jit advantage: MIPS %.2fx vs "
              "SPARC %.2fx\n(the paper's qualitative claim: the JIT falls "
              "behind FALCON on MIPS more than on SPARC)\n",
              std::pow(GeoMips, 1.0 / Counted),
              std::pow(GeoSparc, 1.0 / Counted));
  return 0;
}
