//===- bench/BenchTable1.cpp - Table 1: the benchmark inventory ----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Table 1: benchmark names, origin, description, problem size,
// lines of code and interpreted runtime. Paper values are printed alongside
// this reproduction's (the "runtime" column is our interpreter on scaled
// problem sizes; the paper's is MATLAB 6 on a 400MHz UltraSparc).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>
#include <fstream>
#include <string>

using namespace majic;
using namespace majic::bench;

static unsigned countLines(const std::string &Path) {
  std::ifstream In(Path);
  unsigned N = 0;
  std::string Line;
  while (std::getline(In, Line))
    ++N;
  return N;
}

int main() {
  printHeader("Table 1: MaJIC benchmarks",
              "runtime = interpreted (this reproduction, scaled sizes); "
              "paper runtime = MATLAB 6 on the SPARC reference");

  std::printf("%-10s %-10s %-46s %-14s %5s %5s %9s %9s\n", "benchmark",
              "source", "description", "size (ours)", "loc", "(pap)",
              "t_i (s)", "(paper)");
  std::printf("%.*s\n", 116,
              "-----------------------------------------------------------"
              "-------------------------------------------------------------");

  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    unsigned Lines = countLines(mlibDirectory() + "/" + Spec.Name + ".m");
    double Ti = timeInterpreted(Spec);
    std::printf("%-10s %-10s %-46s %-14s %5u %5u %9.3f %9.2f\n",
                Spec.Name.c_str(), Spec.Source.c_str(),
                Spec.Description.c_str(), Spec.ScaledProblemSize.c_str(),
                Lines, Spec.PaperLines, Ti, Spec.PaperRuntime);
  }
  std::printf("\n(paper problem sizes: ");
  for (const BenchmarkSpec &Spec : benchmarkCorpus())
    std::printf("%s=%s ", Spec.Name.c_str(), Spec.PaperProblemSize.c_str());
  std::printf(")\n");
  return 0;
}
