//===- bench/BenchKernels.cpp - Compiler-kernel microbenchmarks -----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the individual compiler phases and
// execution substrates: parsing, disambiguation, type inference, code
// generation, register allocation, repository lookup, and the raw dispatch
// rates of the interpreter and the register VM. These quantify the claims
// behind Figure 6 ("the type inference engine is fast enough for use by
// the JIT compiler") at the phase level.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "backend/Compiler.h"
#include "infer/Speculate.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

using namespace majic;

namespace {

std::string readBenchmarkSource(const std::string &Name) {
  std::ifstream In(mlibDirectory() + "/" + Name + ".m");
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const std::string &dirichSource() {
  static const std::string Src = readBenchmarkSource("dirich");
  return Src;
}

struct AnalyzedDirich {
  SourceManager SM;
  Diagnostics Diags;
  std::unique_ptr<Module> Mod;
  std::unique_ptr<FunctionInfo> Info;
  TypeSignature Sig;

  AnalyzedDirich() {
    Mod = parseModule("dirich", dirichSource(), SM, Diags);
    Info = disambiguate(*Mod->mainFunction(), *Mod);
    Sig = TypeSignature({Type::ofValue(Value::intScalar(70)),
                         Type::ofValue(Value::scalar(1e-3)),
                         Type::ofValue(Value::intScalar(40))});
  }
};

AnalyzedDirich &analyzedDirich() {
  static AnalyzedDirich A;
  return A;
}

void BM_Parse(benchmark::State &State) {
  for (auto _ : State) {
    SourceManager SM;
    Diagnostics Diags;
    auto Mod = parseModule("dirich", dirichSource(), SM, Diags);
    benchmark::DoNotOptimize(Mod);
  }
}
BENCHMARK(BM_Parse);

void BM_Disambiguate(benchmark::State &State) {
  SourceManager SM;
  Diagnostics Diags;
  auto Mod = parseModule("dirich", dirichSource(), SM, Diags);
  for (auto _ : State) {
    auto Info = disambiguate(*Mod->mainFunction(), *Mod);
    benchmark::DoNotOptimize(Info);
  }
}
BENCHMARK(BM_Disambiguate);

void BM_JitTypeInference(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    InferResult R = inferTypes(*A.Info, A.Sig);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_JitTypeInference);

void BM_SpeculativeInference(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    TypeSignature S = speculateSignature(*A.Info);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_SpeculativeInference);

void BM_JitCodeGen(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  InferResult Inferred = inferTypes(*A.Info, A.Sig);
  for (auto _ : State) {
    CodeGenOptions CG;
    auto Code = generateCode(*A.Info, Inferred.Ann, A.Sig, CG);
    benchmark::DoNotOptimize(Code);
  }
}
BENCHMARK(BM_JitCodeGen);

void BM_FullJitCompile(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    CompileRequest Req;
    Req.FI = A.Info.get();
    Req.Sig = A.Sig;
    Req.Mode = CodeGenMode::Jit;
    auto R = compileFunction(Req);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_FullJitCompile);

void BM_OptimizedCompile(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    CompileRequest Req;
    Req.FI = A.Info.get();
    Req.Sig = A.Sig;
    Req.Mode = CodeGenMode::Optimized;
    auto R = compileFunction(Req);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_OptimizedCompile);

void BM_RepositoryLookup(benchmark::State &State) {
  Repository Repo;
  // Several versions of one function plus noise entries.
  for (int I = 0; I != 8; ++I) {
    CompiledObject Obj;
    Obj.FunctionName = "f";
    Obj.Sig = I % 2 ? TypeSignature::generic(3)
                    : TypeSignature({Type::constant(I), Type::constant(I),
                                     Type::constant(I)});
    Obj.Code = std::make_shared<IRFunction>();
    Repo.insert(std::move(Obj));
  }
  TypeSignature Probe({Type::constant(2), Type::constant(2),
                       Type::constant(2)});
  for (auto _ : State) {
    CompiledObjectPtr Hit = Repo.lookup("f", Probe);
    benchmark::DoNotOptimize(Hit);
  }
}
BENCHMARK(BM_RepositoryLookup);

void BM_InterpreterScalarLoop(benchmark::State &State) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  Engine E(O);
  E.addSource("loop", "function s = loop(n)\ns = 0;\nfor k = 1:n\n"
                      "s = s + k * 2 - 1;\nend\n");
  for (auto _ : State) {
    auto R = E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                            SourceLoc());
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_InterpreterScalarLoop);

void BM_VmScalarLoop(benchmark::State &State) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  E.addSource("loop", "function s = loop(n)\ns = 0;\nfor k = 1:n\n"
                      "s = s + k * 2 - 1;\nend\n");
  E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                 SourceLoc()); // warm: compile
  for (auto _ : State) {
    auto R = E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                            SourceLoc());
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_VmScalarLoop);

void BM_BoxedGenericLoop(benchmark::State &State) {
  EngineOptions O;
  O.Policy = CompilePolicy::Mcc;
  Engine E(O);
  E.addSource("loop", "function s = loop(n)\ns = 0;\nfor k = 1:n\n"
                      "s = s + k * 2 - 1;\nend\n");
  E.precompileGeneric("loop", 1);
  for (auto _ : State) {
    auto R = E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                            SourceLoc());
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_BoxedGenericLoop);

} // namespace

BENCHMARK_MAIN();
