//===- bench/BenchKernels.cpp - Kernel and compiler microbenchmarks -------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Two modes:
//
//  * Default: the dense-kernel sweep (ISSUE 2). Times the naive seed
//    dgemm against the blocked/packed kernel at 64..512 with
//    ComputeThreads in {1, 2, 4}, plus dgemv and elementwise throughput,
//    and writes the machine-readable results to BENCH_kernels.json
//    (kernel, size, threads, seconds, GFLOP/s).
//
//  * --micro: google-benchmark microbenchmarks of the individual compiler
//    phases and execution substrates: parsing, disambiguation, type
//    inference, code generation, repository lookup, and the raw dispatch
//    rates of the interpreter and the register VM. These quantify the
//    claims behind Figure 6 ("the type inference engine is fast enough
//    for use by the JIT compiler") at the phase level.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "backend/Compiler.h"
#include "infer/Speculate.h"
#include "runtime/Blas.h"
#include "runtime/Ops.h"
#include "support/Parallel.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

using namespace majic;

//===----------------------------------------------------------------------===//
// Dense-kernel sweep (default mode)
//===----------------------------------------------------------------------===//

namespace {

/// The seed's naive dgemm (axpy-style column walk, exactly as shipped
/// before the blocked kernel landed): the single-threaded baseline every
/// speedup in BENCH_kernels.json is measured against.
void naiveSeedDgemm(size_t M, size_t N, size_t K, const double *A,
                    const double *B, double *C) {
  std::memset(C, 0, M * N * sizeof(double));
  for (size_t J = 0; J != N; ++J)
    for (size_t P = 0; P != K; ++P) {
      double BV = B[J * K + P];
      if (BV == 0.0)
        continue;
      const double *ACol = A + P * M;
      double *CCol = C + J * M;
      for (size_t I = 0; I != M; ++I)
        CCol[I] += ACol[I] * BV;
    }
}

std::vector<double> randomVec(size_t N, uint64_t Seed) {
  std::mt19937_64 Rng(Seed);
  std::uniform_real_distribution<double> D(-1.0, 1.0);
  std::vector<double> V(N);
  for (double &X : V)
    X = D(Rng);
  return V;
}

struct SweepResult {
  std::string Kernel;
  size_t Size;
  unsigned Threads;
  double Seconds;
  double GFlops;
};

void runKernelSweep() {
  using bench::bestOf;
  const int Reps = std::max(3, bench::repetitions());
  const unsigned HW = std::thread::hardware_concurrency();
  std::vector<SweepResult> Results;
  auto Record = [&](std::string Kernel, size_t Size, unsigned Threads,
                    double Seconds, double Flops) {
    double GF = Flops / Seconds / 1e9;
    Results.push_back({Kernel, Size, Threads, Seconds, GF});
    std::printf("  %-16s n=%-5zu threads=%-2u  %10.3f ms  %8.2f GFLOP/s\n",
                Kernel.c_str(), Size, Threads, Seconds * 1e3, GF);
  };

  bench::printHeader("Dense kernel sweep",
                     "best of " + std::to_string(Reps) +
                         " reps; hardware threads: " + std::to_string(HW));

  // dgemm: naive seed baseline vs the blocked kernel across thread counts.
  for (size_t N : {64u, 128u, 256u, 512u}) {
    std::vector<double> A = randomVec(N * N, 1), B = randomVec(N * N, 2);
    std::vector<double> C(N * N);
    double Flops = 2.0 * static_cast<double>(N) * N * N;

    double TNaive = bestOf(
        Reps, [&] { naiveSeedDgemm(N, N, N, A.data(), B.data(), C.data()); });
    Record("dgemm_naive", N, 1, TNaive, Flops);

    for (unsigned Threads : {1u, 2u, 4u}) {
      par::setComputeThreads(Threads);
      double T = bestOf(Reps, [&] {
        blas::dgemm(N, N, N, 1.0, A.data(), B.data(), 0.0, C.data());
      });
      Record("dgemm_blocked", N, Threads, T, Flops);
    }
    par::setComputeThreads(0);
  }

  // dgemv: matrix-vector throughput (memory bound; one pass over A).
  for (size_t N : {512u, 2048u}) {
    std::vector<double> A = randomVec(N * N, 3), X = randomVec(N, 4);
    std::vector<double> Y(N);
    double Flops = 2.0 * static_cast<double>(N) * N;
    for (unsigned Threads : {1u, 4u}) {
      par::setComputeThreads(Threads);
      double T = bestOf(Reps, [&] {
        blas::dgemv(N, N, 1.0, A.data(), X.data(), 0.0, Y.data());
      });
      Record("dgemv", N, Threads, T, Flops);
    }
    par::setComputeThreads(0);
  }

  // Elementwise multiply through the runtime's Value dispatch (the path
  // MATLAB's a .* b takes), one flop per element.
  {
    size_t N = 1u << 22;
    Value A = Value::zeros(N, 1), B = Value::zeros(N, 1);
    std::vector<double> RA = randomVec(N, 5), RB = randomVec(N, 6);
    std::memcpy(A.reData(), RA.data(), N * sizeof(double));
    std::memcpy(B.reData(), RB.data(), N * sizeof(double));
    for (unsigned Threads : {1u, 4u}) {
      par::setComputeThreads(Threads);
      double T = bestOf(Reps, [&] {
        Value R = rt::binary(rt::BinOp::ElemMul, A, B);
        benchmark::DoNotOptimize(R.reData());
      });
      Record("elemwise_mul", N, Threads, T, static_cast<double>(N));
    }
    par::setComputeThreads(0);
  }

  // Speedup summary against the acceptance gates. Rows measured with more
  // software threads than the machine has hardware threads are
  // oversubscribed - the pool just timeslices one core - so they are not
  // scaling measurements and the summary must not report them as such.
  auto Find = [&](const std::string &Kernel, size_t Size,
                  unsigned Threads) -> const SweepResult * {
    for (const SweepResult &R : Results)
      if (R.Kernel == Kernel && R.Size == Size && R.Threads == Threads)
        return &R;
    return nullptr;
  };
  const SweepResult *Naive512 = Find("dgemm_naive", 512, 1);
  const SweepResult *B1 = Find("dgemm_blocked", 512, 1);
  const SweepResult *B4 = Find("dgemm_blocked", 512, 4);
  if (Naive512 && B1) {
    std::printf("\n  dgemm 512: blocked(1T) %.2fx over naive",
                Naive512->Seconds / B1->Seconds);
    if (B4 && 4 <= HW)
      std::printf(", 1T -> 4T scaling %.2fx\n", B1->Seconds / B4->Seconds);
    else
      std::printf(" (4T row oversubscribed on %u hardware thread%s; "
                  "scaling not reported)\n",
                  HW, HW == 1 ? "" : "s");
  }

  bench::JsonWriter W;
  W.beginObject();
  W.field("bench", "kernels");
  W.field("hardware_concurrency", HW);
  W.field("repetitions", Reps);
  bench::writeMachineInfo(W);
  W.beginArray("results");
  for (const SweepResult &R : Results) {
    W.beginObject();
    W.field("kernel", R.Kernel);
    W.field("size", R.Size);
    W.field("threads", R.Threads);
    W.field("seconds", R.Seconds);
    W.field("gflops", R.GFlops);
    W.field("oversubscribed", R.Threads > HW);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  const char *Path = "BENCH_kernels.json";
  if (W.writeFile(Path))
    std::printf("\n  wrote %s\n", Path);
  else
    std::fprintf(stderr, "failed to write %s\n", Path);
}

} // namespace

//===----------------------------------------------------------------------===//
// Compiler-phase microbenchmarks (--micro)
//===----------------------------------------------------------------------===//

namespace {

std::string readBenchmarkSource(const std::string &Name) {
  std::ifstream In(mlibDirectory() + "/" + Name + ".m");
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const std::string &dirichSource() {
  static const std::string Src = readBenchmarkSource("dirich");
  return Src;
}

struct AnalyzedDirich {
  SourceManager SM;
  Diagnostics Diags;
  std::unique_ptr<Module> Mod;
  std::unique_ptr<FunctionInfo> Info;
  TypeSignature Sig;

  AnalyzedDirich() {
    Mod = parseModule("dirich", dirichSource(), SM, Diags);
    Info = disambiguate(*Mod->mainFunction(), *Mod);
    Sig = TypeSignature({Type::ofValue(Value::intScalar(70)),
                         Type::ofValue(Value::scalar(1e-3)),
                         Type::ofValue(Value::intScalar(40))});
  }
};

AnalyzedDirich &analyzedDirich() {
  static AnalyzedDirich A;
  return A;
}

void BM_Parse(benchmark::State &State) {
  for (auto _ : State) {
    SourceManager SM;
    Diagnostics Diags;
    auto Mod = parseModule("dirich", dirichSource(), SM, Diags);
    benchmark::DoNotOptimize(Mod);
  }
}
BENCHMARK(BM_Parse);

void BM_Disambiguate(benchmark::State &State) {
  SourceManager SM;
  Diagnostics Diags;
  auto Mod = parseModule("dirich", dirichSource(), SM, Diags);
  for (auto _ : State) {
    auto Info = disambiguate(*Mod->mainFunction(), *Mod);
    benchmark::DoNotOptimize(Info);
  }
}
BENCHMARK(BM_Disambiguate);

void BM_JitTypeInference(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    InferResult R = inferTypes(*A.Info, A.Sig);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_JitTypeInference);

void BM_SpeculativeInference(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    TypeSignature S = speculateSignature(*A.Info);
    benchmark::DoNotOptimize(S);
  }
}
BENCHMARK(BM_SpeculativeInference);

void BM_JitCodeGen(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  InferResult Inferred = inferTypes(*A.Info, A.Sig);
  for (auto _ : State) {
    CodeGenOptions CG;
    auto Code = generateCode(*A.Info, Inferred.Ann, A.Sig, CG);
    benchmark::DoNotOptimize(Code);
  }
}
BENCHMARK(BM_JitCodeGen);

void BM_FullJitCompile(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    CompileRequest Req;
    Req.FI = A.Info.get();
    Req.Sig = A.Sig;
    Req.Mode = CodeGenMode::Jit;
    auto R = compileFunction(Req);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_FullJitCompile);

void BM_OptimizedCompile(benchmark::State &State) {
  AnalyzedDirich &A = analyzedDirich();
  for (auto _ : State) {
    CompileRequest Req;
    Req.FI = A.Info.get();
    Req.Sig = A.Sig;
    Req.Mode = CodeGenMode::Optimized;
    auto R = compileFunction(Req);
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_OptimizedCompile);

void BM_RepositoryLookup(benchmark::State &State) {
  Repository Repo;
  // Several versions of one function plus noise entries.
  for (int I = 0; I != 8; ++I) {
    CompiledObject Obj;
    Obj.FunctionName = "f";
    Obj.Sig = I % 2 ? TypeSignature::generic(3)
                    : TypeSignature({Type::constant(I), Type::constant(I),
                                     Type::constant(I)});
    Obj.Code = std::make_shared<IRFunction>();
    Repo.insert(std::move(Obj));
  }
  TypeSignature Probe({Type::constant(2), Type::constant(2),
                       Type::constant(2)});
  for (auto _ : State) {
    CompiledObjectPtr Hit = Repo.lookup("f", Probe);
    benchmark::DoNotOptimize(Hit);
  }
}
BENCHMARK(BM_RepositoryLookup);

void BM_InterpreterScalarLoop(benchmark::State &State) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  Engine E(O);
  E.addSource("loop", "function s = loop(n)\ns = 0;\nfor k = 1:n\n"
                      "s = s + k * 2 - 1;\nend\n");
  for (auto _ : State) {
    auto R = E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                            SourceLoc());
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_InterpreterScalarLoop);

void BM_VmScalarLoop(benchmark::State &State) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  E.addSource("loop", "function s = loop(n)\ns = 0;\nfor k = 1:n\n"
                      "s = s + k * 2 - 1;\nend\n");
  E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                 SourceLoc()); // warm: compile
  for (auto _ : State) {
    auto R = E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                            SourceLoc());
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_VmScalarLoop);

void BM_BoxedGenericLoop(benchmark::State &State) {
  EngineOptions O;
  O.Policy = CompilePolicy::Mcc;
  Engine E(O);
  E.addSource("loop", "function s = loop(n)\ns = 0;\nfor k = 1:n\n"
                      "s = s + k * 2 - 1;\nend\n");
  E.precompileGeneric("loop", 1);
  for (auto _ : State) {
    auto R = E.callFunction("loop", {makeValue(Value::intScalar(10000))}, 1,
                            SourceLoc());
    benchmark::DoNotOptimize(R);
  }
  State.SetItemsProcessed(State.iterations() * 10000);
}
BENCHMARK(BM_BoxedGenericLoop);

} // namespace

int main(int argc, char **argv) {
  // --micro selects the google-benchmark compiler-phase suite; any other
  // arguments pass through to the benchmark library untouched.
  std::vector<char *> Args;
  bool Micro = false;
  for (int I = 0; I != argc; ++I) {
    if (std::strcmp(argv[I], "--micro") == 0)
      Micro = true;
    else
      Args.push_back(argv[I]);
  }
  if (!Micro) {
    runKernelSweep();
    return 0;
  }
  int ArgC = static_cast<int>(Args.size());
  benchmark::Initialize(&ArgC, Args.data());
  if (benchmark::ReportUnrecognizedArguments(ArgC, Args.data()))
    return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
