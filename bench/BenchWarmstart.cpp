//===- bench/BenchWarmstart.cpp - Cold vs warm time to first result --------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The payoff of the persistent code repository: a session that starts on a
// populated store serves its first invocation from disk instead of paying
// the JIT. Measured per benchmark, with the JIT policy and a fresh engine
// per run:
//
//  - cold: empty store; time covers engine birth (store open), snooping
//    the mlib corpus, and the first invocation - which JIT-compiles and
//    persists its code;
//  - warm: the same directory, now populated by the cold session; the
//    first invocation must come from the store (zero JIT compiles).
//
// A third, profile-primed mode exercises the persisted profiles: a
// speculative priming session runs the benchmark (so its profile entry
// dominates the store's profiles.mjp), then a fresh speculative session
// against the same directory measures time to first result, and an
// untimed paused-pool probe records where the snooper queues the
// benchmark - hot-first ranking should put the primed workload's
// functions at the head of the speculation queue.
//
// Cold and warm must produce identical numeric results. Emits
// BENCH_warmstart.json.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <vector>

using namespace majic;
using namespace majic::bench;

namespace {

struct Scenario {
  const char *Name;
  std::vector<double> Args;
};

// Small first-invocation arguments (the interactive user's exploratory
// call), matching the responsiveness harness.
const Scenario kScenarios[] = {
    {"fibonacci", {11}},
    {"dirich", {20, 1e-3, 10}},
    {"sor", {24, 1.2, 10}},
    {"crnich", {1, 3, 33, 33}},
    {"galrkn", {24}},
};

std::vector<ValuePtr> boxArgs(const std::vector<double> &Args) {
  std::vector<ValuePtr> Out;
  for (double A : Args)
    Out.push_back(A == std::floor(A)
                      ? makeValue(Value::intScalar(static_cast<long>(A)))
                      : makeValue(Value::scalar(A)));
  return Out;
}

struct FirstResult {
  double Seconds = 0;
  std::vector<ValuePtr> Values;
  uint64_t JitCompiles = 0;
};

/// One session measurement against \p RepoDir: wall time from engine birth
/// (which opens and validates the store) through snooping the corpus and
/// the first answer. Synchronous compile/save configuration so cold runs
/// pay the full persist cost inside the timed region - the comparison
/// cannot be flattered by hiding the store's own overhead.
FirstResult measure(const Scenario &S, const std::string &RepoDir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 0;
  O.RepoDir = RepoDir;
  FirstResult R;
  Timer T;
  Engine E(O);
  E.watchDirectory(mlibDirectory());
  E.snoop();
  R.Values = E.callFunction(S.Name, boxArgs(S.Args), 1, SourceLoc());
  R.Seconds = T.seconds();
  R.JitCompiles = E.jitCompiles();
  return R;
}

/// Primes \p Dir for the profile-guided mode: a speculative session snoops
/// the corpus, lets the backlog drain, then runs the benchmark a few times
/// so its functions dominate the persisted profile (invocation counts and
/// observed signatures are written to profiles.mjp at engine teardown).
void primeStore(const Scenario &S, const std::string &Dir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 2;
  O.RepoDir = Dir;
  Engine E(O);
  E.watchDirectory(mlibDirectory());
  E.snoop();
  E.drainCompiles();
  for (int I = 0; I != 3; ++I)
    E.callFunction(S.Name, boxArgs(S.Args), 1, SourceLoc());
  E.drainCompiles();
  E.flushRepoStore();
}

struct QueueProbe {
  size_t Rank = 0; ///< 0-based position of the benchmark in the queue
  size_t Len = 0;
  std::string Front;
};

/// Untimed warm-start probe: pause the workers, snoop, and record where
/// the hot-first ranking queued the benchmark. The primed function's
/// invocation counts come entirely from the persisted profile here - this
/// session has never run anything.
QueueProbe probeQueueOrder(const Scenario &S, const std::string &Dir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 2;
  O.RepoDir = Dir;
  Engine E(O);
  E.pauseBackgroundCompiles();
  E.watchDirectory(mlibDirectory());
  E.snoop();
  QueueProbe P;
  std::vector<std::string> Q = E.queuedSpeculations();
  P.Len = Q.size();
  P.Rank = Q.size();
  for (size_t I = 0; I != Q.size(); ++I)
    if (Q[I] == S.Name) {
      P.Rank = I;
      break;
    }
  if (!Q.empty())
    P.Front = Q.front();
  // Let the backlog finish before teardown so the destructor never waits
  // on a paused queue.
  E.resumeBackgroundCompiles();
  E.drainCompiles();
  return P;
}

/// Timed profile-primed session: speculative policy against the primed
/// store; wall time from engine birth (store + profile load) through the
/// first answer, with the hot-first background compile racing the call.
FirstResult measurePrimed(const Scenario &S, const std::string &Dir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 2;
  O.RepoDir = Dir;
  FirstResult R;
  Timer T;
  Engine E(O);
  E.watchDirectory(mlibDirectory());
  E.snoop();
  R.Values = E.callFunction(S.Name, boxArgs(S.Args), 1, SourceLoc());
  R.Seconds = T.seconds();
  R.JitCompiles = E.jitCompiles();
  return R;
}

bool sameValues(const std::vector<ValuePtr> &A, const std::vector<ValuePtr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    const Value &X = *A[I], &Y = *B[I];
    if (X.rows() != Y.rows() || X.cols() != Y.cols() ||
        X.isComplex() != Y.isComplex())
      return false;
    for (size_t K = 0; K != X.numel(); ++K)
      if (X.reData()[K] != Y.reData()[K] ||
          (X.isComplex() && X.imData()[K] != Y.imData()[K]))
        return false;
  }
  return true;
}

} // namespace

int main() {
  namespace fs = std::filesystem;
  const fs::path Dir = fs::temp_directory_path() / "majic_bench_warmstart";
  const fs::path PrimedDir =
      fs::temp_directory_path() / "majic_bench_warmstart_primed";

  printHeader("Warm start: cold vs populated persistent repository",
              "JIT policy, fresh engine per run; cold = empty store (compile "
              "+ persist timed),\nwarm = same store on the next 'session' "
              "(first result served from disk)");

  std::printf("%-10s %12s %12s %8s %9s %12s %7s  %s\n", "benchmark",
              "cold (ms)", "warm (ms)", "speedup", "compiles", "primed (ms)",
              "queue", "results");
  std::printf("%.*s\n", 87,
              "-----------------------------------------------------------"
              "-----------------------------");

  JsonWriter W;
  W.beginObject();
  W.field("benchmark_set", "warmstart");
  W.field("policy", "jit");
  writeMachineInfo(W);
  W.beginArray("results");

  int Faster = 0, ZeroCompile = 0, Matching = 0;
  const int N = repetitions();
  for (const Scenario &S : kScenarios) {
    // Cold: wipe the store each rep (cold is only defined against an empty
    // directory). The final cold rep leaves the store populated.
    FirstResult Cold;
    for (int R = 0; R < N; ++R) {
      fs::remove_all(Dir);
      FirstResult C = measure(S, Dir.string());
      if (R == 0 || C.Seconds < Cold.Seconds)
        Cold = std::move(C);
    }
    // Warm: best-of-N on the populated store; no run may compile.
    FirstResult Warm = measure(S, Dir.string());
    uint64_t WarmCompiles = Warm.JitCompiles;
    for (int R = 1; R < N; ++R) {
      FirstResult W2 = measure(S, Dir.string());
      WarmCompiles += W2.JitCompiles;
      if (W2.Seconds < Warm.Seconds)
        Warm = std::move(W2);
    }

    // Profile-primed: its own store, primed by a speculative session that
    // made this benchmark the hottest profile entry; queue order probed
    // untimed, time-to-first-result best-of-N.
    fs::remove_all(PrimedDir);
    primeStore(S, PrimedDir.string());
    QueueProbe Q = probeQueueOrder(S, PrimedDir.string());
    FirstResult Primed = measurePrimed(S, PrimedDir.string());
    for (int R = 1; R < N; ++R) {
      FirstResult P2 = measurePrimed(S, PrimedDir.string());
      if (P2.Seconds < Primed.Seconds)
        Primed = std::move(P2);
    }

    double Speedup = Warm.Seconds > 0 ? Cold.Seconds / Warm.Seconds : 0;
    bool Match = sameValues(Cold.Values, Warm.Values) &&
                 sameValues(Cold.Values, Primed.Values);
    Faster += Warm.Seconds < Cold.Seconds;
    ZeroCompile += WarmCompiles == 0;
    Matching += Match;
    std::printf("%-10s %12.3f %12.3f %7.2fx %9llu %12.3f %4zu/%-2zu  %s\n",
                S.Name, Cold.Seconds * 1e3, Warm.Seconds * 1e3, Speedup,
                static_cast<unsigned long long>(WarmCompiles),
                Primed.Seconds * 1e3, Q.Rank, Q.Len,
                Match ? "identical" : "MISMATCH");

    W.beginObject();
    W.field("benchmark", S.Name);
    W.field("cold_ms", Cold.Seconds * 1e3);
    W.field("warm_ms", Warm.Seconds * 1e3);
    W.field("speedup", Speedup);
    W.field("cold_jit_compiles", Cold.JitCompiles);
    W.field("warm_jit_compiles", WarmCompiles);
    W.field("primed_ms", Primed.Seconds * 1e3);
    W.field("primed_jit_compiles", Primed.JitCompiles);
    W.field("primed_queue_rank", static_cast<uint64_t>(Q.Rank));
    W.field("primed_queue_len", static_cast<uint64_t>(Q.Len));
    W.field("primed_queue_front", Q.Front);
    W.field("results_identical", Match ? "true" : "false");
    W.endObject();
  }
  fs::remove_all(Dir);
  fs::remove_all(PrimedDir);

  const int Total = static_cast<int>(std::size(kScenarios));
  W.endArray();
  W.field("warm_faster", static_cast<uint64_t>(Faster));
  W.field("warm_zero_compiles", static_cast<uint64_t>(ZeroCompile));
  W.field("results_identical", static_cast<uint64_t>(Matching));
  W.field("total", static_cast<uint64_t>(Total));
  W.endObject();
  if (!W.writeFile("BENCH_warmstart.json"))
    std::fprintf(stderr, "warning: could not write BENCH_warmstart.json\n");

  std::printf("\n%d/%d warm session(s) faster than cold; %d/%d with zero "
              "compiles; %d/%d identical results.\n",
              Faster, Total, ZeroCompile, Total, Matching, Total);
  // The subsystem's acceptance bar: a warm start never compiles, never
  // changes results, and pays off on at least a majority of programs.
  return ZeroCompile == Total && Matching == Total && 2 * Faster >= Total ? 0
                                                                          : 1;
}
