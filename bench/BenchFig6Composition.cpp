//===- bench/BenchFig6Composition.cpp - Figure 6: JIT time composition ----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 6: the normalized composition of a JIT-compiled run
// (symbol disambiguation, type inference, code generation, execution),
// starting from an empty repository. "With the exception of orbrk, most
// benchmarks spend a relatively modest amount of time compiling the code."
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>

using namespace majic;
using namespace majic::bench;

int main() {
  printHeader("Figure 6: the composition of JIT execution",
              "percent of total wall time per phase, empty repository, one "
              "invocation");

  std::printf("%-10s %9s %9s %9s %9s %9s %12s\n", "benchmark", "disamb%",
              "typeinf%", "codegen%", "exec%", "total(s)", "compile(ms)");
  std::printf("%.*s\n", 75,
              "-----------------------------------------------------------"
              "----------------");

  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    Engine E(O);
    loadBenchmark(E, Spec);
    E.phases().clear(); // drop parse/disamb time from loading
    E.context().Rand.reseed(0x5eed5eed5eedull);
    E.callFunction(Spec.Name, scaledArgs(Spec), 1, SourceLoc());

    const PhaseTimes &P = E.phases();
    double Disamb = P.get(Phase::Disambiguate);
    double Inf = P.get(Phase::TypeInference);
    double CG = P.get(Phase::CodeGen);
    // Execute excludes top-level compilation (timed separately); nested JIT
    // compiles inside recursive runs are a negligible double count.
    double Exec = P.get(Phase::Execute);
    double Total = Disamb + Inf + CG + Exec;
    if (Total <= 0)
      Total = 1e-12;
    std::printf("%-10s %8.1f%% %8.1f%% %8.1f%% %8.1f%% %9.4f %12.3f\n",
                Spec.Name.c_str(), 100 * Disamb / Total, 100 * Inf / Total,
                100 * CG / Total, 100 * Exec / Total, Total,
                1e3 * (Disamb + Inf + CG));
  }
  std::printf("\nExpected shape (paper): execution dominates nearly "
              "everywhere; compile fractions are\nartificially high on "
              "modest problem sizes; orbrk (heavy inlining) compiles "
              "longest.\nNote: this reproduction's JIT compiles in well "
              "under a millisecond, so the compile\nslices are far thinner "
              "than the paper's (see EXPERIMENTS.md).\n");
  return 0;
}
