//===- bench/Harness.h - Shared measurement harness ------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Timing methodology shared by the table/figure harnesses, following
/// Section 3.2:
///
///  - the key gauge is speedup s = t_i / t_c against the interpreter;
///  - JIT-mode runtime *includes* JIT compile time (fresh repository);
///  - mcc / FALCON / speculative runtimes exclude ahead-of-time compilation
///    (the code is in the repository before the invocation), but a failed
///    speculation pays for the JIT inside the timed region;
///  - times are "best of N runs on a quiet system" (N scaled down from the
///    paper's 10);
///  - the PRNG is reseeded per run so every configuration does identical
///    work.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_BENCH_HARNESS_H
#define MAJIC_BENCH_HARNESS_H

#include "engine/Corpus.h"
#include "engine/Engine.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace majic {
namespace bench {

/// Repetitions per measurement ("best of N"); MAJIC_BENCH_REPS overrides.
int repetitions();

/// Problem-size scale factor in (0, 1]; MAJIC_BENCH_SCALE overrides (the
/// quick mode used by smoke runs).
double sizeScale();

/// The spec's arguments with the scale factor applied to iteration-like
/// parameters.
std::vector<ValuePtr> scaledArgs(const BenchmarkSpec &Spec);

/// Best-of-N wall time of Fn().
double bestOf(int N, const std::function<void()> &Fn);

/// Loads \p Spec's source into \p E, failing hard on diagnostics.
void loadBenchmark(Engine &E, const BenchmarkSpec &Spec);

/// t_i: interpreted runtime (the baseline of every speedup).
double timeInterpreted(const BenchmarkSpec &Spec);

/// t_c under the mcc model: generic code precompiled, execution timed.
double timeMcc(const BenchmarkSpec &Spec, const PlatformModel &Platform);

/// t_c under the FALCON model: batch-optimized code compiled with "peeked"
/// input types ahead of time, execution timed.
double timeFalcon(const BenchmarkSpec &Spec, const PlatformModel &Platform);

/// t_c under JIT: empty repository, compile time included.
double timeJit(const BenchmarkSpec &Spec, const PlatformModel &Platform,
               const InferOptions &Infer = InferOptions(),
               const RegAllocOptions &RegAlloc = RegAllocOptions());

/// t_c under speculation: ahead-of-time speculative compile (untimed), then
/// the invocation (JIT fallback, when speculation missed, is timed).
double timeSpec(const BenchmarkSpec &Spec, const PlatformModel &Platform);

/// Pretty-prints a separator and a table title.
void printHeader(const std::string &Title, const std::string &Note);

class JsonWriter;

/// Stamps a "machine" object into \p W (inside the currently open object):
/// hardware concurrency, configured compute threads, build type, and
/// compiler version. Every BENCH_*.json carries this so results from
/// different machines/configurations are never compared blind.
void writeMachineInfo(JsonWriter &W);

/// Minimal streaming JSON emitter for machine-readable BENCH_*.json result
/// files. Keys are emitted in insertion order; values are numbers or
/// strings. No dependency beyond the standard library:
///
///   JsonWriter W;
///   W.beginObject();
///   W.field("threads", 4);
///   W.beginArray("results");
///   W.beginObject(); W.field("kernel", "dgemm"); W.endObject();
///   W.endArray();
///   W.endObject();
///   W.writeFile("BENCH_kernels.json");
class JsonWriter {
public:
  JsonWriter &beginObject(const std::string &Key = "");
  JsonWriter &endObject();
  JsonWriter &beginArray(const std::string &Key = "");
  JsonWriter &endArray();
  JsonWriter &field(const std::string &Key, const std::string &V);
  JsonWriter &field(const std::string &Key, const char *V);
  JsonWriter &field(const std::string &Key, double V);
  JsonWriter &field(const std::string &Key, uint64_t V);
  JsonWriter &field(const std::string &Key, bool V);
  JsonWriter &field(const std::string &Key, int V) {
    return field(Key, static_cast<uint64_t>(V));
  }
  JsonWriter &field(const std::string &Key, unsigned V) {
    return field(Key, static_cast<uint64_t>(V));
  }

  const std::string &str() const { return Buf; }
  /// Writes the accumulated document (plus a trailing newline) to \p Path;
  /// returns false on I/O failure.
  bool writeFile(const std::string &Path) const;

private:
  void prefix(const std::string &Key);
  void indent();

  std::string Buf;
  std::vector<bool> NeedComma = {false};
  unsigned Depth = 0;
};

} // namespace bench
} // namespace majic

#endif // MAJIC_BENCH_HARNESS_H
