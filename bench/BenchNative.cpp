//===- bench/BenchNative.cpp - Native tier vs register VM ------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Steady-state per-call time of the native (emitted-C, dlopen'd) tier
// against the register VM on five scalar-loop mlib kernels - the workloads
// the third tier exists for. Methodology:
//
//  - one engine per tier per kernel, JIT policy, synchronous compiles;
//  - warm-up invocations first (the VM session pays its JIT, the native
//    session additionally pays the system-compiler promotion), so the
//    timed region is pure execution against a warm repository;
//  - best of N runs (default 25; MAJIC_BENCH_REPS overrides), PRNG
//    reseeded per run so both tiers do identical work;
//  - both tiers must produce bit-identical results, and the native
//    session must actually have served the timed calls natively
//    (native hits > 0) - otherwise the row is marked invalid.
//
// Emits BENCH_native.json with the machine stamp and a summary gate:
// native >= 1.3x over the VM on at least 3 of the 5 kernels.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

using namespace majic;
using namespace majic::bench;

namespace {

// Scalar-dominated loop kernels (Table 1's "scalar" category): the code
// shape where emitted C most outruns dispatch overhead.
const char *kKernels[] = {"crnich", "dirich", "finedif", "galrkn", "mandel"};

constexpr double kSpeedupGate = 1.3;
constexpr int kGateCount = 3;

// Best-of-25 per the experiment protocol; MAJIC_BENCH_REPS overrides for
// smoke runs.
int nativeReps() {
  if (const char *Env = std::getenv("MAJIC_BENCH_REPS"))
    return std::max(1, std::atoi(Env));
  return 25;
}

constexpr uint64_t kSeed = 0x5eed5eed5eedull;

struct TierResult {
  double Seconds = 0;
  std::vector<ValuePtr> Values; ///< outputs of the final timed run
  uint64_t NativeHits = 0;
  uint64_t NativeFailures = 0;
};

TierResult measureTier(const BenchmarkSpec &Spec, bool Native,
                       const std::string &StoreDir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 0; // everything synchronous and counted
  O.RepoDir = StoreDir;
  O.NativeTier = Native;
  O.NativeHotThreshold = 1; // promote on first profile observation
  if (Native)
    O.NativeCC = "cc";
  Engine E(O);
  loadBenchmark(E, Spec);

  auto Invoke = [&] {
    E.context().Rand.reseed(kSeed);
    return E.callFunction(Spec.Name, scaledArgs(Spec), 1, SourceLoc());
  };

  // Warm-up: the first call pays the JIT (and, on the native tier, the
  // system-compiler promotion); the second confirms steady state.
  Invoke();
  Invoke();

  TierResult R;
  R.Seconds = bestOf(nativeReps(), [&] { Invoke(); });
  R.Values = Invoke();
  R.NativeHits = E.nativeHits();
  R.NativeFailures = E.nativeFailures() + E.nativeDeopts();
  return R;
}

bool sameValues(const std::vector<ValuePtr> &A,
                const std::vector<ValuePtr> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I != A.size(); ++I) {
    const Value &X = *A[I], &Y = *B[I];
    if (X.rows() != Y.rows() || X.cols() != Y.cols() ||
        X.isComplex() != Y.isComplex())
      return false;
    for (size_t K = 0; K != X.numel(); ++K)
      if (X.reData()[K] != Y.reData()[K] ||
          (X.isComplex() && X.imData()[K] != Y.imData()[K]))
        return false;
  }
  return true;
}

} // namespace

int main() {
  namespace fs = std::filesystem;
  const fs::path Base = fs::temp_directory_path() / "majic_bench_native";

  printHeader("Native tier vs register VM (steady state, warm repository)",
              "JIT policy, synchronous compiles; warm-up untimed, then "
              "best-of-N pure\nexecution per tier; identical seeds, "
              "bit-identical results required");

  std::printf("%-10s %12s %12s %8s %7s  %s\n", "benchmark", "vm (ms)",
              "native (ms)", "speedup", "hits", "results");
  std::printf("%.*s\n", 62,
              "-----------------------------------------------------------"
              "---");

  JsonWriter W;
  W.beginObject();
  W.field("benchmark_set", "native");
  W.field("policy", "jit");
  W.field("reps", nativeReps());
  W.field("speedup_gate", kSpeedupGate);
  writeMachineInfo(W);
  W.beginArray("results");

  int AboveGate = 0, Matching = 0, Valid = 0;
  for (const char *Name : kKernels) {
    const BenchmarkSpec *Spec = findBenchmark(Name);
    if (!Spec) {
      std::fprintf(stderr, "unknown benchmark '%s'\n", Name);
      return 1;
    }
    const fs::path VmDir = Base / (std::string(Name) + ".vm");
    const fs::path NatDir = Base / (std::string(Name) + ".native");
    fs::remove_all(VmDir);
    fs::remove_all(NatDir);

    TierResult Vm = measureTier(*Spec, /*Native=*/false, VmDir.string());
    TierResult Nat = measureTier(*Spec, /*Native=*/true, NatDir.string());

    double Speedup = Nat.Seconds > 0 ? Vm.Seconds / Nat.Seconds : 0;
    bool Match = sameValues(Vm.Values, Nat.Values);
    bool Served = Nat.NativeHits > 0 && Nat.NativeFailures == 0;
    AboveGate += Served && Speedup >= kSpeedupGate;
    Matching += Match;
    Valid += Served;
    std::printf("%-10s %12.3f %12.3f %7.2fx %7llu  %s%s\n", Name,
                Vm.Seconds * 1e3, Nat.Seconds * 1e3, Speedup,
                static_cast<unsigned long long>(Nat.NativeHits),
                Match ? "identical" : "MISMATCH",
                Served ? "" : " (NOT NATIVE)");

    W.beginObject();
    W.field("benchmark", Name);
    W.field("vm_ms", Vm.Seconds * 1e3);
    W.field("native_ms", Nat.Seconds * 1e3);
    W.field("speedup", Speedup);
    W.field("native_hits", Nat.NativeHits);
    W.field("served_natively", Served);
    W.field("outputs_identical", Match);
    W.endObject();
  }

  const int Total = static_cast<int>(std::size(kKernels));
  bool Pass = AboveGate >= kGateCount && Matching == Total && Valid == Total;
  std::printf("\n%d/%d kernels >= %.1fx, %d/%d identical, %d/%d served "
              "natively -> %s\n",
              AboveGate, Total, kSpeedupGate, Matching, Total, Valid, Total,
              Pass ? "PASS" : "FAIL");

  W.endArray();
  W.beginObject("summary");
  W.field("kernels", Total);
  W.field("above_gate", AboveGate);
  W.field("outputs_identical", Matching);
  W.field("served_natively", Valid);
  W.field("pass", Pass);
  W.endObject();
  W.endObject();
  if (!W.writeFile("BENCH_native.json")) {
    std::fprintf(stderr, "cannot write BENCH_native.json\n");
    return 1;
  }
  std::printf("wrote BENCH_native.json\n");
  return Pass ? 0 : 1;
}
