//===- bench/BenchFig7Ablations.cpp - Figure 7: disabling JIT optimizations -----===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Regenerates Figure 7: performance relative to the fully optimized JIT
// when individually disabling (a) range propagation ("no ranges": kills
// subscript-check removal), (b) minimum-shape propagation ("no min. shapes":
// kills check removal and small-vector unrolling), and (c) register
// allocation ("no regalloc": spill every variable, like compiling with -g).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "backend/Compiler.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace majic;
using namespace majic::bench;

namespace {

/// Structural companion to the timing: the fraction of element accesses the
/// JIT emitted WITH a subscript check, with and without range propagation.
void checkedAccessFractions(const BenchmarkSpec &Spec, double &WithRanges,
                            double &WithoutRanges) {
  std::ifstream In(mlibDirectory() + "/" + Spec.Name + ".m");
  std::stringstream SS;
  SS << In.rdbuf();
  SourceManager SM;
  Diagnostics Diags;
  auto Mod = parseModule(Spec.Name, SS.str(), SM, Diags);
  if (!Mod) {
    WithRanges = WithoutRanges = -1;
    return;
  }
  auto Info = disambiguate(*Mod->mainFunction(), *Mod);
  TypeSignature Sig = TypeSignature::ofValues(scaledArgs(Spec));

  auto Fraction = [&](bool Ranges) -> double {
    CompileRequest Req;
    Req.FI = Info.get();
    Req.Sig = Sig;
    Req.Infer.EnableRanges = Ranges;
    auto R = compileFunction(Req);
    if (!R)
      return -1;
    unsigned Checked = 0, Unchecked = 0;
    for (const Instr &I : R->Code->Code) {
      switch (I.Op) {
      case Opcode::LoadEl:
      case Opcode::LoadEl2:
      case Opcode::StoreEl:
      case Opcode::StoreEl2:
        ++Unchecked;
        break;
      case Opcode::LoadElChk:
      case Opcode::LoadEl2Chk:
      case Opcode::StoreElChk:
      case Opcode::StoreEl2Chk:
        ++Checked;
        break;
      default:
        break;
      }
    }
    unsigned Total = Checked + Unchecked;
    return Total ? 100.0 * Checked / Total : 0.0;
  };
  WithRanges = Fraction(true);
  WithoutRanges = Fraction(false);
}

} // namespace

int main() {
  PlatformModel Platform = PlatformModel::sparc();
  printHeader("Figure 7: disabling JIT optimizations",
              "execution performance relative to the fully optimized JIT "
              "(100% = no slowdown)");

  std::printf("%-10s %12s %15s %12s %14s %14s\n", "benchmark", "no ranges",
              "no min. shapes", "no regalloc", "checked-w/rng", "checked-w/o");
  std::printf("%.*s\n", 84,
              "-----------------------------------------------------------"
              "---------------------------");

  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    double Full = timeJit(Spec, Platform);

    InferOptions NoRanges;
    NoRanges.EnableRanges = false;
    double TR = timeJit(Spec, Platform, NoRanges);

    InferOptions NoMinShapes;
    NoMinShapes.EnableMinShapes = false;
    double TS = timeJit(Spec, Platform, NoMinShapes);

    RegAllocOptions SpillAll;
    SpillAll.SpillEverything = true;
    double TA = timeJit(Spec, Platform, InferOptions(), SpillAll);

    double ChkWith, ChkWithout;
    checkedAccessFractions(Spec, ChkWith, ChkWithout);
    std::printf("%-10s %11.1f%% %14.1f%% %11.1f%% %13.0f%% %13.0f%%\n",
                Spec.Name.c_str(), 100 * Full / TR, 100 * Full / TS,
                100 * Full / TA, ChkWith, ChkWithout);
  }
  std::printf("\nExpected shape (paper): 'no ranges' hurts array-access "
              "heavy codes most (dirich,\nfinedif, mandel); 'no min. "
              "shapes' hurts the small-vector codes (orbec, orbrk,\n"
              "fractal); 'no regalloc' hurts everything.\n"
              "The checked-access columns show the structural mechanism: "
              "with ranges the JIT\nremoves most subscript checks; without "
              "them every access is checked. On this\nVM a check is one "
              "compare inside an already-dispatched instruction, so the\n"
              "wall-clock effect is smaller than on 2002 native code (see "
              "EXPERIMENTS.md).\n");
  return 0;
}
