//===- bench/Harness.cpp - Shared measurement harness ----------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Parallel.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>

using namespace majic;
using namespace majic::bench;

int majic::bench::repetitions() {
  if (const char *Env = std::getenv("MAJIC_BENCH_REPS"))
    return std::max(1, std::atoi(Env));
  return 2;
}

double majic::bench::sizeScale() {
  if (const char *Env = std::getenv("MAJIC_BENCH_SCALE"))
    return std::max(0.01, std::atof(Env));
  return 1.0;
}

std::vector<ValuePtr> majic::bench::scaledArgs(const BenchmarkSpec &Spec) {
  // Which argument positions scale with problem size (iteration counts and
  // grid extents); tolerances and fixed constants do not.
  static const std::map<std::string, std::vector<size_t>> Scalable = {
      {"adapt", {1}},     {"cgopt", {0, 1}},  {"crnich", {2, 3}},
      {"dirich", {0}},    {"finedif", {3, 4}}, {"galrkn", {0}},
      {"icn", {0}},       {"mei", {}},         {"orbec", {0}},
      {"orbrk", {0}},     {"qmr", {0, 1}},     {"sor", {0, 2}},
      {"ackermann", {}},  {"fractal", {0}},    {"mandel", {0}},
      {"fibonacci", {}},
  };
  double Scale = sizeScale();
  std::vector<double> Args = Spec.Args;
  auto It = Scalable.find(Spec.Name);
  if (Scale != 1.0 && It != Scalable.end()) {
    for (size_t Idx : It->second)
      Args[Idx] = std::max(4.0, std::floor(Args[Idx] * Scale));
  }
  std::vector<ValuePtr> Boxed;
  for (double A : Args) {
    if (A == static_cast<long long>(A))
      Boxed.push_back(makeValue(Value::intScalar(A)));
    else
      Boxed.push_back(makeScalar(A));
  }
  return Boxed;
}

double majic::bench::bestOf(int N, const std::function<void()> &Fn) {
  double Best = std::numeric_limits<double>::infinity();
  for (int I = 0; I != N; ++I) {
    Timer T;
    Fn();
    Best = std::min(Best, T.seconds());
  }
  return Best;
}

void majic::bench::loadBenchmark(Engine &E, const BenchmarkSpec &Spec) {
  if (!E.loadFile(mlibDirectory() + "/" + Spec.Name + ".m")) {
    std::fprintf(stderr, "failed to load %s:\n%s\n", Spec.Name.c_str(),
                 E.diagnostics().c_str());
    std::exit(1);
  }
  // Swallow program output during measurement.
  E.context().setSink([](const std::string &) {});
}

namespace {

constexpr uint64_t kBenchSeed = 0x5eed5eed5eedull;

void invokeOnce(Engine &E, const BenchmarkSpec &Spec) {
  E.context().Rand.reseed(kBenchSeed);
  E.callFunction(Spec.Name, scaledArgs(Spec), 1, SourceLoc());
}

} // namespace

double majic::bench::timeInterpreted(const BenchmarkSpec &Spec) {
  EngineOptions O;
  // Measured configurations compile synchronously: the paper's timing
  // methodology excludes ahead-of-time compilation explicitly.
  O.BackgroundCompileThreads = 0;
  O.Policy = CompilePolicy::InterpretOnly;
  Engine E(O);
  loadBenchmark(E, Spec);
  return bestOf(repetitions(), [&] { invokeOnce(E, Spec); });
}

double majic::bench::timeMcc(const BenchmarkSpec &Spec,
                             const PlatformModel &Platform) {
  EngineOptions O;
  O.BackgroundCompileThreads = 0;
  O.Policy = CompilePolicy::Mcc;
  O.Platform = Platform;
  Engine E(O);
  loadBenchmark(E, Spec);
  E.precompileGeneric(Spec.Name, Spec.Args.size());
  return bestOf(repetitions(), [&] { invokeOnce(E, Spec); });
}

double majic::bench::timeFalcon(const BenchmarkSpec &Spec,
                                const PlatformModel &Platform) {
  EngineOptions O;
  O.BackgroundCompileThreads = 0;
  O.Policy = CompilePolicy::Falcon;
  O.Platform = Platform;
  Engine E(O);
  loadBenchmark(E, Spec);
  // FALCON peeks at the input files for type information (Section 4);
  // seeding batch compilation with the actual invocation types models that.
  E.precompileWithArgs(Spec.Name, scaledArgs(Spec));
  return bestOf(repetitions(), [&] { invokeOnce(E, Spec); });
}

double majic::bench::timeJit(const BenchmarkSpec &Spec,
                             const PlatformModel &Platform,
                             const InferOptions &Infer,
                             const RegAllocOptions &RegAlloc) {
  // "To test JIT compilation, we started our experiments with an empty
  // repository" — and JIT runtime includes compile time, so every rep uses
  // a fresh engine.
  return bestOf(repetitions(), [&] {
    EngineOptions O;
    O.BackgroundCompileThreads = 0;
    O.Policy = CompilePolicy::Jit;
    O.Platform = Platform;
    O.Infer = Infer;
    O.RegAlloc = RegAlloc;
    Engine E(O);
    loadBenchmark(E, Spec);
    invokeOnce(E, Spec);
  });
}

double majic::bench::timeSpec(const BenchmarkSpec &Spec,
                              const PlatformModel &Platform) {
  EngineOptions O;
  O.BackgroundCompileThreads = 0;
  O.Policy = CompilePolicy::Speculative;
  O.Platform = Platform;
  Engine E(O);
  loadBenchmark(E, Spec);
  // "We invoked the benchmarks only after MaJIC's repository had ample time
  // to find them and compile them speculatively."
  E.precompileSpeculative(Spec.Name);
  return bestOf(repetitions(), [&] { invokeOnce(E, Spec); });
}

//===----------------------------------------------------------------------===//
// JsonWriter
//===----------------------------------------------------------------------===//

void JsonWriter::indent() {
  Buf.push_back('\n');
  Buf.append(2 * Depth, ' ');
}

void JsonWriter::prefix(const std::string &Key) {
  if (NeedComma.back())
    Buf.push_back(',');
  NeedComma.back() = true;
  if (Depth != 0)
    indent();
  if (!Key.empty()) {
    Buf.push_back('"');
    Buf += Key;
    Buf += "\": ";
  }
}

JsonWriter &JsonWriter::beginObject(const std::string &Key) {
  prefix(Key);
  Buf.push_back('{');
  NeedComma.push_back(false);
  ++Depth;
  return *this;
}

JsonWriter &JsonWriter::endObject() {
  bool HadFields = NeedComma.back();
  NeedComma.pop_back();
  --Depth;
  if (HadFields)
    indent();
  Buf.push_back('}');
  return *this;
}

JsonWriter &JsonWriter::beginArray(const std::string &Key) {
  prefix(Key);
  Buf.push_back('[');
  NeedComma.push_back(false);
  ++Depth;
  return *this;
}

JsonWriter &JsonWriter::endArray() {
  bool HadFields = NeedComma.back();
  NeedComma.pop_back();
  --Depth;
  if (HadFields)
    indent();
  Buf.push_back(']');
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, const std::string &V) {
  prefix(Key);
  Buf.push_back('"');
  for (char C : V) {
    if (C == '"' || C == '\\')
      Buf.push_back('\\');
    Buf.push_back(C);
  }
  Buf.push_back('"');
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, const char *V) {
  return field(Key, std::string(V));
}

JsonWriter &JsonWriter::field(const std::string &Key, double V) {
  prefix(Key);
  char Tmp[64];
  if (std::isfinite(V))
    std::snprintf(Tmp, sizeof(Tmp), "%.6g", V);
  else
    std::snprintf(Tmp, sizeof(Tmp), "null"); // JSON has no inf/nan
  Buf += Tmp;
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, uint64_t V) {
  prefix(Key);
  Buf += std::to_string(V);
  return *this;
}

JsonWriter &JsonWriter::field(const std::string &Key, bool V) {
  prefix(Key);
  Buf += V ? "true" : "false";
  return *this;
}

bool JsonWriter::writeFile(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  bool Ok = std::fwrite(Buf.data(), 1, Buf.size(), F) == Buf.size() &&
            std::fputc('\n', F) != EOF;
  return std::fclose(F) == 0 && Ok;
}

void majic::bench::printHeader(const std::string &Title,
                               const std::string &Note) {
  std::printf("\n");
  std::printf("============================================================"
              "====================\n");
  std::printf("%s\n", Title.c_str());
  if (!Note.empty())
    std::printf("%s\n", Note.c_str());
  std::printf("============================================================"
              "====================\n");
}

void majic::bench::writeMachineInfo(JsonWriter &W) {
  W.beginObject("machine");
  W.field("hardware_concurrency", std::thread::hardware_concurrency());
  W.field("compute_threads", par::computeThreads());
#ifdef MAJIC_BUILD_TYPE
  W.field("build_type", MAJIC_BUILD_TYPE);
#else
  W.field("build_type", "unknown");
#endif
#ifdef __VERSION__
  W.field("compiler", __VERSION__);
#else
  W.field("compiler", "unknown");
#endif
  W.endObject();
}
