//===- bench/BenchFusion.cpp - Fused vs unfused elementwise chains --------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The payoff of elementwise expression fusion: a chain of L elementwise
// operators over an n x n matrix is one memory pass and one allocation
// when fused, L passes and L allocations when not. Measured per (chain
// length, matrix size) with two engines that differ only in the
// FuseElementwise knob, single compute thread, steady state (the JIT
// compile happens in an untimed warmup call):
//
//   per-chain time = (t(reps_hi) - t(reps_lo)) / (reps_hi - reps_lo)
//
// which cancels the call overhead and the operand-construction prologue
// exactly. Both configurations must produce bit-identical results - a
// speedup with a different answer is a bug, not a win. Emits
// BENCH_fusion.json.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace majic;
using namespace majic::bench;

namespace {

struct Chain {
  const char *Name;
  int Ops;          ///< elementwise operators in the fused statement
  const char *Stmt; ///< the chain, over operands a, b, c
};

// Linear chains (single-use intermediates, stack depth <= 2) so the whole
// right-hand side fuses into one EwFuse group.
const Chain kChains[] = {
    {"chain2", 2, "r = a .* b + c;"},
    {"chain4", 4, "r = a .* b + c - a .* 0.5;"},
    {"chain8", 8, "r = a .* b + c - a .* 0.5 + b ./ 2.0 - c + 1.5;"},
};

const int kSizes[] = {64, 256, 1024};

/// Best-of count: the acceptance measurement is best-of-25 on a quiet
/// system; MAJIC_BENCH_REPS lowers it for smoke runs.
int benchReps() {
  return std::getenv("MAJIC_BENCH_REPS") ? repetitions() : 25;
}

std::string chainSource(const Chain &C) {
  return std::string("function s = bench(n, reps)\n"
                     "a = ones(n, n) * 1.5;\n"
                     "b = ones(n, n) * 0.25;\n"
                     "c = ones(n, n) * 3.0;\n"
                     "s = 0;\n"
                     "for k = 1:reps\n") +
         C.Stmt +
         "\ns = s + r(1) + r(n * n);\n"
         "end\n";
}

struct Measured {
  double SecondsPerChain = 0;
  double Result = 0; ///< the accumulated scalar, for the identity check
  uint64_t TempsElided = 0;
};

/// Steady-state per-chain-evaluation time under one engine configuration.
Measured measure(const Chain &C, int N, int Reps, bool Fused) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 0;
  O.ComputeThreads = 1;
  O.FuseElementwise = Fused;
  Engine E(O);
  if (!E.addSource("bench", chainSource(C)))
    std::abort();

  auto Call = [&](int Reps2) {
    auto R = E.callFunction("bench",
                            {makeValue(Value::intScalar(N)),
                             makeValue(Value::intScalar(Reps2))},
                            1, SourceLoc());
    return R[0]->scalarValue();
  };

  Measured M;
  M.Result = Call(Reps); // warmup: JIT compile + the identity-check answer

  const int Lo = 1, Hi = 1 + Reps;
  double TLo = bestOf(benchReps(), [&] { Call(Lo); });
  double THi = bestOf(benchReps(), [&] { Call(Hi); });
  M.SecondsPerChain = std::max(THi - TLo, 0.0) / (Hi - Lo);

  obs::MetricsSnapshot Snap = E.sampleMetrics();
  for (const auto &[Name, V] : Snap.Counters)
    if (Name == "fusion.temps_elided")
      M.TempsElided = V;
  return M;
}

} // namespace

int main() {
  printHeader("Elementwise fusion: one pass vs one pass per operator",
              "JIT policy, 1 compute thread, steady state (compile untimed); "
              "per-chain time\nfrom a two-point fit so call overhead and "
              "operand setup cancel exactly");

  std::printf("%-8s %4s %9s %14s %14s %8s  %s\n", "chain", "n", "elements",
              "unfused (ms)", "fused (ms)", "speedup", "results");
  std::printf("%.*s\n", 78,
              "-----------------------------------------------------------"
              "--------------------");

  const int ChainReps = 6;

  JsonWriter W;
  W.beginObject();
  W.field("benchmark_set", "fusion");
  W.field("policy", "jit");
  W.field("compute_threads", 1);
  W.field("best_of", benchReps());
  writeMachineInfo(W);
  W.beginArray("results");

  int Matching = 0, Faster = 0, Total = 0;
  for (const Chain &C : kChains) {
    for (int Size : kSizes) {
      int N = std::max(16, static_cast<int>(Size * sizeScale()));
      Measured Un = measure(C, N, ChainReps, /*Fused=*/false);
      Measured Fu = measure(C, N, ChainReps, /*Fused=*/true);
      double Speedup =
          Fu.SecondsPerChain > 0 ? Un.SecondsPerChain / Fu.SecondsPerChain : 0;
      bool Match = Un.Result == Fu.Result; // bit-identical accumulations
      ++Total;
      Matching += Match;
      Faster += Fu.SecondsPerChain < Un.SecondsPerChain;

      std::printf("%-8s %4d %9d %14.3f %14.3f %7.2fx  %s\n", C.Name, N, N * N,
                  Un.SecondsPerChain * 1e3, Fu.SecondsPerChain * 1e3, Speedup,
                  Match ? "identical" : "MISMATCH");

      W.beginObject();
      W.field("chain", C.Name);
      W.field("ops", C.Ops);
      W.field("n", N);
      W.field("elements", static_cast<uint64_t>(N) * N);
      W.field("unfused_ms", Un.SecondsPerChain * 1e3);
      W.field("fused_ms", Fu.SecondsPerChain * 1e3);
      W.field("speedup", Speedup);
      // Intermediate Values the unfused chain materializes per evaluation
      // and the fused loop never allocates (compile-time count).
      W.field("temps_elided", Fu.TempsElided);
      W.field("results_identical", Match);
      W.endObject();
    }
  }

  W.endArray();
  W.field("all_identical", Matching == Total);
  W.field("fused_faster", Faster);
  W.field("combinations", Total);
  W.endObject();
  if (!W.writeFile("BENCH_fusion.json"))
    std::fprintf(stderr, "warning: could not write BENCH_fusion.json\n");

  std::printf("\n%d/%d combinations bit-identical, %d/%d fused faster; "
              "BENCH_fusion.json written.\n",
              Matching, Total, Faster, Total);
  return Matching == Total ? 0 : 1;
}
