//===- tests/BuiltinsTest.cpp - Builtin library ------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Builtins.h"
#include "runtime/LinAlg.h"
#include "runtime/Ops.h"

#include <gtest/gtest.h>

using namespace majic;

namespace {

class BuiltinsTest : public ::testing::Test {
protected:
  Value call1(const std::string &Name, std::vector<Value> Args) {
    std::vector<Value> Rs = callN(Name, std::move(Args), 1);
    EXPECT_FALSE(Rs.empty());
    return Rs.empty() ? Value() : Rs.front();
  }

  std::vector<Value> callN(const std::string &Name, std::vector<Value> Args,
                           size_t NumOuts) {
    const BuiltinDef *Def = BuiltinTable::instance().lookup(Name);
    EXPECT_NE(Def, nullptr) << Name;
    std::vector<const Value *> Ptrs;
    for (const Value &V : Args)
      Ptrs.push_back(&V);
    return BuiltinTable::call(*Def, Ctx, Ptrs, NumOuts);
  }

  Value vec(std::initializer_list<double> Xs) {
    Value V = Value::zeros(1, Xs.size());
    size_t I = 0;
    for (double X : Xs)
      V.reRef(I++) = X;
    return V;
  }

  Context Ctx;
};

TEST_F(BuiltinsTest, TableLookup) {
  EXPECT_TRUE(BuiltinTable::instance().contains("zeros"));
  EXPECT_TRUE(BuiltinTable::instance().contains("sqrt"));
  EXPECT_TRUE(BuiltinTable::instance().contains("i"));
  EXPECT_FALSE(BuiltinTable::instance().contains("nosuchfn"));
}

TEST_F(BuiltinsTest, Creators) {
  Value Z = call1("zeros", {Value::scalar(2), Value::scalar(3)});
  EXPECT_EQ(Z.rows(), 2u);
  EXPECT_EQ(Z.cols(), 3u);
  Value O = call1("ones", {Value::scalar(2)});
  EXPECT_EQ(O.rows(), 2u);
  EXPECT_EQ(O.cols(), 2u);
  EXPECT_DOUBLE_EQ(O.re(3), 1.0);
  Value E = call1("eye", {Value::scalar(3)});
  EXPECT_DOUBLE_EQ(E.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(E.at(1, 0), 0.0);
}

TEST_F(BuiltinsTest, RandIsDeterministicPerSeed) {
  Ctx.Rand.reseed(42);
  Value A = call1("rand", {Value::scalar(2), Value::scalar(2)});
  Ctx.Rand.reseed(42);
  Value B = call1("rand", {Value::scalar(2), Value::scalar(2)});
  for (size_t I = 0; I != 4; ++I) {
    EXPECT_EQ(A.re(I), B.re(I));
    EXPECT_GE(A.re(I), 0.0);
    EXPECT_LT(A.re(I), 1.0);
  }
}

TEST_F(BuiltinsTest, SizeForms) {
  Value M = Value::zeros(3, 4);
  Value S = call1("size", {M});
  EXPECT_EQ(S.numel(), 2u);
  EXPECT_DOUBLE_EQ(S.re(0), 3);
  EXPECT_DOUBLE_EQ(S.re(1), 4);

  Value R = call1("size", {M, Value::scalar(1)});
  EXPECT_DOUBLE_EQ(R.scalarValue(), 3);

  std::vector<Value> Two = callN("size", {M}, 2);
  ASSERT_EQ(Two.size(), 2u);
  EXPECT_DOUBLE_EQ(Two[0].scalarValue(), 3);
  EXPECT_DOUBLE_EQ(Two[1].scalarValue(), 4);
}

TEST_F(BuiltinsTest, LengthNumel) {
  Value M = Value::zeros(3, 4);
  EXPECT_DOUBLE_EQ(call1("length", {M}).scalarValue(), 4);
  EXPECT_DOUBLE_EQ(call1("numel", {M}).scalarValue(), 12);
  EXPECT_DOUBLE_EQ(call1("length", {Value()}).scalarValue(), 0);
}

TEST_F(BuiltinsTest, SqrtEscalatesToComplex) {
  Value R = call1("sqrt", {Value::scalar(-4)});
  EXPECT_TRUE(R.isComplex());
  EXPECT_NEAR(R.im(0), 2.0, 1e-12);
  Value R2 = call1("sqrt", {Value::scalar(9)});
  EXPECT_FALSE(R2.isComplex());
  EXPECT_DOUBLE_EQ(R2.scalarValue(), 3);
}

TEST_F(BuiltinsTest, AbsOfComplexIsMagnitude) {
  Value R = call1("abs", {Value::complexScalar(3, 4)});
  EXPECT_FALSE(R.isComplex());
  EXPECT_DOUBLE_EQ(R.scalarValue(), 5);
}

TEST_F(BuiltinsTest, Reductions) {
  EXPECT_DOUBLE_EQ(call1("sum", {vec({1, 2, 3})}).scalarValue(), 6);
  EXPECT_DOUBLE_EQ(call1("prod", {vec({2, 3, 4})}).scalarValue(), 24);
  EXPECT_DOUBLE_EQ(call1("mean", {vec({1, 2, 3})}).scalarValue(), 2);
  // Matrix reductions are column-wise.
  Value M = Value::zeros(2, 2);
  M.reRef(0) = 1;
  M.reRef(1) = 2;
  M.reRef(2) = 3;
  M.reRef(3) = 4;
  Value S = call1("sum", {M});
  EXPECT_EQ(S.cols(), 2u);
  EXPECT_DOUBLE_EQ(S.re(0), 3);
  EXPECT_DOUBLE_EQ(S.re(1), 7);
}

TEST_F(BuiltinsTest, MaxMinWithIndices) {
  std::vector<Value> R = callN("max", {vec({3, 9, 1})}, 2);
  ASSERT_EQ(R.size(), 2u);
  EXPECT_DOUBLE_EQ(R[0].scalarValue(), 9);
  EXPECT_DOUBLE_EQ(R[1].scalarValue(), 2); // 1-based index
  Value M2 = call1("max", {vec({1, 5}), vec({3, 2})});
  EXPECT_DOUBLE_EQ(M2.re(0), 3);
  EXPECT_DOUBLE_EQ(M2.re(1), 5);
  EXPECT_DOUBLE_EQ(call1("min", {vec({3, 9, 1})}).scalarValue(), 1);
}

TEST_F(BuiltinsTest, NormVariants) {
  Value V = vec({3, 4});
  EXPECT_DOUBLE_EQ(call1("norm", {V}).scalarValue(), 5);
  EXPECT_DOUBLE_EQ(call1("norm", {V, Value::scalar(1)}).scalarValue(), 7);
  Value VInf = call1("norm", {V, Value::str("inf")});
  EXPECT_DOUBLE_EQ(VInf.scalarValue(), 4);
}

TEST_F(BuiltinsTest, DotProduct) {
  EXPECT_DOUBLE_EQ(call1("dot", {vec({1, 2}), vec({3, 4})}).scalarValue(), 11);
}

TEST_F(BuiltinsTest, FindAnyAllSort) {
  Value F = call1("find", {vec({0, 7, 0, 9})});
  EXPECT_EQ(F.numel(), 2u);
  EXPECT_DOUBLE_EQ(F.re(0), 2);
  EXPECT_DOUBLE_EQ(F.re(1), 4);
  EXPECT_DOUBLE_EQ(call1("any", {vec({0, 0, 1})}).scalarValue(), 1);
  EXPECT_DOUBLE_EQ(call1("all", {vec({1, 0, 1})}).scalarValue(), 0);
  Value S = call1("sort", {vec({3, 1, 2})});
  EXPECT_DOUBLE_EQ(S.re(0), 1);
  EXPECT_DOUBLE_EQ(S.re(2), 3);
}

TEST_F(BuiltinsTest, ModRemSign) {
  EXPECT_DOUBLE_EQ(
      call1("mod", {Value::scalar(-1), Value::scalar(3)}).scalarValue(), 2);
  EXPECT_DOUBLE_EQ(
      call1("rem", {Value::scalar(-1), Value::scalar(3)}).scalarValue(), -1);
  EXPECT_DOUBLE_EQ(call1("sign", {Value::scalar(-7)}).scalarValue(), -1);
}

TEST_F(BuiltinsTest, Constants) {
  EXPECT_NEAR(call1("pi", {}).scalarValue(), 3.14159265358979, 1e-12);
  EXPECT_TRUE(std::isinf(call1("Inf", {}).scalarValue()));
  EXPECT_TRUE(std::isnan(call1("NaN", {}).scalarValue()));
  Value I = call1("i", {});
  EXPECT_TRUE(I.isComplex());
  EXPECT_DOUBLE_EQ(I.im(0), 1);
}

TEST_F(BuiltinsTest, FprintfFormatsAndCycles) {
  callN("fprintf", {Value::str("x=%d y=%.2f\\n"), Value::scalar(3),
                    Value::scalar(1.5)},
        0);
  EXPECT_EQ(Ctx.output(), "x=3 y=1.50\n");
  Ctx.clearOutput();
  // The format cycles over remaining arguments.
  callN("fprintf", {Value::str("%d "), vec({1, 2, 3})}, 0);
  EXPECT_EQ(Ctx.output(), "1 2 3 ");
}

TEST_F(BuiltinsTest, DispStringsAndValues) {
  callN("disp", {Value::str("hello")}, 0);
  EXPECT_EQ(Ctx.output(), "hello\n");
}

TEST_F(BuiltinsTest, ErrorThrows) {
  EXPECT_THROW(callN("error", {Value::str("boom")}, 0), MatlabError);
}

TEST_F(BuiltinsTest, WrongArityThrows) {
  EXPECT_THROW(callN("sqrt", {}, 1), MatlabError);
  EXPECT_THROW(callN("sqrt", {Value::scalar(1), Value::scalar(2)}, 1),
               MatlabError);
}

TEST_F(BuiltinsTest, EigOfSymmetricMatrix) {
  Value M = Value::zeros(2, 2);
  M.reRef(0) = 2;
  M.reRef(1) = 1;
  M.reRef(2) = 1;
  M.reRef(3) = 2; // eigenvalues 1 and 3
  Value E = call1("eig", {M});
  ASSERT_EQ(E.numel(), 2u);
  EXPECT_NEAR(E.re(0), 1, 1e-9);
  EXPECT_NEAR(E.re(1), 3, 1e-9);
}

TEST_F(BuiltinsTest, DiagBothDirections) {
  Value D = call1("diag", {vec({1, 2, 3})});
  EXPECT_EQ(D.rows(), 3u);
  EXPECT_DOUBLE_EQ(D.at(1, 1), 2);
  Value Back = call1("diag", {D});
  EXPECT_EQ(Back.rows(), 3u);
  EXPECT_EQ(Back.cols(), 1u);
  EXPECT_DOUBLE_EQ(Back.re(2), 3);
}

//===----------------------------------------------------------------------===//
// Linear algebra kernels
//===----------------------------------------------------------------------===//

TEST(LinAlg, LuSolveRandomSystem) {
  Rng R(7);
  size_t N = 20;
  Value A = Value::zeros(N, N);
  Value XTrue = Value::zeros(N, 1);
  for (size_t I = 0; I != N * N; ++I)
    A.reRef(I) = R.nextDouble() - 0.5;
  for (size_t I = 0; I != N; ++I) {
    A.reRef(I * N + I) += 5.0; // diagonally dominant
    XTrue.reRef(I) = R.nextDouble();
  }
  Value B = rt::binary(rt::BinOp::MatMul, A, XTrue);
  Value X = linalg::luSolve(A, B);
  for (size_t I = 0; I != N; ++I)
    EXPECT_NEAR(X.re(I), XTrue.re(I), 1e-9);
}

TEST(LinAlg, SingularMatrixThrows) {
  Value A = Value::zeros(2, 2); // all zeros: singular
  Value B = Value::zeros(2, 1);
  EXPECT_THROW(linalg::luSolve(A, B), MatlabError);
}

TEST(LinAlg, CholeskyReconstructs) {
  // A = R' R for a known SPD matrix.
  Value A = Value::zeros(2, 2);
  A.reRef(0) = 4;
  A.reRef(1) = 2;
  A.reRef(2) = 2;
  A.reRef(3) = 3;
  Value R = linalg::cholesky(A);
  Value RtR = rt::binary(rt::BinOp::MatMul,
                         rt::unary(rt::UnOp::CTranspose, R), R);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_NEAR(RtR.re(I), A.re(I), 1e-12);
  // Lower triangle of R must be zero.
  EXPECT_DOUBLE_EQ(R.at(1, 0), 0.0);
}

TEST(LinAlg, CholeskyRejectsIndefinite) {
  Value A = Value::zeros(2, 2);
  A.reRef(0) = 1;
  A.reRef(3) = -1;
  EXPECT_THROW(linalg::cholesky(A), MatlabError);
}

TEST(LinAlg, EigenvaluesSatisfyCharacteristicEquation) {
  Rng R(3);
  size_t N = 8;
  Value A = Value::zeros(N, N);
  for (size_t I = 0; I != N; ++I)
    for (size_t J = 0; J <= I; ++J) {
      double V = R.nextDouble() - 0.5;
      A.reRef(J * N + I) = V;
      A.reRef(I * N + J) = V;
    }
  Value Eigs = linalg::symEig(A);
  // Sum of eigenvalues equals the trace.
  double Trace = 0, Sum = 0;
  for (size_t I = 0; I != N; ++I) {
    Trace += A.at(I, I);
    Sum += Eigs.re(I);
  }
  EXPECT_NEAR(Sum, Trace, 1e-9);
  // Sorted ascending.
  for (size_t I = 1; I != N; ++I)
    EXPECT_LE(Eigs.re(I - 1), Eigs.re(I) + 1e-12);
}

TEST(LinAlg, InverseTimesSelfIsIdentity) {
  Value A = Value::zeros(3, 3);
  double Vals[9] = {4, 1, 0, 1, 3, 1, 0, 1, 5};
  for (size_t I = 0; I != 9; ++I)
    A.reRef(I) = Vals[I];
  Value Inv = linalg::inverse(A);
  Value Prod = rt::binary(rt::BinOp::MatMul, A, Inv);
  for (size_t I = 0; I != 3; ++I)
    for (size_t J = 0; J != 3; ++J)
      EXPECT_NEAR(Prod.at(I, J), I == J ? 1.0 : 0.0, 1e-12);
}

TEST(LinAlg, DeterminantOfKnownMatrix) {
  Value A = Value::zeros(2, 2);
  A.reRef(0) = 1;
  A.reRef(1) = 3;
  A.reRef(2) = 2;
  A.reRef(3) = 4; // [1 2; 3 4], det = -2
  EXPECT_NEAR(linalg::determinant(A), -2.0, 1e-12);
}

} // namespace
