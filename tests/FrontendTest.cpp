//===- tests/FrontendTest.cpp - Lexer, parser, CFG, disambiguation -----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Disambiguate.h"
#include "ast/ASTPrinter.h"
#include "ast/ASTVisit.h"
#include "ast/Lexer.h"
#include "ast/Parser.h"

#include <gtest/gtest.h>

using namespace majic;

namespace {

std::vector<Token> lexOk(const std::string &Src) {
  SourceManager SM;
  Diagnostics Diags;
  uint32_t Id = SM.addBuffer("t.m", Src);
  auto Toks = lex(SM.bufferContents(Id), Id, Diags);
  EXPECT_FALSE(Diags.hasErrors()) << Diags.render(SM);
  return Toks;
}

std::unique_ptr<Module> parseOk(const std::string &Src) {
  SourceManager SM;
  Diagnostics Diags;
  auto M = parseModule("t", Src, SM, Diags);
  EXPECT_TRUE(M != nullptr) << Diags.render(SM);
  return M;
}

/// Finds the first IdentExpr named \p Name in \p F and returns its kind.
SymKind kindOf(Function &F, const std::string &Name) {
  SymKind K = SymKind::Unresolved;
  bool Found = false;
  visitStmts(F.body(), [&](const Stmt *S) {
    visitStmtExprs(S, [&](Expr *E) {
      visitExpr(E, [&](Expr *Node) {
        if (auto *Id = dyn_cast<IdentExpr>(Node))
          if (!Found && Id->name() == Name) {
            K = Id->symKind();
            Found = true;
          }
      });
    });
  });
  return K;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, NumbersAndSuffixes) {
  auto T = lexOk("3 3.5 1e3 2.5e-2 4i 7j");
  ASSERT_GE(T.size(), 7u);
  EXPECT_DOUBLE_EQ(T[0].NumValue, 3);
  EXPECT_DOUBLE_EQ(T[1].NumValue, 3.5);
  EXPECT_DOUBLE_EQ(T[2].NumValue, 1000);
  EXPECT_DOUBLE_EQ(T[3].NumValue, 0.025);
  EXPECT_TRUE(T[4].IsImaginary);
  EXPECT_TRUE(T[5].IsImaginary);
}

TEST(Lexer, QuoteDisambiguation) {
  // After an identifier, ' is transpose; at expression start, a string.
  auto T = lexOk("x' + 'abc'");
  EXPECT_EQ(T[0].Kind, TokKind::Identifier);
  EXPECT_EQ(T[1].Kind, TokKind::Quote);
  EXPECT_EQ(T[2].Kind, TokKind::Plus);
  EXPECT_EQ(T[3].Kind, TokKind::String);
  EXPECT_EQ(T[3].Text, "abc");
}

TEST(Lexer, EscapedQuoteInString) {
  auto T = lexOk("'don''t'");
  EXPECT_EQ(T[0].Kind, TokKind::String);
  EXPECT_EQ(T[0].Text, "don't");
}

TEST(Lexer, CommentsAndContinuation) {
  auto T = lexOk("a = 1 % comment\nb = a ... continued\n + 2\n");
  // No token from the comment; the continuation swallows the newline.
  size_t Newlines = 0;
  for (const Token &Tok : T)
    if (Tok.Kind == TokKind::Newline)
      ++Newlines;
  EXPECT_EQ(Newlines, 2u);
}

TEST(Lexer, DotOperators) {
  auto T = lexOk("a .* b ./ c .^ d .' e");
  EXPECT_EQ(T[1].Kind, TokKind::DotStar);
  EXPECT_EQ(T[3].Kind, TokKind::DotSlash);
  EXPECT_EQ(T[5].Kind, TokKind::DotCaret);
  EXPECT_EQ(T[7].Kind, TokKind::DotQuote);
}

TEST(Lexer, NumberDotDoesNotEatElementwiseOps) {
  // "3.*x" must lex as 3 .* x (MATLAB semantics), not "3." "*" "x".
  auto T = lexOk("3.*x");
  EXPECT_EQ(T[0].Kind, TokKind::Number);
  EXPECT_EQ(T[1].Kind, TokKind::DotStar);
}

TEST(Lexer, SpaceBeforeTracking) {
  auto T = lexOk("[1 -2]");
  // Tokens: [ 1 - 2 ]
  EXPECT_EQ(T[2].Kind, TokKind::Minus);
  EXPECT_TRUE(T[2].SpaceBefore);
  EXPECT_FALSE(T[3].SpaceBefore);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, ScriptAndFunctionModules) {
  auto Script = parseOk("x = 1;\ny = x + 2;\n");
  EXPECT_TRUE(Script->mainFunction()->isScript());

  auto Fn = parseOk("function y = f(x)\ny = x * 2;\n");
  EXPECT_FALSE(Fn->mainFunction()->isScript());
  EXPECT_EQ(Fn->mainFunction()->name(), "f");
  ASSERT_EQ(Fn->mainFunction()->params().size(), 1u);
  EXPECT_EQ(Fn->mainFunction()->outs().size(), 1u);
}

TEST(Parser, Subfunctions) {
  auto M = parseOk("function y = main(x)\ny = helper(x);\n"
                   "function z = helper(w)\nz = w + 1;\n");
  EXPECT_EQ(M->functions().size(), 2u);
  EXPECT_NE(M->findFunction("helper"), nullptr);
  EXPECT_EQ(M->findFunction("nope"), nullptr);
}

TEST(Parser, MultiOutputHeader) {
  auto M = parseOk("function [a, b] = f(x, y)\na = x;\nb = y;\n");
  EXPECT_EQ(M->mainFunction()->outs().size(), 2u);
  EXPECT_EQ(M->mainFunction()->params().size(), 2u);
}

TEST(Parser, PrecedenceColonVsArithmetic) {
  // 1:n-1 parses as 1:(n-1).
  auto M = parseOk("x = 1:n-1;");
  const auto *A = cast<AssignStmt>(M->mainFunction()->body().front());
  const auto *R = dyn_cast<RangeExpr>(A->rhs());
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R->hi()->getKind(), Expr::Kind::Binary);
}

TEST(Parser, PowerBindsTighterThanUnaryMinus) {
  // -2^2 is -(2^2).
  auto M = parseOk("x = -2^2;");
  const auto *A = cast<AssignStmt>(M->mainFunction()->body().front());
  EXPECT_EQ(A->rhs()->getKind(), Expr::Kind::Unary);
}

TEST(Parser, MatrixSpaceSeparation) {
  // [1 -2] has two elements; [1 - 2] has one.
  auto M1 = parseOk("x = [1 -2];");
  const auto *A1 = cast<AssignStmt>(M1->mainFunction()->body().front());
  EXPECT_EQ(cast<MatrixExpr>(A1->rhs())->rows().front().size(), 2u);

  auto M2 = parseOk("x = [1 - 2];");
  const auto *A2 = cast<AssignStmt>(M2->mainFunction()->body().front());
  EXPECT_EQ(cast<MatrixExpr>(A2->rhs())->rows().front().size(), 1u);

  auto M3 = parseOk("x = [1-2];");
  const auto *A3 = cast<AssignStmt>(M3->mainFunction()->body().front());
  EXPECT_EQ(cast<MatrixExpr>(A3->rhs())->rows().front().size(), 1u);
}

TEST(Parser, MatrixRowsBySemiAndNewline) {
  auto M = parseOk("x = [1 2; 3 4];\ny = [1 2\n3 4];");
  const auto *A = cast<AssignStmt>(M->mainFunction()->body()[0]);
  EXPECT_EQ(cast<MatrixExpr>(A->rhs())->rows().size(), 2u);
  const auto *B = cast<AssignStmt>(M->mainFunction()->body()[1]);
  EXPECT_EQ(cast<MatrixExpr>(B->rhs())->rows().size(), 2u);
}

TEST(Parser, IfElseifElseChain) {
  auto M = parseOk("if a < 1\nx = 1;\nelseif a < 2\nx = 2;\nelse\nx = 3;\nend\n");
  const auto *If = cast<IfStmt>(M->mainFunction()->body().front());
  EXPECT_EQ(If->branches().size(), 2u);
  EXPECT_EQ(If->elseBlock().size(), 1u);
}

TEST(Parser, LoopsAndControl) {
  auto M = parseOk("for k = 1:10\nif k > 5, break; end\nend\n"
                   "while x > 0\nx = x - 1;\nif x == 2, continue; end\nend\n");
  EXPECT_EQ(M->mainFunction()->body().size(), 2u);
  EXPECT_EQ(M->mainFunction()->body()[0]->getKind(), Stmt::Kind::For);
  EXPECT_EQ(M->mainFunction()->body()[1]->getKind(), Stmt::Kind::While);
}

TEST(Parser, IndexingWithColonAndEnd) {
  auto M = parseOk("y = A(2:end, :);");
  const auto *A = cast<AssignStmt>(M->mainFunction()->body().front());
  const auto *IC = cast<IndexOrCallExpr>(A->rhs());
  ASSERT_EQ(IC->args().size(), 2u);
  EXPECT_EQ(IC->args()[1]->getKind(), Expr::Kind::ColonWildcard);
  const auto *R = cast<RangeExpr>(IC->args()[0]);
  EXPECT_EQ(R->hi()->getKind(), Expr::Kind::EndRef);
}

TEST(Parser, MultiAssignment) {
  auto M = parseOk("[m, n] = size(A);");
  const auto *A = cast<AssignStmt>(M->mainFunction()->body().front());
  EXPECT_TRUE(A->isMulti());
  EXPECT_EQ(A->targets()[0].Name, "m");
  EXPECT_EQ(A->targets()[1].Name, "n");
}

TEST(Parser, IndexedAssignment) {
  auto M = parseOk("A(i, j) = 5;");
  const auto *A = cast<AssignStmt>(M->mainFunction()->body().front());
  EXPECT_TRUE(A->targets().front().HasParens);
  EXPECT_EQ(A->targets().front().Indices.size(), 2u);
}

TEST(Parser, DisplaySuppression) {
  auto M = parseOk("x = 1\ny = 2;\n");
  EXPECT_TRUE(cast<AssignStmt>(M->mainFunction()->body()[0])->displays());
  EXPECT_FALSE(cast<AssignStmt>(M->mainFunction()->body()[1])->displays());
}

TEST(Parser, ShortCircuitOperators) {
  auto M = parseOk("x = a > 0 && b < 2 || c == 1;");
  const auto *A = cast<AssignStmt>(M->mainFunction()->body().front());
  const auto *Or = dyn_cast<ShortCircuitExpr>(A->rhs());
  ASSERT_NE(Or, nullptr);
  EXPECT_FALSE(Or->isAnd());
}

TEST(Parser, ParseErrorReported) {
  SourceManager SM;
  Diagnostics Diags;
  auto M = parseModule("t", "x = (1 + ;\n", SM, Diags);
  EXPECT_EQ(M, nullptr);
  EXPECT_TRUE(Diags.hasErrors());
}

TEST(Parser, RoundTripThroughPrinter) {
  std::string Src = "function y = f(x)\n"
                    "z = [1, 2; 3, 4];\n"
                    "for k = 1:10\n"
                    "z(k) = x * k;\n"
                    "end\n"
                    "y = sum(z);\n";
  auto M1 = parseOk(Src);
  std::string Printed = printFunction(*M1->mainFunction());
  auto M2 = parseOk(Printed);
  // Printing the reparse of the print is a fixpoint.
  EXPECT_EQ(printFunction(*M2->mainFunction()), Printed);
}

//===----------------------------------------------------------------------===//
// CFG
//===----------------------------------------------------------------------===//

TEST(Cfg, StraightLineIsTwoBlocks) {
  auto M = parseOk("x = 1;\ny = 2;\n");
  auto G = buildCFG(*M->mainFunction());
  // Entry (with both stmts) and exit.
  EXPECT_EQ(G->entry()->elements().size(), 2u);
  EXPECT_EQ(G->entry()->termKind(), BasicBlock::TermKind::Return);
}

TEST(Cfg, IfProducesDiamond) {
  auto M = parseOk("if c\nx = 1;\nelse\nx = 2;\nend\ny = x;\n");
  auto G = buildCFG(*M->mainFunction());
  EXPECT_EQ(G->entry()->termKind(), BasicBlock::TermKind::CondBranch);
  auto RPO = G->reversePostOrder();
  // entry, then/else, join, exit all reachable.
  EXPECT_GE(RPO.size(), 5u);
}

TEST(Cfg, WhileHasBackEdge) {
  auto M = parseOk("while c\nx = x + 1;\nend\n");
  auto G = buildCFG(*M->mainFunction());
  // Find the loop header: a CondBranch block with 2+ preds.
  bool FoundHeader = false;
  for (const auto &B : G->blocks())
    if (B->termKind() == BasicBlock::TermKind::CondBranch &&
        B->preds().size() >= 2)
      FoundHeader = true;
  EXPECT_TRUE(FoundHeader);
}

TEST(Cfg, ForLoweringHasInitStepAndLoopTerm) {
  auto M = parseOk("for k = 1:10\nx = k;\nend\n");
  auto G = buildCFG(*M->mainFunction());
  bool HasInit = false, HasStep = false, HasForTerm = false;
  for (const auto &B : G->blocks()) {
    for (const auto &E : B->elements()) {
      HasInit |= E.K == BasicBlock::Element::Kind::ForInit;
      HasStep |= E.K == BasicBlock::Element::Kind::ForStep;
    }
    HasForTerm |= B->termKind() == BasicBlock::TermKind::ForLoop;
  }
  EXPECT_TRUE(HasInit);
  EXPECT_TRUE(HasStep);
  EXPECT_TRUE(HasForTerm);
}

TEST(Cfg, BreakJumpsToExitOfLoop) {
  auto M = parseOk("for k = 1:10\nif k > 2\nbreak;\nend\nend\nx = 1;\n");
  auto G = buildCFG(*M->mainFunction());
  // All blocks reachable; the structure converged without errors.
  EXPECT_GE(G->reversePostOrder().size(), 5u);
}

//===----------------------------------------------------------------------===//
// Disambiguation (Section 2.1, Figure 2)
//===----------------------------------------------------------------------===//

TEST(Disambiguate, ParamsAreVariables) {
  auto M = parseOk("function y = f(x)\ny = x + 1;\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "x"), SymKind::Variable);
  EXPECT_FALSE(Info->HasAmbiguousSymbols);
}

TEST(Disambiguate, UnassignedNameIsBuiltin) {
  auto M = parseOk("function y = f(x)\ny = sqrt(x) + pi;\n");
  disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "sqrt"), SymKind::Builtin);
  EXPECT_EQ(kindOf(*M->mainFunction(), "pi"), SymKind::Builtin);
}

TEST(Disambiguate, UnknownNameIsUserFunction) {
  auto M = parseOk("function y = f(x)\ny = mystery(x);\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "mystery"), SymKind::UserFunction);
  ASSERT_EQ(Info->Callees.size(), 1u);
  EXPECT_EQ(Info->Callees.front(), "mystery");
}

TEST(Disambiguate, SubfunctionBeatsBuiltin) {
  auto M = parseOk("function y = f(x)\ny = sum(x);\n"
                   "function s = sum(v)\ns = 0;\n");
  disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "sum"), SymKind::UserFunction);
}

TEST(Disambiguate, Figure2LeftAmbiguousI) {
  // Figure 2 left: the first read of i is sqrt(-1) on iteration one and a
  // variable afterwards -> ambiguous.
  auto M = parseOk("clear\nwhile x < 10\nz = i;\ni = z + 1;\nend\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "i"), SymKind::Ambiguous);
  EXPECT_TRUE(Info->HasAmbiguousSymbols);
}

TEST(Disambiguate, Figure2RightGuardedUseIsAmbiguous) {
  // Figure 2 right: y is only defined after iteration one; static analysis
  // must classify the guarded read as ambiguous (deferred to runtime).
  auto M = parseOk("x = 0;\nfor p = 1:N\nif p >= 2\nx = y;\nend\ny = p;\nend\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "y"), SymKind::Ambiguous);
  EXPECT_TRUE(Info->HasAmbiguousSymbols);
}

TEST(Disambiguate, SequentialDefinitionIsVariable) {
  auto M = parseOk("y = 3;\nx = y + 1;\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "y"), SymKind::Variable);
  EXPECT_FALSE(Info->HasAmbiguousSymbols);
}

TEST(Disambiguate, DefinedInBothBranchesIsVariable) {
  auto M = parseOk("if c\nx = 1;\nelse\nx = 2;\nend\ny = x;\n");
  disambiguate(*M->mainFunction(), *M);
  // The read of x after the if sees a definition on all paths.
  bool FoundRead = false;
  visitStmts(M->mainFunction()->body(), [&](const Stmt *S) {
    if (const auto *A = dyn_cast<AssignStmt>(S)) {
      if (A->targets().front().Name == "y") {
        const auto *Id = cast<IdentExpr>(A->rhs());
        EXPECT_EQ(Id->symKind(), SymKind::Variable);
        FoundRead = true;
      }
    }
  });
  EXPECT_TRUE(FoundRead);
}

TEST(Disambiguate, DefinedInOneBranchIsAmbiguous) {
  auto M = parseOk("if c\nx = 1;\nend\ny = x;\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  EXPECT_TRUE(Info->HasAmbiguousSymbols);
}

TEST(Disambiguate, ClearKillsDefiniteness) {
  auto M = parseOk("x = 1;\nclear\ny = x;\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  // After clear, reading x is no longer definitely a variable.
  EXPECT_TRUE(Info->HasAmbiguousSymbols);
}

TEST(Disambiguate, LoopVariableIsVariableInBody) {
  auto M = parseOk("for k = 1:3\nx = k;\nend\n");
  disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(kindOf(*M->mainFunction(), "k"), SymKind::Variable);
}

TEST(Disambiguate, SlotsAssigned) {
  auto M = parseOk("function y = f(a, b)\nc = a + b;\ny = c;\n");
  auto Info = disambiguate(*M->mainFunction(), *M);
  EXPECT_EQ(M->mainFunction()->numSlots(), 4u); // a b y c
  EXPECT_GE(Info->Symbols.lookup("c"), 0);
  EXPECT_EQ(Info->Symbols.lookup("nonexistent"), -1);
}

} // namespace
