//===- tests/TestUtils.h - Shared test harness -----------------*- C++ -*-===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers to parse, disambiguate and interpret snippets inside tests,
/// before the full engine exists in a given test's dependency set.
///
//===----------------------------------------------------------------------===//

#ifndef MAJIC_TESTS_TESTUTILS_H
#define MAJIC_TESTS_TESTUTILS_H

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "interp/Interpreter.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

namespace majic {
namespace test {

/// A parsed + disambiguated module with an interpreter-backed resolver for
/// its subfunctions.
class TestProgram : public CallResolver {
public:
  explicit TestProgram(const std::string &Source,
                       const std::string &Name = "test") {
    Mod = parseModule(Name, Source, SM, Diags);
    if (!Mod) {
      ADD_FAILURE() << "parse failed:\n" << Diags.render(SM);
      return;
    }
    for (const auto &F : Mod->functions())
      Infos[F->name()] = disambiguate(*F, *Mod);
  }

  bool ok() const { return Mod != nullptr; }
  Module &module() { return *Mod; }
  Context &context() { return Ctx; }
  FunctionInfo *info(const std::string &Name) {
    auto It = Infos.find(Name);
    return It == Infos.end() ? nullptr : It->second.get();
  }

  /// Runs the module's main function with \p Args.
  std::vector<ValuePtr> run(std::vector<ValuePtr> Args = {},
                            size_t NumOuts = 0) {
    Interpreter Interp(Ctx, *this);
    Function *Main = Mod->mainFunction();
    if (Main->isScript()) {
      std::vector<ValuePtr> Workspace;
      Interp.runScript(*Main, Workspace);
      LastWorkspace = std::move(Workspace);
      return {};
    }
    return Interp.run(*Main, std::move(Args), NumOuts);
  }

  /// The value of script variable \p Name after run(), or null.
  ValuePtr scriptVar(const std::string &Name) {
    FunctionInfo *I = info(Mod->mainFunction()->name());
    if (!I)
      return nullptr;
    int Slot = I->Symbols.lookup(Name);
    if (Slot < 0 || static_cast<size_t>(Slot) >= LastWorkspace.size())
      return nullptr;
    return LastWorkspace[Slot];
  }

  // CallResolver: interpret subfunctions.
  std::vector<ValuePtr> callFunction(const std::string &Name,
                                     std::vector<ValuePtr> Args,
                                     size_t NumOuts, SourceLoc Loc) override {
    Function *F = Mod->findFunction(Name);
    if (!F)
      throw MatlabError("undefined function '" + Name + "'", Loc);
    Interpreter Interp(Ctx, *this);
    return Interp.run(*F, std::move(Args), NumOuts);
  }

  bool knowsFunction(const std::string &Name) override {
    return Mod->findFunction(Name) != nullptr;
  }

  SourceManager SM;
  Diagnostics Diags;

private:
  std::unique_ptr<Module> Mod;
  Context Ctx;
  std::map<std::string, std::unique_ptr<FunctionInfo>> Infos;
  std::vector<ValuePtr> LastWorkspace;
};

/// Runs \p Source as a script and returns the double value of variable
/// \p Var afterwards.
inline double scriptResult(const std::string &Source, const std::string &Var) {
  TestProgram P(Source);
  if (!P.ok())
    return std::numeric_limits<double>::quiet_NaN();
  P.run();
  ValuePtr V = P.scriptVar(Var);
  if (!V) {
    ADD_FAILURE() << "variable '" << Var << "' not set";
    return std::numeric_limits<double>::quiet_NaN();
  }
  return V->scalarValue();
}

/// Runs \p Source as a script and returns everything it printed.
inline std::string scriptOutput(const std::string &Source) {
  TestProgram P(Source);
  if (!P.ok())
    return "<parse error>";
  P.run();
  return P.context().output();
}

} // namespace test
} // namespace majic

#endif // MAJIC_TESTS_TESTUTILS_H
