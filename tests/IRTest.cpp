//===- tests/IRTest.cpp - IR, optimizer and register allocator ----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "backend/Optimize.h"
#include "backend/Platform.h"
#include "backend/RegAlloc.h"
#include "backend/VM.h"
#include "ir/Builder.h"
#include "ir/Operands.h"
#include "ir/Serialize.h"

#include <gtest/gtest.h>

using namespace majic;

namespace {

struct NoCalls : CallResolver {
  std::vector<ValuePtr> callFunction(const std::string &Name,
                                     std::vector<ValuePtr>, size_t,
                                     SourceLoc) override {
    throw MatlabError("unexpected call to '" + Name + "'");
  }
  bool knowsFunction(const std::string &) override { return false; }
};

/// Runs an IR function end to end on the VM.
std::vector<ValuePtr> execute(IRFunction &F, std::vector<ValuePtr> Args,
                              size_t NumOuts,
                              const RegAllocOptions &RA = {}) {
  allocateRegisters(F, PlatformModel::sparc(), RA);
  Context Ctx;
  NoCalls Resolver;
  VM Machine(Ctx, Resolver);
  return Machine.run(F, std::move(Args), NumOuts);
}

/// Builds: out0 = sum over k in [0, n) of (k * 2 + 1), with n from arg0.
/// Exercises constants, a counted loop, compares and boxing.
std::unique_ptr<IRFunction> buildLoopFunction() {
  auto F = std::make_unique<IRFunction>();
  F->Name = "loopsum";
  F->NumOuts = 1;
  F->NumParams = 1;
  IRBuilder B(*F);

  int32_t ArgP = B.newP();
  B.emitImmI(Opcode::LoadParam, 0, ArgP);
  int32_t N = B.newI();
  B.emit(Opcode::UnboxI, N, ArgP);
  int32_t Sum = B.iconst(0);
  int32_t K = B.iconst(0);
  int32_t Two = B.iconst(2);
  int32_t One = B.iconst(1);

  IRBuilder::Label Header = B.newLabel();
  IRBuilder::Label Exit = B.newLabel();
  B.bind(Header);
  int32_t Cond = B.newI();
  B.emitImmI(Opcode::ICmp, static_cast<int64_t>(CondCode::LT), Cond, K, N);
  B.brz(Cond, Exit);
  int32_t T1 = B.newI(), T2 = B.newI();
  B.emit(Opcode::IMul, T1, K, Two);
  B.emit(Opcode::IAdd, T2, T1, One);
  B.emit(Opcode::IAdd, Sum, Sum, T2);
  B.emit(Opcode::IAdd, K, K, One);
  B.br(Header);
  B.bind(Exit);

  int32_t Out = B.newP();
  B.emit(Opcode::BoxI, Out, Sum);
  B.emitImmI(Opcode::StoreOut, 0, Out);
  B.emit(Opcode::Ret);
  B.finish();
  return F;
}

//===----------------------------------------------------------------------===//
// Builder and printer
//===----------------------------------------------------------------------===//

TEST(IRBuilder, ForwardLabelPatching) {
  IRFunction F;
  IRBuilder B(F);
  IRBuilder::Label L = B.newLabel();
  B.br(L);          // forward branch, unpatched at emission
  B.emit(Opcode::Nop);
  B.bind(L);
  B.emit(Opcode::Ret);
  B.finish();
  EXPECT_EQ(F.Code[0].A, 2); // patched to the Ret
}

TEST(IRBuilder, BackwardBranchImmediate) {
  IRFunction F;
  IRBuilder B(F);
  IRBuilder::Label L = B.newLabel();
  B.bind(L);
  B.emit(Opcode::Nop);
  B.br(L);
  B.finish();
  EXPECT_EQ(F.Code[1].A, 0);
}

TEST(IRBuilder, NameAndStringInterning) {
  IRFunction F;
  EXPECT_EQ(F.internName("sqrt"), 0);
  EXPECT_EQ(F.internName("disp"), 1);
  EXPECT_EQ(F.internName("sqrt"), 0); // deduplicated
  EXPECT_EQ(F.internString("a"), 0);
  EXPECT_EQ(F.internString("a"), 1); // strings are not deduplicated
}

TEST(IRPrinter, RendersEveryEmittedOpcode) {
  auto F = buildLoopFunction();
  std::string Text = F->print();
  EXPECT_NE(Text.find("loadparam"), std::string::npos);
  EXPECT_NE(Text.find("unboxi"), std::string::npos);
  EXPECT_NE(Text.find("icmp"), std::string::npos);
  EXPECT_NE(Text.find("brz"), std::string::npos);
  EXPECT_NE(Text.find("ret"), std::string::npos);
}

TEST(IROperands, MetadataCoversAllOpcodes) {
  // Every opcode must map to operand metadata without tripping asserts, and
  // pool-carrying ops must report consistent ranges.
  for (int OpInt = 0; OpInt <= static_cast<int>(Opcode::PSpSt); ++OpInt) {
    auto Op = static_cast<Opcode>(OpInt);
    (void)instrOperands(Op);
    (void)opcodeName(Op);
    (void)isPureInstr(Op);
    (void)isHoistableInstr(Op);
  }
  Instr Call = Instr::make(Opcode::CallB, 4, 2, 10, 3);
  PoolRanges PR = poolRanges(Call);
  EXPECT_EQ(PR.DefOff, 4);
  EXPECT_EQ(PR.DefCount, 2);
  EXPECT_EQ(PR.UseOff, 10);
  EXPECT_EQ(PR.UseCount, 3);
  Instr Idx = Instr::make(Opcode::LoadIdxG, 0, 1, 7, 2);
  PR = poolRanges(Idx);
  EXPECT_EQ(PR.UseOff, 7);
  EXPECT_EQ(PR.UseCount, 2);
  EXPECT_EQ(PR.DefCount, 0);
}

//===----------------------------------------------------------------------===//
// VM execution of hand-built IR
//===----------------------------------------------------------------------===//

TEST(VMExec, CountedLoop) {
  auto F = buildLoopFunction();
  auto R = execute(*F, {makeValue(Value::intScalar(10))}, 1);
  // sum_{k=0}^{9} (2k + 1) = 100.
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 100);
}

TEST(VMExec, SpillEverythingSameResult) {
  auto F = buildLoopFunction();
  RegAllocOptions RA;
  RA.SpillEverything = true;
  auto R = execute(*F, {makeValue(Value::intScalar(10))}, 1, RA);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 100);
  EXPECT_TRUE(F->Allocated);
  EXPECT_GT(F->NumISpill, 0u);
}

TEST(VMExec, MissingOutputThrows) {
  IRFunction F;
  IRBuilder B(F);
  F.NumOuts = 1;
  B.emit(Opcode::Ret);
  B.finish();
  EXPECT_THROW(execute(F, {}, 1), MatlabError);
}

TEST(VMExec, InstructionCounterAdvances) {
  auto F = buildLoopFunction();
  allocateRegisters(*F, PlatformModel::sparc(), {});
  Context Ctx;
  NoCalls Resolver;
  VM Machine(Ctx, Resolver);
  Machine.run(*F, {makeValue(Value::intScalar(100))}, 1);
  uint64_t After100 = Machine.instructionsExecuted();
  Machine.run(*F, {makeValue(Value::intScalar(200))}, 1);
  uint64_t After200 = Machine.instructionsExecuted() - After100;
  EXPECT_GT(After200, After100); // twice the loop work
}

//===----------------------------------------------------------------------===//
// Register allocation
//===----------------------------------------------------------------------===//

TEST(RegAlloc, FitsSmallFunctionsWithoutSpills) {
  auto F = buildLoopFunction();
  RegAllocStats Stats = allocateRegisters(*F, PlatformModel::sparc(), {});
  EXPECT_EQ(Stats.NumISpilled, 0u);
  EXPECT_EQ(Stats.NumSpillInstrs, 0u);
  EXPECT_EQ(F->NumI, PlatformModel::sparc().NumIRegs);
}

TEST(RegAlloc, SpillsWhenPressureExceedsFile) {
  // 40 simultaneously live I registers against a 16-register file.
  IRFunction F;
  IRBuilder B(F);
  F.NumOuts = 1;
  std::vector<int32_t> Regs;
  for (int K = 0; K != 40; ++K)
    Regs.push_back(B.iconst(K));
  int32_t Sum = B.iconst(0);
  for (int K = 0; K != 40; ++K)
    B.emit(Opcode::IAdd, Sum, Sum, Regs[K]);
  int32_t Out = B.newP();
  B.emit(Opcode::BoxI, Out, Sum);
  B.emitImmI(Opcode::StoreOut, 0, Out);
  B.emit(Opcode::Ret);
  B.finish();

  RegAllocStats Stats = allocateRegisters(F, PlatformModel::sparc(), {});
  EXPECT_GT(Stats.NumISpilled, 0u);

  Context Ctx;
  NoCalls Resolver;
  VM Machine(Ctx, Resolver);
  auto R = Machine.run(F, {}, 1);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 40 * 39 / 2);
}

TEST(RegAlloc, LoopCarriedValueSurvivesSpilling) {
  // The loop counter and accumulator live across the back edge; even under
  // spill-everything the interval extension must keep them correct.
  auto F = buildLoopFunction();
  RegAllocOptions RA;
  RA.SpillEverything = true;
  auto R = execute(*F, {makeValue(Value::intScalar(33))}, 1, RA);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 33.0 * 33.0); // sum of first n odds
}

TEST(RegAlloc, SmallerFileSpillsMore) {
  auto F1 = buildLoopFunction();
  auto F2 = buildLoopFunction();
  RegAllocStats Sparc = allocateRegisters(*F1, PlatformModel::sparc(), {});
  PlatformModel Tiny = PlatformModel::sparc();
  Tiny.NumIRegs = 4; // 3 scratch + 1 usable
  RegAllocStats Small = allocateRegisters(*F2, Tiny, {});
  EXPECT_GT(Small.NumISpilled, Sparc.NumISpilled);
  // And the function still computes correctly.
  Context Ctx;
  NoCalls Resolver;
  VM Machine(Ctx, Resolver);
  auto R = Machine.run(*F2, {makeValue(Value::intScalar(10))}, 1);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 100);
}

//===----------------------------------------------------------------------===//
// Optimizer passes on hand-built IR
//===----------------------------------------------------------------------===//

TEST(Optimizer, ConstantFoldingCollapsesArithmetic) {
  IRFunction F;
  IRBuilder B(F);
  F.NumOuts = 1;
  int32_t A = B.fconst(6);
  int32_t C = B.fconst(7);
  int32_t M = B.newF();
  B.emit(Opcode::FMul, M, A, C);
  int32_t Out = B.newP();
  B.emit(Opcode::BoxF, Out, M);
  B.emitImmI(Opcode::StoreOut, 0, Out);
  B.emit(Opcode::Ret);
  B.finish();

  OptimizeStats Stats = optimize(F);
  EXPECT_GE(Stats.NumFolded, 1u);
  bool FoundFoldedConst = false;
  for (const Instr &In : F.Code)
    FoundFoldedConst |= In.Op == Opcode::FConst && In.Imm.F == 42.0;
  EXPECT_TRUE(FoundFoldedConst);
  EXPECT_DOUBLE_EQ(execute(F, {}, 1)[0]->scalarValue(), 42);
}

TEST(Optimizer, CSEEliminatesRecomputation) {
  IRFunction F;
  IRBuilder B(F);
  F.NumOuts = 1;
  int32_t PIn = B.newP();
  B.emitImmI(Opcode::LoadParam, 0, PIn);
  int32_t X = B.newF();
  B.emit(Opcode::UnboxF, X, PIn);
  // (x*x) + (x*x) computed twice.
  int32_t S1 = B.newF(), S2 = B.newF(), Sum = B.newF();
  B.emit(Opcode::FMul, S1, X, X);
  B.emit(Opcode::FMul, S2, X, X);
  B.emit(Opcode::FAdd, Sum, S1, S2);
  int32_t Out = B.newP();
  B.emit(Opcode::BoxF, Out, Sum);
  B.emitImmI(Opcode::StoreOut, 0, Out);
  B.emit(Opcode::Ret);
  B.finish();

  OptimizeStats Stats = optimize(F);
  EXPECT_GE(Stats.NumCSE, 1u);
  auto R = execute(F, {makeScalar(3)}, 1);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 18);
}

TEST(Optimizer, DCEDropsDeadPureCode) {
  IRFunction F;
  IRBuilder B(F);
  F.NumOuts = 1;
  B.fconst(1.0); // dead
  B.fconst(2.0); // dead
  int32_t Live = B.iconst(5);
  int32_t Out = B.newP();
  B.emit(Opcode::BoxI, Out, Live);
  B.emitImmI(Opcode::StoreOut, 0, Out);
  B.emit(Opcode::Ret);
  B.finish();
  size_t Before = F.Code.size();
  OptimizeStats Stats = optimize(F);
  EXPECT_GE(Stats.NumDead, 2u);
  EXPECT_LT(F.Code.size(), Before);
  EXPECT_DOUBLE_EQ(execute(F, {}, 1)[0]->scalarValue(), 5);
}

TEST(Optimizer, DCEKeepsEffects) {
  IRFunction F;
  IRBuilder B(F);
  F.NumOuts = 0;
  int32_t S = B.newP();
  B.emitImmI(Opcode::SConst, F.internString("hello"), S);
  Instr Disp = Instr::make(Opcode::Display, S);
  Disp.Imm.I = F.internName("x");
  B.emit(Disp); // impure: must survive even though nothing reads a result
  B.emit(Opcode::Ret);
  B.finish();
  optimize(F);
  bool HasDisplay = false;
  for (const Instr &In : F.Code)
    HasDisplay |= In.Op == Opcode::Display;
  EXPECT_TRUE(HasDisplay);
}

/// Builds a counted loop with a loop-invariant multiply inside, with proper
/// LoopMeta, as the code generator would.
std::unique_ptr<IRFunction> buildInvariantLoop() {
  auto F = std::make_unique<IRFunction>();
  IRBuilder B(*F);
  F->NumOuts = 1;
  F->NumParams = 1;
  int32_t PIn = B.newP();
  B.emitImmI(Opcode::LoadParam, 0, PIn);
  int32_t N = B.newI();
  B.emit(Opcode::UnboxI, N, PIn);
  int32_t Sum = B.fconst(0);
  int32_t K = B.iconst(0);
  int32_t One = B.iconst(1);

  IRBuilder::Label Header = B.newLabel();
  IRBuilder::Label Exit = B.newLabel();
  B.bind(Header);
  size_t HeaderIndex = F->Code.size();
  int32_t Cond = B.newI();
  B.emitImmI(Opcode::ICmp, static_cast<int64_t>(CondCode::LT), Cond, K, N);
  B.brz(Cond, Exit);
  size_t BodyBegin = F->Code.size();
  // Invariant: inv = 3 * 7 (constants inside the loop).
  int32_t C3 = B.fconst(3), C7 = B.fconst(7);
  int32_t Inv = B.newF();
  B.emit(Opcode::FMul, Inv, C3, C7);
  B.emit(Opcode::FAdd, Sum, Sum, Inv);
  size_t LatchIndex = F->Code.size();
  B.emit(Opcode::IAdd, K, K, One);
  B.br(Header);
  B.bind(Exit);
  size_t ExitIndex = F->Code.size();
  int32_t Out = B.newP();
  B.emit(Opcode::BoxF, Out, Sum);
  B.emitImmI(Opcode::StoreOut, 0, Out);
  B.emit(Opcode::Ret);
  B.finish();

  LoopMeta Meta;
  Meta.HeaderIndex = static_cast<uint32_t>(HeaderIndex);
  Meta.BodyBegin = static_cast<uint32_t>(BodyBegin);
  Meta.LatchIndex = static_cast<uint32_t>(LatchIndex);
  Meta.ExitIndex = static_cast<uint32_t>(ExitIndex);
  Meta.CounterReg = K;
  Meta.TripReg = N;
  F->Loops.push_back(Meta);
  return F;
}

TEST(Optimizer, LICMHoistsInvariants) {
  auto F = buildInvariantLoop();
  OptimizeOptions Opts;
  Opts.EnableUnroll = false;
  OptimizeStats Stats = optimize(*F, Opts);
  EXPECT_GE(Stats.NumHoisted + Stats.NumFolded, 1u);
  auto R = execute(*F, {makeValue(Value::intScalar(5))}, 1);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 105); // 5 * 21
}

TEST(Optimizer, UnrollPreservesSemanticsAcrossTripCounts) {
  // Odd, even and zero trip counts through the unrolled main + remainder
  // structure.
  for (int N : {0, 1, 2, 3, 7, 8, 100}) {
    auto F = buildInvariantLoop();
    OptimizeOptions Opts;
    Opts.UnrollFactor = 2;
    OptimizeStats Stats = optimize(*F, Opts);
    if (N == 0)
      EXPECT_GE(Stats.NumLoopsUnrolled, 1u);
    auto R = execute(*F, {makeValue(Value::intScalar(N))}, 1);
    EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 21.0 * N) << "trip count " << N;
  }
}

TEST(Optimizer, UnrollFactorFour) {
  for (int N : {0, 1, 3, 5, 9}) {
    auto F = buildInvariantLoop();
    OptimizeOptions Opts;
    Opts.UnrollFactor = 4;
    optimize(*F, Opts);
    auto R = execute(*F, {makeValue(Value::intScalar(N))}, 1);
    EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 21.0 * N) << "trip count " << N;
  }
}

TEST(Optimizer, PipelineIsIdempotentOnSecondRound) {
  auto F1 = buildInvariantLoop();
  OptimizeOptions One;
  One.Rounds = 1;
  optimize(*F1, One);
  auto R1 = execute(*F1, {makeValue(Value::intScalar(6))}, 1);

  auto F2 = buildInvariantLoop();
  OptimizeOptions Two;
  Two.Rounds = 2;
  optimize(*F2, Two);
  auto R2 = execute(*F2, {makeValue(Value::intScalar(6))}, 1);
  EXPECT_DOUBLE_EQ(R1[0]->scalarValue(), R2[0]->scalarValue());
}

//===----------------------------------------------------------------------===//
// Serialization: round trips and the structural validator
//===----------------------------------------------------------------------===//

IRFunction decodeBytes(const std::string &Bytes) {
  ser::ByteReader R(Bytes);
  return ser::readIRFunction(R);
}

std::string encodeFunction(const IRFunction &F) {
  ser::ByteWriter W;
  ser::writeIRFunction(W, F);
  return W.take();
}

/// The smallest function the validator accepts: one register of each class
/// and a lone Ret. Tests mutate it into each rejection case.
IRFunction tinyFunction() {
  IRFunction F;
  F.Name = "t";
  F.NumF = 1;
  F.NumI = 1;
  F.NumP = 1;
  F.Allocated = true;
  F.Code.push_back(Instr::make(Opcode::Ret));
  return F;
}

TEST(Serialize, RoundTripExecutesIdentically) {
  auto F = buildLoopFunction();
  allocateRegisters(*F, PlatformModel::sparc(), {});
  IRFunction G = decodeBytes(encodeFunction(*F));
  EXPECT_EQ(G.Name, F->Name);
  EXPECT_EQ(G.Code.size(), F->Code.size());

  Context Ctx;
  NoCalls Resolver;
  VM Machine(Ctx, Resolver);
  auto A = Machine.run(*F, {makeValue(Value::intScalar(5))}, 1);
  auto B = Machine.run(G, {makeValue(Value::intScalar(5))}, 1);
  EXPECT_DOUBLE_EQ(A[0]->scalarValue(), B[0]->scalarValue());
}

TEST(Serialize, DecoderRejectsBranchPastTheEnd) {
  // A branch target equal to the instruction count is one past the last
  // instruction: the VM would dispatch off the end of the code array.
  IRFunction F = tinyFunction();
  F.Code.insert(F.Code.begin(),
                Instr::make(Opcode::Br, static_cast<int32_t>(2)));
  EXPECT_THROW(decodeBytes(encodeFunction(F)), ser::SerializeError);
}

TEST(Serialize, DecoderRejectsEmptyAndUnterminatedCode) {
  {
    IRFunction F = tinyFunction();
    F.Code.clear();
    EXPECT_THROW(decodeBytes(encodeFunction(F)), ser::SerializeError);
  }
  {
    // Execution falls through a trailing Nop and off the array.
    IRFunction F = tinyFunction();
    F.Code.back() = Instr::make(Opcode::Nop);
    EXPECT_THROW(decodeBytes(encodeFunction(F)), ser::SerializeError);
  }
  {
    // A trailing conditional branch falls through when not taken.
    IRFunction F = tinyFunction();
    F.Code.back() = Instr::make(Opcode::Brz, 0, 0);
    EXPECT_THROW(decodeBytes(encodeFunction(F)), ser::SerializeError);
  }
}

TEST(Serialize, ValidatorRejectsOutOfRangeOperands) {
  auto Rejects = [](IRFunction F) {
    EXPECT_THROW(ser::validateIRFunction(F), ser::SerializeError);
  };

  { // F register past the file.
    IRFunction F = tinyFunction();
    F.Code.insert(F.Code.begin(), Instr::make(Opcode::MovF, 0, 1));
    Rejects(std::move(F));
  }
  { // Negative register.
    IRFunction F = tinyFunction();
    F.Code.insert(F.Code.begin(), Instr::make(Opcode::MovP, 0, -1));
    Rejects(std::move(F));
  }
  { // StoreOut beyond NumOuts (the VM indexes Outs unchecked).
    IRFunction F = tinyFunction();
    Instr In = Instr::make(Opcode::StoreOut, 0);
    In.Imm.I = 3;
    F.Code.insert(F.Code.begin(), In);
    Rejects(std::move(F));
  }
  { // Negative parameter index (the VM only checks the upper bound).
    IRFunction F = tinyFunction();
    Instr In = Instr::make(Opcode::LoadParam, 0);
    In.Imm.I = -1;
    F.Code.insert(F.Code.begin(), In);
    Rejects(std::move(F));
  }
  { // Call whose pool range reaches past the pool.
    IRFunction F = tinyFunction();
    F.Names.push_back("zeros");
    Instr In = Instr::make(Opcode::CallB, 0, 0, 0, 2);
    In.Imm.I = 0;
    F.Code.insert(F.Code.begin(), In);
    Rejects(std::move(F));
  }
  { // Call name index past the name table.
    IRFunction F = tinyFunction();
    Instr In = Instr::make(Opcode::CallB, 0, 0, 0, 0);
    In.Imm.I = 5;
    F.Code.insert(F.Code.begin(), In);
    Rejects(std::move(F));
  }
  { // Pool entry that names a P register outside the file.
    IRFunction F = tinyFunction();
    F.Pool.push_back(7);
    F.Code.insert(F.Code.begin(), Instr::make(Opcode::HorzCat, 0, 0, 1));
    Rejects(std::move(F));
  }
  { // Spill slot index beyond the spill frame.
    IRFunction F = tinyFunction();
    Instr In = Instr::make(Opcode::FSpLd, 0);
    In.Imm.I = 0; // NumFSpill == 0
    F.Code.insert(F.Code.begin(), In);
    Rejects(std::move(F));
  }
  { // String index past the string table.
    IRFunction F = tinyFunction();
    Instr In = Instr::make(Opcode::SConst, 0);
    In.Imm.I = 0; // Strings is empty
    F.Code.insert(F.Code.begin(), In);
    Rejects(std::move(F));
  }
  { // Condition code outside the enum.
    IRFunction F = tinyFunction();
    Instr In = Instr::make(Opcode::ICmp, 0, 0, 0);
    In.Imm.I = 99;
    F.Code.insert(F.Code.begin(), In);
    Rejects(std::move(F));
  }
}

TEST(Serialize, ValidatorAcceptsCompiledCode) {
  auto F = buildLoopFunction();
  allocateRegisters(*F, PlatformModel::sparc(), {});
  EXPECT_NO_THROW(ser::validateIRFunction(*F));
}

//===----------------------------------------------------------------------===//
// EwFuse: fused-program round trips and validator rejections
//===----------------------------------------------------------------------===//

/// Builds: out = sin((a .* b) - c) as a single fused elementwise program
/// over three boxed parameters.
std::unique_ptr<IRFunction> buildEwFuseFunction() {
  auto F = std::make_unique<IRFunction>();
  F->Name = "fused";
  F->NumOuts = 1;
  F->NumParams = 3;
  IRBuilder B(*F);
  int32_t A = B.newP(), Bv = B.newP(), C = B.newP();
  B.emitImmI(Opcode::LoadParam, 0, A);
  B.emitImmI(Opcode::LoadParam, 1, Bv);
  B.emitImmI(Opcode::LoadParam, 2, C);
  int32_t Dst = B.newP();
  int32_t Table = B.pool({A, Bv, C});
  int32_t Prog = B.pool({
      ew::encode(ew::EwOp::Push, 0),
      ew::encode(ew::EwOp::Push, 1),
      ew::encode(ew::EwOp::Bin, static_cast<int32_t>(rt::BinOp::ElemMul)),
      ew::encode(ew::EwOp::Push, 2),
      ew::encode(ew::EwOp::Bin, static_cast<int32_t>(rt::BinOp::Sub)),
      ew::encode(ew::EwOp::Intr, static_cast<int32_t>(ScalarIntrinsic::Sin)),
  });
  Instr In = Instr::make(Opcode::EwFuse, Dst, Table, 3, Prog);
  In.Imm.I = 6;
  B.emit(In);
  B.emitImmI(Opcode::StoreOut, 0, Dst);
  B.emit(Opcode::Ret);
  B.finish();
  return F;
}

TEST(Serialize, EwFuseRoundTripExecutesIdentically) {
  auto F = buildEwFuseFunction();
  allocateRegisters(*F, PlatformModel::sparc(), {});
  EXPECT_NO_THROW(ser::validateIRFunction(*F));
  IRFunction G = decodeBytes(encodeFunction(*F));

  Value A = Value::zeros(2, 2), Bv = Value::zeros(2, 2), C = Value::zeros(2, 2);
  const double AD[] = {0.5, -3.0, 7.25, 0.0};
  const double BD[] = {2.0, 0.125, -1.5, 4.0};
  const double CD[] = {1.0, -0.25, 0.75, -2.0};
  std::copy(AD, AD + 4, A.reData());
  std::copy(BD, BD + 4, Bv.reData());
  std::copy(CD, CD + 4, C.reData());

  Context Ctx;
  NoCalls Resolver;
  VM Machine(Ctx, Resolver);
  auto MakeArgs = [&] {
    return std::vector<ValuePtr>{makeValue(Value(A)), makeValue(Value(Bv)),
                                 makeValue(Value(C))};
  };
  auto R1 = Machine.run(*F, MakeArgs(), 1);
  auto R2 = Machine.run(G, MakeArgs(), 1);
  ASSERT_EQ(R1[0]->numel(), 4u);
  ASSERT_EQ(R2[0]->numel(), 4u);
  for (size_t K = 0; K != 4; ++K) {
    double Want = std::sin(AD[K] * BD[K] - CD[K]);
    EXPECT_DOUBLE_EQ(R1[0]->re(K), Want);
    EXPECT_DOUBLE_EQ(R2[0]->re(K), Want);
  }
}

TEST(Serialize, ValidatorRejectsCorruptEwFusePrograms) {
  // Every mutation corrupts one aspect of the fused program; the validator
  // must reject each before the VM would execute it.
  auto FindFuse = [](IRFunction &F) -> Instr & {
    for (Instr &In : F.Code)
      if (In.Op == Opcode::EwFuse)
        return In;
    throw std::logic_error("no EwFuse instruction");
  };
  auto Rejects = [&](void (*Mutate)(IRFunction &, Instr &)) {
    auto F = buildEwFuseFunction();
    allocateRegisters(*F, PlatformModel::sparc(), {});
    Mutate(*F, FindFuse(*F));
    EXPECT_THROW(ser::validateIRFunction(*F), ser::SerializeError);
  };

  // Program shorter than any useful fusion (one push is not a chain).
  Rejects([](IRFunction &, Instr &In) { In.Imm.I = 1; });
  // Program range reaching past the pool.
  Rejects([](IRFunction &F, Instr &In) {
    In.D = static_cast<int32_t>(F.Pool.size()) - 2;
  });
  // Push of an operand index beyond the operand table.
  Rejects([](IRFunction &F, Instr &In) {
    F.Pool[In.D] = ew::encode(ew::EwOp::Push, In.C);
  });
  // Operand-table entry naming a P register outside the file.
  Rejects([](IRFunction &F, Instr &In) { F.Pool[In.B] = 99; });
  // Binary op that is not elementwise-fusable (backslash solve).
  Rejects([](IRFunction &F, Instr &In) {
    F.Pool[In.D + 2] =
        ew::encode(ew::EwOp::Bin, static_cast<int32_t>(rt::BinOp::MatLDiv));
  });
  // Entry whose opcode byte is outside the EwOp enum.
  Rejects([](IRFunction &F, Instr &In) { F.Pool[In.D + 3] = 0x07; });
  // Stack underflow: a binary op as the first program entry.
  Rejects([](IRFunction &F, Instr &In) {
    F.Pool[In.D] =
        ew::encode(ew::EwOp::Bin, static_cast<int32_t>(rt::BinOp::Add));
  });
  // Unbalanced program: two pushes and nothing to combine them.
  Rejects([](IRFunction &F, Instr &In) {
    F.Pool[In.D + 2] = ew::encode(ew::EwOp::Push, 0);
    F.Pool[In.D + 4] = ew::encode(ew::EwOp::Push, 1);
    F.Pool[In.D + 5] = ew::encode(ew::EwOp::Push, 2);
  });
  // Stack overflow: deeper than the executor's fixed evaluation stack.
  Rejects([](IRFunction &F, Instr &In) {
    std::vector<int32_t> Deep(ew::kMaxEwStack + 1,
                              ew::encode(ew::EwOp::Push, 0));
    In.D = static_cast<int32_t>(F.Pool.size());
    In.Imm.I = static_cast<int64_t>(Deep.size());
    F.Pool.insert(F.Pool.end(), Deep.begin(), Deep.end());
  });
}

} // namespace
