//===- tests/RobustnessTest.cpp - Limits, interrupts, OOM, quarantine ------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The hardened execution pipeline: execution limits (op budget, memory
// ceiling) and cooperative interrupts surface as clean MATLAB errors with
// the engine intact; compiler crashes (injected) quarantine the function
// behind a transparent interpreter fallback; the repository's version cap
// holds under pressure; engine teardown is safe with compiles in flight.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "support/FaultInjection.h"
#include "support/Parallel.h"
#include "support/ResourceGuard.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace majic;
namespace fs = std::filesystem;

namespace {

class RobustnessTest : public ::testing::Test {
protected:
  void SetUp() override {
    faults::reset();
    exec::clearInterrupt();
  }
  void TearDown() override {
    faults::reset();
    exec::clearInterrupt();
    par::setComputeThreads(0);
  }
};

ValuePtr intArg(double X) { return makeValue(Value::intScalar(X)); }

//===----------------------------------------------------------------------===//
// Execution limits
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, OpBudgetStopsRunawayLoop) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  O.Limits.MaxOps = 5000;
  Engine E(O);

  std::string Out = E.runScript("t = 0;\n"
                                "while 1\n"
                                "t = t + 1;\n"
                                "end\n");
  EXPECT_NE(Out.find("??? operation budget exceeded"), std::string::npos)
      << Out;

  // The budget is per top-level invocation: a small request afterwards
  // runs on a fresh budget, and the workspace survived the abort.
  Out = E.runScript("x = t + 1;\n");
  EXPECT_EQ(Out.find("???"), std::string::npos) << Out;
  ASSERT_TRUE(E.workspaceVar("x"));
  EXPECT_GT(E.workspaceVar("x")->scalarValue(), 1.0);
}

TEST_F(RobustnessTest, OpBudgetStopsEmptyBodyLoops) {
  // Loops are charged per iteration, not per body statement: an empty body
  // executes zero statements, so `while 1, end` would otherwise spin forever.
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  O.Limits.MaxOps = 5000;
  Engine E(O);

  std::string Out = E.runScript("while 1\nend\n");
  EXPECT_NE(Out.find("??? operation budget exceeded"), std::string::npos)
      << Out;

  Out = E.runScript("for k = 1:100000000\nend\n");
  EXPECT_NE(Out.find("??? operation budget exceeded"), std::string::npos)
      << Out;
}

TEST_F(RobustnessTest, OpBudgetAppliesToCompiledCode) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.Limits.MaxOps = 2000;
  Engine E(O);
  ASSERT_TRUE(E.addSource("spin", "function out = spin(n)\n"
                                  "out = 0;\n"
                                  "for k = 1:n\n"
                                  "out = out + k;\n"
                                  "end\n"));
  EXPECT_THROW(E.callFunction("spin", {intArg(1e7)}, 1, SourceLoc()),
               MatlabError);
  // A cheap call fits the budget; the engine is fully usable.
  auto R = E.callFunction("spin", {intArg(10)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 55.0);
}

TEST_F(RobustnessTest, MemoryLimitIsRecoverable) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  O.Limits.MaxAllocBytes = 1 << 20; // 1 MiB: a 512x512 double is 2 MiB
  Engine E(O);

  std::string Out = E.runScript("a = zeros(512, 512);\n");
  EXPECT_NE(Out.find("??? out of memory allocating a 512x512 matrix"),
            std::string::npos)
      << Out;
  EXPECT_FALSE(E.workspaceVar("a"));

  // Small allocations still fit and the engine keeps working.
  Out = E.runScript("b = zeros(4, 4);\nb(2, 2) = 7;\n");
  EXPECT_EQ(Out.find("???"), std::string::npos) << Out;
  ASSERT_TRUE(E.workspaceVar("b"));
  EXPECT_EQ(E.workspaceVar("b")->numel(), 16u);
}

TEST_F(RobustnessTest, ElementLimitCountsAsBytes) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  O.Limits.MaxLiveElements = 1000; // 8 KB ceiling
  Engine E(O);
  std::string Out = E.runScript("a = zeros(100, 100);\n");
  EXPECT_NE(Out.find("out of memory"), std::string::npos) << Out;
  Out = E.runScript("a = zeros(10, 10);\n");
  EXPECT_EQ(Out.find("???"), std::string::npos) << Out;
}

TEST_F(RobustnessTest, EngineLiftsMemoryLimitOnDestruction) {
  ASSERT_EQ(mem::limitBytes(), 0u);
  {
    EngineOptions O;
    O.Limits.MaxAllocBytes = 1 << 20;
    Engine E(O);
    EXPECT_EQ(mem::limitBytes(), static_cast<uint64_t>(1 << 20));
  }
  EXPECT_EQ(mem::limitBytes(), 0u);
}

TEST_F(RobustnessTest, LiveByteAccountingBalances) {
  uint64_t Before = mem::liveBytes();
  {
    Value V = Value::zeros(100, 100);
    EXPECT_GE(mem::liveBytes(), Before + 100 * 100 * sizeof(double));
    EXPECT_GE(mem::peakBytes(), Before + 100 * 100 * sizeof(double));
  }
  EXPECT_EQ(mem::liveBytes(), Before);
}

//===----------------------------------------------------------------------===//
// Cooperative interrupt
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, PendingInterruptFailsFast) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x + 1;\n"));

  E.requestInterrupt();
  EXPECT_THROW(E.callFunction("f", {intArg(1)}, 1, SourceLoc()), MatlabError);
  E.clearInterrupt();
  auto R = E.callFunction("f", {intArg(1)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 2.0);
}

TEST_F(RobustnessTest, InterruptStopsRunningScript) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  Engine E(O);

  // Deterministic mid-run interruption without timers: the script prints
  // once early in its loop, and the output sink pulls the brake. The
  // interpreter polls between statements, so the loop stops right there.
  std::string Seen;
  E.context().setSink([&](const std::string &S) {
    Seen += S;
    E.requestInterrupt();
  });
  E.runScript("t = 0;\n"
              "for k = 1:100000\n"
              "t = t + 1;\n"
              "if k == 3\n"
              "disp(t);\n"
              "end\n"
              "end\n");
  E.context().setSink(nullptr);
  EXPECT_NE(Seen.find("execution interrupted"), std::string::npos) << Seen;

  // The partial workspace was preserved and the engine keeps running.
  E.clearInterrupt();
  ASSERT_TRUE(E.workspaceVar("t"));
  EXPECT_LT(E.workspaceVar("t")->scalarValue(), 100000.0);
  std::string Out = E.runScript("u = t + 1;\n");
  EXPECT_EQ(Out.find("???"), std::string::npos) << Out;
}

TEST_F(RobustnessTest, InterruptUnwindsParallelKernels) {
  par::setComputeThreads(4);
  exec::requestInterrupt();
  EXPECT_THROW(par::parallelFor(1 << 16, 1, [](size_t, size_t) {}),
               MatlabError);
  exec::clearInterrupt();
}

//===----------------------------------------------------------------------===//
// Injected out-of-memory
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, InjectedAllocationFaultIsRecoverable) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource("g", "function y = g(n)\n"
                               "y = zeros(n, n);\n"
                               "y(1, 1) = 3;\n"));

  faults::armEvery(faults::Site::ValueAlloc, 1);
  EXPECT_THROW(E.callFunction("g", {intArg(8)}, 1, SourceLoc()), MatlabError);
  EXPECT_GE(faults::stats(faults::Site::ValueAlloc).Fired, 1u);

  faults::reset();
  auto R = E.callFunction("g", {intArg(8)}, 1, SourceLoc());
  EXPECT_EQ(R[0]->numel(), 64u);
  EXPECT_DOUBLE_EQ(R[0]->at(0, 0), 3.0);
}

//===----------------------------------------------------------------------===//
// Compile-failure quarantine
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, ForegroundCompileFaultQuarantinesAndFallsBack) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x * 2;\n"));

  faults::armAt(faults::Site::CodeGen, 1);
  // The injected compiler crash is invisible to the caller: the call
  // falls back to the interpreter and returns the right answer.
  auto R = E.callFunction("f", {intArg(21)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 42.0);
  EXPECT_EQ(E.speculationStats().Failed, 1u);
  EXPECT_TRUE(E.isQuarantined("f"));
  EXPECT_EQ(E.jitCompiles(), 0u);
  EXPECT_EQ(E.repository().versionCount("f"), 0u);

  // Quarantined: the compiler is not retried (the site sees no new hits),
  // but calls keep working through the interpreter.
  R = E.callFunction("f", {intArg(5)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 10.0);
  EXPECT_EQ(faults::stats(faults::Site::CodeGen).Hits, 1u);
  EXPECT_EQ(E.speculationStats().Failed, 1u);

  // A source change lifts the quarantine; the next call compiles.
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x * 2;\n"));
  EXPECT_FALSE(E.isQuarantined("f"));
  R = E.callFunction("f", {intArg(7)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 14.0);
  EXPECT_EQ(E.jitCompiles(), 1u);
  EXPECT_EQ(faults::stats(faults::Site::CodeGen).Hits, 2u);
}

TEST_F(RobustnessTest, BackgroundCompileFaultQuarantines) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x + 1;\n"));

  faults::armAt(faults::Site::CodeGen, 1);
  ASSERT_TRUE(E.speculateAsync("f"));
  E.drainCompiles();
  SpeculationStats S = E.speculationStats();
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_TRUE(E.isQuarantined("f"));
  EXPECT_EQ(E.repository().versionCount("f"), 0u);

  // Quarantined functions are not re-queued...
  EXPECT_FALSE(E.speculateAsync("f"));
  // ...but still run (interpreted).
  auto R = E.callFunction("f", {intArg(4)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 5.0);

  // Reload, recompile, and the object is published this time.
  faults::reset();
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x + 1;\n"));
  ASSERT_TRUE(E.speculateAsync("f"));
  E.drainCompiles();
  EXPECT_EQ(E.speculationStats().Completed, 1u);
  EXPECT_EQ(E.repository().versionCount("f"), 1u);
}

//===----------------------------------------------------------------------===//
// Repository version cap
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, VersionCapEvictsLeastUsed) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.MaxVersionsPerFunction = 4;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x * 2;\n"));

  auto ShapeArg = [](size_t Cols) {
    return makeValue(Value::zeros(1, Cols));
  };

  // Four distinct exact-shape versions fill the cap.
  for (size_t C = 1; C <= 4; ++C)
    ASSERT_TRUE(E.precompileWithArgs("f", {ShapeArg(C)}));
  EXPECT_EQ(E.repository().versionCount("f"), 4u);
  EXPECT_EQ(E.repository().evictions(), 0u);

  // Make the 1x2 version hot.
  for (int I = 0; I != 50; ++I)
    E.callFunction("f", {ShapeArg(2)}, 1, SourceLoc());

  // Eight more versions force evictions; the hot version survives.
  for (size_t C = 5; C <= 12; ++C)
    ASSERT_TRUE(E.precompileWithArgs("f", {ShapeArg(C)}));
  EXPECT_EQ(E.repository().versionCount("f"), 4u);
  EXPECT_EQ(E.repository().evictions(), 8u);
  TypeSignature HotSig = TypeSignature::ofValues({ShapeArg(2)});
  bool HotSurvived = false;
  for (const CompiledObjectPtr &V : E.repository().versions("f"))
    if (V->Sig == HotSig)
      HotSurvived = true;
  EXPECT_TRUE(HotSurvived);
}

TEST_F(RobustnessTest, VersionCapHoldsOverLongSession) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.MaxVersionsPerFunction = 4;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x * 2;\n"));

  for (int I = 0; I != 1000; ++I) {
    size_t Cols = 1 + static_cast<size_t>(I % 20);
    if (I % 7 == 0)
      E.precompileWithArgs("f", {makeValue(Value::zeros(2, Cols))});
    auto R = E.callFunction("f", {makeValue(Value::zeros(1, Cols))}, 1,
                            SourceLoc());
    ASSERT_EQ(R[0]->numel(), Cols);
    ASSERT_LE(E.repository().versionCount("f"), 4u);
  }
  EXPECT_GT(E.repository().evictions(), 0u);
}

//===----------------------------------------------------------------------===//
// Shutdown with compiles in flight
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, TeardownWithCompilesInFlightIsSafe) {
  for (int Iter = 0; Iter != 20; ++Iter) {
    EngineOptions O;
    O.Policy = CompilePolicy::Speculative;
    O.BackgroundCompileThreads = 2;
    Engine E(O);
    if (Iter % 3 == 0)
      E.pauseBackgroundCompiles(); // the destructor must un-pause
    for (int F = 0; F != 3; ++F) {
      std::string Name = "fn" + std::to_string(F);
      ASSERT_TRUE(E.addSource(Name, "function y = " + Name + "(x)\n"
                                    "y = x;\n"
                                    "for k = 1:8\n"
                                    "y = y + k;\n"
                                    "end\n"));
      E.speculateAsync(Name);
    }
    // Engine destroyed with work queued or running: must join cleanly.
  }
  SUCCEED();
}

//===----------------------------------------------------------------------===//
// Snoop-batch ordering
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, SnoopSpeculatesMostRecentSourceFirst) {
  fs::path Dir = fs::temp_directory_path() / "majic_snoop_order_test";
  fs::remove_all(Dir);
  fs::create_directories(Dir);

  auto WriteFn = [&](const std::string &Name,
                     std::chrono::minutes Age) {
    fs::path P = Dir / (Name + ".m");
    std::ofstream(P.string()) << "function y = " << Name << "(x)\ny = x;\n";
    fs::last_write_time(P, fs::file_time_type::clock::now() - Age);
  };
  WriteFn("aa", std::chrono::minutes(30)); // oldest
  WriteFn("bb", std::chrono::minutes(1));  // freshest edit
  WriteFn("cc", std::chrono::minutes(10));

  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  E.pauseBackgroundCompiles(); // freeze the queue for inspection
  E.watchDirectory(Dir.string());
  EXPECT_EQ(E.snoop(), 3u);

  // Most recently edited first: bb, then cc, then aa.
  std::vector<std::string> Queued = E.queuedSpeculations();
  ASSERT_EQ(Queued.size(), 3u);
  EXPECT_EQ(Queued[0], "bb");
  EXPECT_EQ(Queued[1], "cc");
  EXPECT_EQ(Queued[2], "aa");

  E.resumeBackgroundCompiles();
  E.drainCompiles();
  EXPECT_EQ(E.speculationStats().Completed, 3u);
  fs::remove_all(Dir);
}

//===----------------------------------------------------------------------===//
// Fault-spec grammar: malformed MAJIC_FAULTS specs are rejected loudly
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, MalformedFaultSpecsAreDiagnosed) {
  // Each malformed spec must fail with a diagnostic naming the problem -
  // a typo'd schedule silently doing nothing would defeat the harness.
  struct Case {
    const char *Spec;
    const char *ErrorContains;
  };
  const Case Cases[] = {
      {"codegen", "has no '='"},
      {"=at:1", "unknown fault site"},
      {"warpcore=at:1", "unknown fault site"},
      {"codegen=", "unknown fault action"},
      {"codegen=explode:3", "unknown fault action"},
      {"codegen=at", "malformed count"},
      {"codegen=at:", "malformed count"},
      {"codegen=at:x", "malformed count"},
      {"codegen=at:3x", "malformed count"},
      {"codegen=at:0", "needs a positive count"},
      {"codegen=every:0", "needs a positive count"},
      {"codegen=rand", "malformed probability"},
      {"codegen=rand:oops:7", "malformed probability"},
      {"codegen=rand:0.5:zz", "malformed seed"},
      {"codegen=rand:0:7", "needs probability in (0,1]"},
      {"codegen=rand:1.5:7", "needs probability in (0,1]"},
      // One bad entry poisons the whole spec, wherever it sits.
      {"parse=at:1,codegen=at:x", "malformed count"},
  };
  for (const Case &C : Cases) {
    std::string Error;
    EXPECT_FALSE(faults::loadSpec(C.Spec, &Error)) << C.Spec;
    EXPECT_NE(Error.find(C.ErrorContains), std::string::npos)
        << "spec '" << C.Spec << "' produced: " << Error;
  }
}

TEST_F(RobustnessTest, RejectedSpecLeavesPriorScheduleIntact) {
  // A schedule is armed...
  ASSERT_TRUE(faults::loadSpec("codegen=at:5"));
  EXPECT_TRUE(faults::anyArmed());
  // ...and a later malformed spec is rejected *before* the replace: the
  // working schedule keeps running rather than being half-torn-down.
  std::string Error;
  EXPECT_FALSE(faults::loadSpec("codegen=at:x", &Error));
  EXPECT_TRUE(faults::anyArmed());
  for (int I = 0; I != 4; ++I)
    EXPECT_FALSE(faults::shouldFire(faults::Site::CodeGen));
  EXPECT_TRUE(faults::shouldFire(faults::Site::CodeGen)); // the 5th hit
}

TEST_F(RobustnessTest, ValidSpecsParseAndArm) {
  ASSERT_TRUE(faults::loadSpec(
      "parse=at:2;infer=every:3,repo-save=rand:0.5:9;;repo-load=at:1"));
  EXPECT_TRUE(faults::anyArmed());
  // at:1 fires immediately; every:3 fires on the third hit.
  EXPECT_TRUE(faults::shouldFire(faults::Site::RepoLoad));
  EXPECT_FALSE(faults::shouldFire(faults::Site::Infer));
  EXPECT_FALSE(faults::shouldFire(faults::Site::Infer));
  EXPECT_TRUE(faults::shouldFire(faults::Site::Infer));
  // The empty spec is valid and disarms everything.
  ASSERT_TRUE(faults::loadSpec(""));
  EXPECT_FALSE(faults::anyArmed());
}

//===----------------------------------------------------------------------===//
// Thread-pool fault containment
//===----------------------------------------------------------------------===//

TEST_F(RobustnessTest, ParallelForSurvivesEnqueueFaults) {
  par::setComputeThreads(4);
  faults::armEvery(faults::Site::PoolEnqueue, 1);
  std::vector<double> Out(1000, 0.0);
  // Every pool handoff is refused; the chunks run inline on the caller and
  // the result is still complete and correct.
  par::parallelFor(Out.size(), 1, [&](size_t B, size_t E2) {
    for (size_t I = B; I != E2; ++I)
      Out[I] = static_cast<double>(I) * 2;
  });
  for (size_t I = 0; I != Out.size(); ++I)
    ASSERT_DOUBLE_EQ(Out[I], static_cast<double>(I) * 2);
}

TEST_F(RobustnessTest, PoolCountsUncaughtTaskExceptions) {
  ThreadPool P(1);
  P.enqueue([] { throw std::runtime_error("boom"); });
  P.waitIdle();
  EXPECT_EQ(P.uncaughtTaskExceptions(), 1u);
}

TEST_F(RobustnessTest, EnqueueFaultOnSpeculationIsCounted) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x;\n"));

  faults::armEvery(faults::Site::PoolEnqueue, 1);
  EXPECT_FALSE(E.speculateAsync("f"));
  SpeculationStats S = E.speculationStats();
  EXPECT_EQ(S.Failed, 1u);
  EXPECT_EQ(S.Queued, 0u);
  EXPECT_FALSE(E.speculationInFlight("f"));

  // The refused request left no bookkeeping: drain returns immediately and
  // a later attempt (faults off) succeeds.
  E.drainCompiles();
  faults::reset();
  ASSERT_TRUE(E.speculateAsync("f"));
  E.drainCompiles();
  EXPECT_EQ(E.speculationStats().Completed, 1u);
}

} // namespace
