//===- tests/ServiceTest.cpp - Multi-session service tests -----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-session service contracts:
///
///  * Sharing: the second session hitting a (function, signature) another
///    session already compiled is served from the shared cache - a repo
///    hit, zero new compiles.
///
///  * Isolation: a session that trips its budget, quarantines a function,
///    is interrupted, or absorbs injected faults leaves every other
///    session's output bit-identical to a solo run.
///
///  * Admission: past the queue and session caps, requests and sessions
///    are rejected deterministically with explicit statuses; every
///    accepted request resolves.
///
///  * Degradation: overload sheds speculation first (shared compile pool
///    paused), recovers when the backlog drains, and service teardown
///    with queued work never loses an accepted request silently.
///
//===----------------------------------------------------------------------===//

#include "repo/SharedCache.h"
#include "service/SessionManager.h"
#include "service/SnapshotStore.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

using namespace majic;

namespace {

/// A function file submitted interactively (runScript registers it).
const char *kFibSrc = "function r = fib(n)\n"
                      "if n < 2\n r = n;\n else\n r = fib(n-1) + fib(n-2);\n"
                      "end\n";
const char *kCallFib = "x = fib(12)";

/// Deterministic numeric program used for bit-identity checks.
const char *kWorkSrc = "function r = work(n)\n"
                       "A = zeros(n, n);\n"
                       "for i = 1:n\n for j = 1:n\n"
                       "A(i, j) = sin(i * 0.37) + cos(j * 0.53);\n"
                       "end\n end\n"
                       "r = 0;\n"
                       "for i = 1:n\n for j = 1:n\n r = r + A(i, j) * A(j, i);\n"
                       "end\n end\n";
const char *kCallWork = "y = work(9)";

ServiceOptions baseOptions() {
  ServiceOptions O;
  O.Session.Policy = CompilePolicy::Jit;
  O.Workers = 2;
  O.SpecThreads = 1;
  return O;
}

Reply run(SessionManager &M, SessionId Id, const std::string &Text) {
  return M.submit(Id, Text).get();
}

/// The reference output of \p Call after \p Def, from a fresh solo session.
std::string soloOutput(const char *Def, const char *Call) {
  SessionManager M(baseOptions());
  SessionId Id = M.createSession();
  EXPECT_NE(Id, 0u);
  EXPECT_EQ(run(M, Id, Def).St, Reply::Status::Ok);
  Reply R = run(M, Id, Call);
  EXPECT_EQ(R.St, Reply::Status::Ok);
  return R.Output;
}

class ServiceTest : public ::testing::Test {
protected:
  void SetUp() override { faults::reset(); }
  void TearDown() override { faults::reset(); }
};

//===----------------------------------------------------------------------===//
// Sharing
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, SecondSessionIsServedFromSharedCache) {
  SessionManager M(baseOptions());
  SessionId A = M.createSession();
  ASSERT_NE(A, 0u);
  ASSERT_EQ(run(M, A, kFibSrc).St, Reply::Status::Ok);
  Reply RA = run(M, A, kCallFib);
  ASSERT_EQ(RA.St, Reply::Status::Ok);

  uint64_t Published = M.sharedCache().published();
  EXPECT_GE(Published, 1u); // session A's compile went into the cache
  uint64_t HitsBefore = M.sharedCache().hits();

  // Same source text, same call, different session: the compile must be
  // served from the cache - published stays put, hits move.
  SessionId B = M.createSession();
  ASSERT_NE(B, 0u);
  ASSERT_EQ(run(M, B, kFibSrc).St, Reply::Status::Ok);
  Reply RB = run(M, B, kCallFib);
  ASSERT_EQ(RB.St, Reply::Status::Ok);
  EXPECT_EQ(RB.Output, RA.Output);

  EXPECT_EQ(M.sharedCache().published(), Published)
      << "second session compiled fresh instead of reusing";
  EXPECT_GT(M.sharedCache().hits(), HitsBefore);
}

TEST_F(ServiceTest, DifferentSourceTextNeverShares) {
  SessionManager M(baseOptions());
  SessionId A = M.createSession(), B = M.createSession();
  ASSERT_EQ(run(M, A, "function r = f(n)\nr = n + 1;\n").St,
            Reply::Status::Ok);
  ASSERT_EQ(run(M, B, "function r = f(n)\nr = n + 2;\n").St,
            Reply::Status::Ok);
  Reply RA = run(M, A, "x = f(1)");
  Reply RB = run(M, B, "x = f(1)");
  ASSERT_EQ(RA.St, Reply::Status::Ok);
  ASSERT_EQ(RB.St, Reply::Status::Ok);
  // The source hash is in the cache key: B must not see A's f.
  EXPECT_NE(RA.Output, RB.Output);
  EXPECT_NE(RA.Output.find("2"), std::string::npos);
  EXPECT_NE(RB.Output.find("3"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Isolation
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, BudgetTrippedSessionLeavesOthersBitIdentical) {
  std::string Ref = soloOutput(kWorkSrc, kCallWork);

  ServiceOptions O = baseOptions();
  O.SessionLimits.MaxOps = 2000000; // plenty for work(9), not for the hog
  SessionManager M(O);
  SessionId Hog = M.createSession(), Victim = M.createSession();
  ASSERT_NE(Hog, 0u);
  ASSERT_NE(Victim, 0u);

  // The hog burns through its op budget; the error is its own.
  Reply RH = run(M, Hog, "s = 0;\nfor i = 1:10000000\n s = s + i;\nend\n");
  EXPECT_EQ(RH.St, Reply::Status::Error);
  EXPECT_NE(RH.Output.find("operation budget exceeded"), std::string::npos);

  ASSERT_EQ(run(M, Victim, kWorkSrc).St, Reply::Status::Ok);
  Reply RV = run(M, Victim, kCallWork);
  ASSERT_EQ(RV.St, Reply::Status::Ok);
  EXPECT_EQ(RV.Output, Ref);

  // The hog's session survives its own breach.
  Reply RH2 = run(M, Hog, "z = 41 + 1");
  EXPECT_EQ(RH2.St, Reply::Status::Ok);
  EXPECT_NE(RH2.Output.find("42"), std::string::npos);
}

TEST_F(ServiceTest, MemoryBreachIsContainedToItsSession) {
  std::string Ref = soloOutput(kWorkSrc, kCallWork);

  ServiceOptions O = baseOptions();
  O.SessionLimits.MaxAllocBytes = 8u << 20;
  SessionManager M(O);
  SessionId Hog = M.createSession(), Victim = M.createSession();

  Reply RH = run(M, Hog, "A = zeros(4000, 4000);");
  EXPECT_EQ(RH.St, Reply::Status::Error);
  EXPECT_NE(RH.Output.find("???"), std::string::npos);

  ASSERT_EQ(run(M, Victim, kWorkSrc).St, Reply::Status::Ok);
  Reply RV = run(M, Victim, kCallWork);
  ASSERT_EQ(RV.St, Reply::Status::Ok);
  EXPECT_EQ(RV.Output, Ref);
}

TEST_F(ServiceTest, InterruptKillsOnlyTheTargetedRequest) {
  std::string Ref = soloOutput(kWorkSrc, kCallWork);

  ServiceOptions O = baseOptions();
  O.Workers = 2;
  SessionManager M(O);
  SessionId Spinner = M.createSession(), Victim = M.createSession();

  std::future<Reply> Spin = M.submit(Spinner, "while 1\n x = 1;\nend\n");
  ASSERT_TRUE(M.interrupt(Spinner));
  Reply RS = Spin.get();
  EXPECT_EQ(RS.St, Reply::Status::Error);
  EXPECT_NE(RS.Output.find("interrupted"), std::string::npos);

  ASSERT_EQ(run(M, Victim, kWorkSrc).St, Reply::Status::Ok);
  Reply RV = run(M, Victim, kCallWork);
  ASSERT_EQ(RV.St, Reply::Status::Ok);
  EXPECT_EQ(RV.Output, Ref);

  // The interrupted session takes its next request cleanly.
  Reply RS2 = run(M, Spinner, "z = 1 + 1");
  EXPECT_EQ(RS2.St, Reply::Status::Ok);
}

TEST_F(ServiceTest, QuarantinedCompileIsContainedToItsSession) {
  std::string Ref = soloOutput(kWorkSrc, kCallWork);

  SessionManager M(baseOptions());
  SessionId Faulty = M.createSession(), Victim = M.createSession();

  // The first codegen in the process faults: that is Faulty's compile.
  // Its engine falls back to the interpreter (and quarantines the
  // function); the result is still correct, and Victim - whose compile
  // comes later, after the one-shot fault is spent - is untouched.
  ASSERT_EQ(run(M, Faulty, kFibSrc).St, Reply::Status::Ok);
  faults::armAt(faults::Site::CodeGen, 1);
  Reply RF = run(M, Faulty, kCallFib);
  faults::disarm(faults::Site::CodeGen);
  ASSERT_EQ(RF.St, Reply::Status::Ok);
  EXPECT_NE(RF.Output.find("144"), std::string::npos);

  ASSERT_EQ(run(M, Victim, kWorkSrc).St, Reply::Status::Ok);
  Reply RV = run(M, Victim, kCallWork);
  ASSERT_EQ(RV.St, Reply::Status::Ok);
  EXPECT_EQ(RV.Output, Ref);
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, SessionCapRejectsDeterministically) {
  ServiceOptions O = baseOptions();
  O.MaxSessions = 2;
  SessionManager M(O);
  SessionId A = M.createSession(), B = M.createSession();
  EXPECT_NE(A, 0u);
  EXPECT_NE(B, 0u);
  EXPECT_EQ(M.createSession(), 0u) << "third session must be rejected";
  EXPECT_EQ(M.liveSessions(), 2u);

  // Destroying one frees the slot.
  EXPECT_TRUE(M.destroySession(A));
  SessionId C = M.createSession();
  EXPECT_NE(C, 0u);

  // The destroyed session is gone for submits.
  EXPECT_EQ(run(M, A, "x = 1").St, Reply::Status::SessionGone);
}

TEST_F(ServiceTest, QueueCapsRejectExactlyPastTheLimit) {
  ServiceOptions O = baseOptions();
  O.MaxQueuedRequests = 4;
  O.MaxQueuedPerSession = 3;
  O.ShedQueuedRequests = 100; // out of the way for this test
  SessionManager M(O);
  M.setWorkersPaused(true); // stage the backlog deterministically

  SessionId A = M.createSession(), B = M.createSession();
  std::vector<std::future<Reply>> Accepted;

  // Session A hits its per-session wall at 3: its own backlog, so the
  // machine-readable reason says "drain your futures", not "back off".
  for (int I = 0; I != 3; ++I)
    Accepted.push_back(M.submit(A, "x = 1"));
  Reply RejA = M.submit(A, "x = 1").get();
  EXPECT_EQ(RejA.St, Reply::Status::RejectedOverloaded);
  EXPECT_EQ(RejA.Why, Reply::Reason::BudgetExceeded);
  EXPECT_STREQ(rejectReasonName(RejA.Why), "budget-exceeded");

  // Session B then hits the service-wide wall at 4 total: shared
  // pressure, the retryable kind.
  Accepted.push_back(M.submit(B, "x = 1"));
  Reply RejB = M.submit(B, "x = 1").get();
  EXPECT_EQ(RejB.St, Reply::Status::RejectedOverloaded);
  EXPECT_EQ(RejB.Why, Reply::Reason::QueueFull);
  EXPECT_STREQ(rejectReasonName(RejB.Why), "queue-full");
  EXPECT_EQ(M.queuedRequests(), 4u);

  // Every accepted request resolves once the workers resume.
  M.setWorkersPaused(false);
  for (auto &F : Accepted)
    EXPECT_EQ(F.get().St, Reply::Status::Ok);
  EXPECT_EQ(M.queuedRequests(), 0u);
}

TEST_F(ServiceTest, ShutdownResolvesEveryAcceptedRequest) {
  ServiceOptions O = baseOptions();
  SessionManager M(O);
  M.setWorkersPaused(true);
  SessionId A = M.createSession();
  std::vector<std::future<Reply>> Fs;
  for (int I = 0; I != 5; ++I)
    Fs.push_back(M.submit(A, "x = 1"));
  M.shutdown(); // workers never ran: the requests must still resolve
  for (auto &F : Fs) {
    Reply R = F.get();
    EXPECT_EQ(R.St, Reply::Status::ShuttingDown);
  }
  EXPECT_EQ(M.submit(A, "x = 1").get().St, Reply::Status::ShuttingDown);
  EXPECT_EQ(M.createSession(), 0u);
}

TEST_F(ServiceTest, DestroyDrainsAcceptedWorkAndLeavesOthersRunning) {
  ServiceOptions O = baseOptions();
  O.Workers = 2;
  SessionManager M(O);
  SessionId A = M.createSession(), B = M.createSession();
  std::vector<std::future<Reply>> Fs;
  for (int I = 0; I != 8; ++I)
    Fs.push_back(M.submit(A, "x = " + std::to_string(I)));
  ASSERT_TRUE(M.destroySession(A)); // blocks until A's queue drained
  for (auto &F : Fs)
    EXPECT_EQ(F.get().St, Reply::Status::Ok); // accepted => completed
  EXPECT_FALSE(M.destroySession(A));          // already gone

  Reply RB = run(M, B, "y = 2 + 2");
  EXPECT_EQ(RB.St, Reply::Status::Ok);
  EXPECT_NE(RB.Output.find("4"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Graceful degradation
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, OverloadShedsSpeculationFirstAndRecovers) {
  ServiceOptions O = baseOptions();
  O.Session.Policy = CompilePolicy::Speculative;
  O.MaxQueuedRequests = 64;
  O.ShedQueuedRequests = 4;
  SessionManager M(O);
  M.setWorkersPaused(true);

  SessionId A = M.createSession();
  std::vector<std::future<Reply>> Fs;
  for (int I = 0; I != 6; ++I)
    Fs.push_back(M.submit(A, "x = 1"));
  EXPECT_TRUE(M.shedding()) << "backlog over threshold must shed";

  M.setWorkersPaused(false);
  for (auto &F : Fs)
    EXPECT_EQ(F.get().St, Reply::Status::Ok);
  EXPECT_FALSE(M.shedding()) << "drained backlog must resume speculation";

  obs::MetricsSnapshot Snap = M.sampleMetrics();
  auto CounterOf = [&Snap](const std::string &Name) -> uint64_t {
    for (const auto &[N, V] : Snap.Counters)
      if (N == Name)
        return V;
    return 0;
  };
  EXPECT_GE(CounterOf("service.shed.entered"), 1u);
  EXPECT_GE(CounterOf("service.shed.exited"), 1u);
  EXPECT_EQ(CounterOf("service.requests.accepted"), 6u);
  EXPECT_EQ(CounterOf("service.requests.completed"), 6u);
}

//===----------------------------------------------------------------------===//
// Service fault sites
//===----------------------------------------------------------------------===//

TEST_F(ServiceTest, SessionCreateFaultIsACleanDenial) {
  SessionManager M(baseOptions());
  faults::armAt(faults::Site::SessionCreate, 1);
  EXPECT_EQ(M.createSession(), 0u);
  faults::disarm(faults::Site::SessionCreate);
  SessionId Id = M.createSession();
  ASSERT_NE(Id, 0u);
  EXPECT_EQ(run(M, Id, "x = 1 + 1").St, Reply::Status::Ok);
}

TEST_F(ServiceTest, AdmissionFaultRejectsWithoutLosingTheSession) {
  SessionManager M(baseOptions());
  SessionId Id = M.createSession();
  faults::armAt(faults::Site::Admission, 1);
  EXPECT_EQ(run(M, Id, "x = 1").St, Reply::Status::RejectedOverloaded);
  faults::disarm(faults::Site::Admission);
  EXPECT_EQ(run(M, Id, "x = 1").St, Reply::Status::Ok);
}

TEST_F(ServiceTest, BudgetCheckFaultFailsOnlyThatRequest) {
  SessionManager M(baseOptions());
  SessionId Id = M.createSession();
  faults::armAt(faults::Site::BudgetCheck, 1);
  Reply R = run(M, Id, "x = 1");
  faults::disarm(faults::Site::BudgetCheck);
  EXPECT_EQ(R.St, Reply::Status::Error);
  EXPECT_NE(R.Output.find("injected fault"), std::string::npos);
  EXPECT_EQ(run(M, Id, "x = 1").St, Reply::Status::Ok);
}

//===----------------------------------------------------------------------===//
// Multi-session fault sweep: seeded schedules over every site (including
// the service ones) against several concurrent sessions. Faults may deny
// sessions and requests; they must never crash the service, never break
// another session's reply, and a post-reset session must behave exactly
// like a fresh solo one.
//===----------------------------------------------------------------------===//

class ServiceFaultSweep : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override { faults::reset(); }
  void TearDown() override { faults::reset(); }
};

TEST_P(ServiceFaultSweep, ServiceSurvivesScheduleAndRecovers) {
  uint64_t Seed = GetParam();
  std::string Ref = soloOutput(kFibSrc, kCallFib);

  // xorshift-seeded schedule over every site, like tests/FuzzTest.cpp.
  uint64_t S = Seed * 0x9e3779b97f4a7c15ull + 0xda3e39cb94b95bdbull;
  auto Next = [&S] {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  };
  for (unsigned SI = 0; SI != faults::kNumSites; ++SI) {
    auto Site = static_cast<faults::Site>(SI);
    switch (Next() % 3) {
    case 0:
      break;
    case 1:
      faults::armAt(Site, 1 + Next() % 10);
      break;
    default:
      faults::armRandom(Site, 0.2, Next());
      break;
    }
  }

  {
    ServiceOptions O = baseOptions();
    O.Session.Policy = CompilePolicy::Speculative;
    O.MaxSessions = 4;
    SessionManager M(O);
    std::vector<SessionId> Ids;
    for (int I = 0; I != 3; ++I)
      if (SessionId Id = M.createSession())
        Ids.push_back(Id);
    for (int Round = 0; Round != 3; ++Round) {
      std::vector<std::future<Reply>> Fs;
      for (SessionId Id : Ids) {
        Fs.push_back(M.submit(Id, kFibSrc));
        Fs.push_back(M.submit(Id, kCallFib));
      }
      for (auto &F : Fs) {
        Reply R = F.get(); // every accepted or rejected request resolves
        if (R.St == Reply::Status::Ok && R.Output.find("x =") == 0)
          EXPECT_NE(R.Output.find("144"), std::string::npos) << R.Output;
      }
    }
    M.shutdown();
  }

  // Faults clear: a fresh solo session agrees with the reference exactly.
  faults::reset();
  EXPECT_EQ(soloOutput(kFibSrc, kCallFib), Ref);
}

INSTANTIATE_TEST_SUITE_P(Schedules, ServiceFaultSweep,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===//
// Session hibernation
//===----------------------------------------------------------------------===//

namespace fs = std::filesystem;

/// Hibernation fixture: a scratch session directory per test, removed on
/// both sides so a crashed run can't leak state into the next.
class HibernationTest : public ServiceTest {
protected:
  void SetUp() override {
    ServiceTest::SetUp();
    Dir = fs::temp_directory_path() /
          ("majic_hib_" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(Dir);
  }
  void TearDown() override {
    fs::remove_all(Dir);
    ServiceTest::TearDown();
  }

  ServiceOptions hibOptions(unsigned Cap) {
    ServiceOptions O = baseOptions();
    O.Workers = 1; // deterministic idleness for LRU selection
    O.MaxSessions = Cap;
    O.SessionDir = Dir.string();
    return O;
  }

  size_t snapshotsOnDisk() {
    return SnapshotStore(Dir.string()).scan().size();
  }

  fs::path Dir;
};

TEST_F(HibernationTest, CapHibernatesLruIdleSessionTransparently) {
  const char *Setup = "v = 41;";
  const char *Use = "w = v + 1";
  std::string Ref = soloOutput(Setup, Use);

  SessionManager M(hibOptions(2));
  SessionId A = M.createSession();
  ASSERT_NE(A, 0u);
  ASSERT_EQ(run(M, A, Setup).St, Reply::Status::Ok);
  SessionId B = M.createSession();
  ASSERT_NE(B, 0u);
  ASSERT_EQ(run(M, B, "v = 1;").St, Reply::Status::Ok);

  // The third create does not reject: A (the LRU idle session) is
  // snapshotted to disk and its slot reused.
  SessionId C = M.createSession();
  ASSERT_NE(C, 0u) << "cap must hibernate, not reject";
  EXPECT_EQ(M.liveSessions(), 2u);
  EXPECT_EQ(M.hibernatedSessions(), 1u);
  EXPECT_EQ(snapshotsOnDisk(), 1u);

  // Submitting to A resurrects it transparently (hibernating another
  // idle session to make room) and the workspace is bit-identical to a
  // session that never left memory. The consumed snapshot is gone.
  Reply R = run(M, A, Use);
  EXPECT_EQ(R.St, Reply::Status::Ok) << R.Output;
  EXPECT_EQ(R.Output, Ref);
  EXPECT_EQ(M.hibernatedSessions(), 1u); // B or C took A's place on disk
  EXPECT_EQ(snapshotsOnDisk(), 1u);
}

TEST_F(HibernationTest, NothingIdleRejectsWithRetryableReason) {
  SessionManager M(hibOptions(1));
  SessionId A = M.createSession();
  ASSERT_NE(A, 0u);
  ASSERT_EQ(run(M, A, "v = 7;").St, Reply::Status::Ok);
  SessionId B = M.createSession(); // hibernates idle A
  ASSERT_NE(B, 0u);
  EXPECT_EQ(M.hibernatedSessions(), 1u);

  // Stage "nothing idle": B has a queued request, so it can't be torn
  // out. A's resurrect now has nowhere to live.
  M.setWorkersPaused(true);
  std::future<Reply> Busy = M.submit(B, "x = 1");
  Reply R = M.submit(A, "w = v").get();
  EXPECT_EQ(R.St, Reply::Status::RejectedOverloaded);
  EXPECT_EQ(R.Why, Reply::Reason::SessionCapNoIdle);
  EXPECT_STREQ(rejectReasonName(R.Why), "session-cap-no-idle");
  EXPECT_EQ(M.createSession(), 0u) << "creates reject too while nothing idle";

  // The reason is advertised as retryable: once B drains, the same
  // submit succeeds (B hibernates, A resurrects with its state).
  M.setWorkersPaused(false);
  EXPECT_EQ(Busy.get().St, Reply::Status::Ok);
  Reply Retry = run(M, A, "w = v");
  EXPECT_EQ(Retry.St, Reply::Status::Ok) << Retry.Output;
  EXPECT_NE(Retry.Output.find("7"), std::string::npos) << Retry.Output;
}

TEST_F(HibernationTest, CorruptSnapshotQuarantinesAndRestartsEmptyLoudly) {
  SessionManager M(hibOptions(1));
  SessionId A = M.createSession();
  ASSERT_NE(A, 0u);
  ASSERT_EQ(run(M, A, "v = 123;").St, Reply::Status::Ok);
  ASSERT_NE(M.createSession(), 0u); // hibernates A
  ASSERT_EQ(M.hibernatedSessions(), 1u);

  // Flip one payload byte of A's snapshot on disk.
  std::string Path = SnapshotStore(Dir.string()).pathFor(A);
  std::string Bytes;
  {
    std::ifstream In(Path, std::ios::binary);
    ASSERT_TRUE(In.good());
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_FALSE(Bytes.empty());
  Bytes.back() = char(Bytes.back() ^ 0x40);
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), std::streamsize(Bytes.size()));
  }

  // The resurrect walks the ladder, refuses the bytes, quarantines the
  // file, and the triggering request fails with the structured error -
  // never a silent recompute on the empty workspace.
  Reply R = run(M, A, "w = v + 1");
  EXPECT_EQ(R.St, Reply::Status::Error);
  EXPECT_EQ(R.Output.find("??? resurrect:"), 0u) << R.Output;
  EXPECT_NE(R.Output.find("quarantined"), std::string::npos) << R.Output;

  bool SawQuarantine = false;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    SawQuarantine |=
        E.path().filename().string().find(".corrupt") != std::string::npos;
  EXPECT_TRUE(SawQuarantine) << "torn snapshot must be kept as evidence";

  // The session restarted empty and usable: old state gone, new state ok.
  EXPECT_EQ(run(M, A, "w = v").St, Reply::Status::Error) << "v must be gone";
  Reply Fresh = run(M, A, "x = 5");
  EXPECT_EQ(Fresh.St, Reply::Status::Ok);
}

TEST_F(HibernationTest, RestartReRegistersHibernatedSessions) {
  const char *Setup = "v = 19;";
  const char *Use = "w = v * 2";
  std::string Ref = soloOutput(Setup, Use);

  SessionId A = 0;
  {
    SessionManager M(hibOptions(1));
    A = M.createSession();
    ASSERT_NE(A, 0u);
    ASSERT_EQ(run(M, A, Setup).St, Reply::Status::Ok);
    ASSERT_NE(M.createSession(), 0u); // hibernates A
    ASSERT_EQ(M.hibernatedSessions(), 1u);
  } // shutdown: the snapshot stays on disk - that is the durability story

  // A brand-new service on the same directory recovers the session: same
  // id, same workspace, bit-identical output.
  SessionManager M2(hibOptions(1));
  EXPECT_EQ(M2.hibernatedSessions(), 1u);
  Reply R = run(M2, A, Use);
  EXPECT_EQ(R.St, Reply::Status::Ok) << R.Output;
  EXPECT_EQ(R.Output, Ref);
  // New ids never collide with recovered ones.
  SessionId Fresh = M2.createSession();
  EXPECT_NE(Fresh, 0u);
  EXPECT_NE(Fresh, A);
}

TEST_F(HibernationTest, FailedSaveLeavesVictimFullyLive) {
  SessionManager M(hibOptions(1));
  SessionId A = M.createSession();
  ASSERT_NE(A, 0u);
  ASSERT_EQ(run(M, A, "v = 7;").St, Reply::Status::Ok);

  // The snapshot write fails (injected): the victim must keep its engine
  // and state, and the create reports the cap instead.
  faults::armAt(faults::Site::SessionSnapshotSave, 1);
  EXPECT_EQ(M.createSession(), 0u);
  faults::disarm(faults::Site::SessionSnapshotSave);
  EXPECT_EQ(M.liveSessions(), 1u);
  EXPECT_EQ(M.hibernatedSessions(), 0u);
  EXPECT_EQ(snapshotsOnDisk(), 0u) << "failed save must leave no file";

  Reply R = run(M, A, "w = v + 1");
  EXPECT_EQ(R.St, Reply::Status::Ok) << R.Output;
  EXPECT_NE(R.Output.find("8"), std::string::npos) << R.Output;

  // With the fault gone the same create succeeds by hibernating A.
  EXPECT_NE(M.createSession(), 0u);
  EXPECT_EQ(M.hibernatedSessions(), 1u);
}

//===----------------------------------------------------------------------===//
// Shared-cache eviction
//===----------------------------------------------------------------------===//

CompiledObjectPtr dummyObject(const std::string &Name) {
  auto Obj = std::make_shared<CompiledObject>();
  Obj->FunctionName = Name;
  return Obj;
}

TEST(SharedCacheEvictionTest, HotEntrySurvivesColdFlood) {
  SharedCodeCache Cache(/*Capacity=*/4);
  ASSERT_TRUE(Cache.publish("hot", dummyObject("hot"), 1));
  for (int I = 0; I != 32; ++I)
    ASSERT_NE(Cache.lookup("hot"), nullptr);

  // A flood of cold entries (never looked up) churns through the cache;
  // the hot entry must outlive every one of them.
  for (int I = 0; I != 64; ++I) {
    std::string Key = "cold" + std::to_string(I);
    ASSERT_TRUE(Cache.publish(Key, dummyObject(Key), 2));
    EXPECT_NE(Cache.lookup("hot"), nullptr)
        << "hot entry evicted by cold insert " << I;
  }
  EXPECT_LE(Cache.size(), 4u);
  EXPECT_GE(Cache.evictions(), 61u); // 65 publishes into 4 slots
}

TEST(SharedCacheEvictionTest, FreshInsertIsSparedFromItsOwnEviction) {
  // Capacity 1 is the degenerate case: every publish must evict the
  // *previous* entry, never bounce the fresh one (the session that just
  // compiled it is about to use it).
  SharedCodeCache Cache(/*Capacity=*/1);
  ASSERT_TRUE(Cache.publish("a", dummyObject("a"), 1));
  for (int I = 0; I != 8; ++I)
    ASSERT_NE(Cache.lookup("a"), nullptr); // "a" is hot - and still loses:
  ASSERT_TRUE(Cache.publish("b", dummyObject("b"), 2));
  EXPECT_EQ(Cache.lookup("a"), nullptr) << "previous entry must be evicted";
  EXPECT_NE(Cache.lookup("b"), nullptr) << "fresh insert must be spared";
  EXPECT_EQ(Cache.size(), 1u);
}

#ifndef __SANITIZE_THREAD__
TEST_F(ServiceTest, NativeTierSessionMatchesVmOutput) {
  // The native tier rides the Session engine-options template: a service
  // configured with it produces byte-identical request output, whether
  // the host has a C compiler (machine code serves the hot calls) or not
  // (transparent VM fallback). Skipped under TSan: dlopen of the
  // uninstrumented generated .so is incompatible with the runtime.
  std::string Ref = soloOutput(kWorkSrc, kCallWork);

  ServiceOptions O = baseOptions();
  O.Session.NativeTier = true;
  O.Session.NativeHotThreshold = 1;
  SessionManager M(O);
  SessionId Id = M.createSession();
  ASSERT_NE(Id, 0u);
  ASSERT_EQ(run(M, Id, kWorkSrc).St, Reply::Status::Ok);
  for (int I = 0; I != 3; ++I) {
    Reply R = run(M, Id, kCallWork);
    ASSERT_EQ(R.St, Reply::Status::Ok);
    EXPECT_EQ(R.Output, Ref);
  }
}
#endif // !__SANITIZE_THREAD__

TEST(SharedCacheEvictionTest, TiesFallToTheOldestInsertion) {
  SharedCodeCache Cache(/*Capacity=*/2);
  ASSERT_TRUE(Cache.publish("first", dummyObject("first"), 1));
  ASSERT_TRUE(Cache.publish("second", dummyObject("second"), 2));
  // Zero hits everywhere: insertion order breaks the tie, FIFO-style.
  ASSERT_TRUE(Cache.publish("third", dummyObject("third"), 3));
  EXPECT_EQ(Cache.lookup("first"), nullptr);
  EXPECT_NE(Cache.lookup("second"), nullptr);
  EXPECT_NE(Cache.lookup("third"), nullptr);
}

} // namespace
