//===- tests/OpsTest.cpp - Polymorphic operation semantics --------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Ops.h"

#include <gtest/gtest.h>

using namespace majic;
using namespace majic::rt;

namespace {

Value rowVec(std::initializer_list<double> Xs) {
  Value V = Value::zeros(1, Xs.size());
  size_t I = 0;
  for (double X : Xs)
    V.reRef(I++) = X;
  return V;
}

Value colVec(std::initializer_list<double> Xs) {
  Value V = Value::zeros(Xs.size(), 1);
  size_t I = 0;
  for (double X : Xs)
    V.reRef(I++) = X;
  return V;
}

Value mat22(double A, double B, double C, double D) {
  Value V = Value::zeros(2, 2);
  V.reRef(0) = A; // (0,0)
  V.reRef(1) = C; // (1,0)
  V.reRef(2) = B; // (0,1)
  V.reRef(3) = D; // (1,1)
  return V;
}

} // namespace

TEST(Ops, ScalarArithmetic) {
  EXPECT_DOUBLE_EQ(
      binary(BinOp::Add, Value::scalar(2), Value::scalar(3)).scalarValue(), 5);
  EXPECT_DOUBLE_EQ(
      binary(BinOp::Sub, Value::scalar(2), Value::scalar(3)).scalarValue(), -1);
  EXPECT_DOUBLE_EQ(
      binary(BinOp::MatMul, Value::scalar(2), Value::scalar(3)).scalarValue(),
      6);
  EXPECT_DOUBLE_EQ(
      binary(BinOp::MatRDiv, Value::scalar(1), Value::scalar(4)).scalarValue(),
      0.25);
}

TEST(Ops, IntClassPreservation) {
  Value R = binary(BinOp::Add, Value::intScalar(2), Value::intScalar(3));
  EXPECT_EQ(R.mclass(), MClass::Int);
  Value R2 = binary(BinOp::Add, Value::intScalar(2), Value::scalar(3.5));
  EXPECT_EQ(R2.mclass(), MClass::Real);
  // Division never preserves int.
  Value R3 = binary(BinOp::ElemRDiv, Value::intScalar(4), Value::intScalar(2));
  EXPECT_EQ(R3.mclass(), MClass::Real);
}

TEST(Ops, ScalarMatrixBroadcast) {
  Value M = mat22(1, 2, 3, 4);
  Value R = binary(BinOp::Add, M, Value::scalar(10));
  EXPECT_DOUBLE_EQ(R.at(0, 0), 11);
  EXPECT_DOUBLE_EQ(R.at(1, 1), 14);
}

TEST(Ops, ShapeMismatchThrows) {
  EXPECT_THROW(binary(BinOp::Add, rowVec({1, 2, 3}), rowVec({1, 2})),
               MatlabError);
}

TEST(Ops, MatrixMultiply) {
  Value A = mat22(1, 2, 3, 4);
  Value B = mat22(5, 6, 7, 8);
  Value C = binary(BinOp::MatMul, A, B);
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(Ops, MatrixVectorMultiply) {
  Value A = mat22(1, 2, 3, 4);
  Value X = colVec({1, 1});
  Value Y = binary(BinOp::MatMul, A, X);
  EXPECT_EQ(Y.rows(), 2u);
  EXPECT_EQ(Y.cols(), 1u);
  EXPECT_DOUBLE_EQ(Y.re(0), 3);
  EXPECT_DOUBLE_EQ(Y.re(1), 7);
}

TEST(Ops, InnerDimensionMismatchThrows) {
  EXPECT_THROW(binary(BinOp::MatMul, mat22(1, 2, 3, 4), rowVec({1, 2})),
               MatlabError);
}

TEST(Ops, ComplexArithmetic) {
  Value A = Value::complexScalar(1, 2);
  Value B = Value::complexScalar(3, -1);
  Value P = binary(BinOp::ElemMul, A, B);
  // (1+2i)(3-i) = 3 - i + 6i - 2i^2 = 5 + 5i
  EXPECT_DOUBLE_EQ(P.re(0), 5);
  EXPECT_DOUBLE_EQ(P.im(0), 5);
}

TEST(Ops, PowerEscalatesToComplex) {
  // (-8)^(1/3) is complex in MATLAB.
  Value R = binary(BinOp::MatPow, Value::scalar(-8), Value::scalar(1.0 / 3));
  EXPECT_TRUE(R.isComplex());
  EXPECT_NEAR(R.re(0), 1.0, 1e-9);
  EXPECT_NEAR(R.im(0), std::sqrt(3.0), 1e-9);
  // Integer exponents stay real.
  Value R2 = binary(BinOp::MatPow, Value::scalar(-2), Value::scalar(3));
  EXPECT_FALSE(R2.isComplex());
  EXPECT_DOUBLE_EQ(R2.scalarValue(), -8);
}

TEST(Ops, MatrixPower) {
  Value A = mat22(1, 1, 0, 1);
  Value R = binary(BinOp::MatPow, A, Value::scalar(3));
  // [1 1; 0 1]^3 = [1 3; 0 1]
  EXPECT_DOUBLE_EQ(R.at(0, 1), 3);
  EXPECT_DOUBLE_EQ(R.at(1, 0), 0);
}

TEST(Ops, ComparisonsIgnoreImaginaryParts) {
  // Section 2.5: relational operators disregard imaginary components.
  Value A = Value::complexScalar(1, 100);
  Value B = Value::complexScalar(2, -100);
  EXPECT_DOUBLE_EQ(binary(BinOp::Lt, A, B).scalarValue(), 1.0);
  // Eq compares full complex values.
  EXPECT_DOUBLE_EQ(binary(BinOp::Eq, A, A).scalarValue(), 1.0);
  EXPECT_DOUBLE_EQ(binary(BinOp::Eq, A, B).scalarValue(), 0.0);
}

TEST(Ops, ComparisonYieldsBoolMatrix) {
  Value R = binary(BinOp::Gt, rowVec({1, 5, 3}), Value::scalar(2));
  EXPECT_EQ(R.mclass(), MClass::Bool);
  EXPECT_DOUBLE_EQ(R.re(0), 0);
  EXPECT_DOUBLE_EQ(R.re(1), 1);
  EXPECT_DOUBLE_EQ(R.re(2), 1);
}

TEST(Ops, TransposeAndConjugate) {
  Value A = Value::zeros(1, 2, MClass::Complex);
  A.reRef(0) = 1;
  A.imRef(0) = 2;
  A.reRef(1) = 3;
  A.imRef(1) = 4;
  Value CT = unary(UnOp::CTranspose, A);
  EXPECT_EQ(CT.rows(), 2u);
  EXPECT_DOUBLE_EQ(CT.im(0), -2); // conjugated
  Value T = unary(UnOp::Transpose, A);
  EXPECT_DOUBLE_EQ(T.im(0), 2); // not conjugated
}

TEST(Ops, MatLDivSolvesSystems) {
  Value A = mat22(2, 0, 0, 4);
  Value B = colVec({2, 8});
  Value X = binary(BinOp::MatLDiv, A, B);
  EXPECT_NEAR(X.re(0), 1, 1e-12);
  EXPECT_NEAR(X.re(1), 2, 1e-12);
}

TEST(Ops, ColonUsesRealPartOnly) {
  // Section 2.5 hint #1: colon silently ignores imaginary parts.
  Value R = colon(Value::complexScalar(1, 9), Value::complexScalar(3, -5));
  EXPECT_EQ(R.numel(), 3u);
  EXPECT_DOUBLE_EQ(R.re(2), 3);
}

TEST(Ops, Concatenation) {
  const Value A = rowVec({1, 2});
  const Value B = rowVec({3});
  const Value *Hs[] = {&A, &B};
  Value H = horzcat(Hs);
  EXPECT_EQ(H.cols(), 3u);
  EXPECT_DOUBLE_EQ(H.re(2), 3);

  const Value C = rowVec({1, 2});
  const Value D = rowVec({3, 4});
  const Value *Vs[] = {&C, &D};
  Value V = vertcat(Vs);
  EXPECT_EQ(V.rows(), 2u);
  EXPECT_DOUBLE_EQ(V.at(1, 0), 3);
  EXPECT_DOUBLE_EQ(V.at(1, 1), 4);
}

TEST(Ops, ConcatenationMismatchThrows) {
  const Value A = rowVec({1, 2});
  const Value B = colVec({1, 2});
  const Value *Vs[] = {&A, &B};
  EXPECT_THROW(vertcat(Vs), MatlabError);
}

TEST(Ops, StringConcatenation) {
  const Value A = Value::str("ab");
  const Value B = Value::str("cd");
  const Value *Hs[] = {&A, &B};
  Value H = horzcat(Hs);
  EXPECT_TRUE(H.isString());
  EXPECT_EQ(H.stringValue(), "abcd");
}

TEST(Ops, EmptyPartsAbsorbedInConcat) {
  const Value A = rowVec({1, 2});
  const Value E;
  const Value *Hs[] = {&E, &A};
  Value H = horzcat(Hs);
  EXPECT_EQ(H.numel(), 2u);
}

TEST(Indexing, LinearRead) {
  Value M = mat22(1, 2, 3, 4); // column-major: 1 3 2 4
  Value R = rt::index1(M, Indexer::single(2));
  EXPECT_DOUBLE_EQ(R.scalarValue(), 2); // third element, column-major
}

TEST(Indexing, TwoDimRead) {
  Value M = mat22(1, 2, 3, 4);
  Value R = rt::index2(M, Indexer::single(0), Indexer::single(1));
  EXPECT_DOUBLE_EQ(R.scalarValue(), 2);
}

TEST(Indexing, ColonRead) {
  Value M = mat22(1, 2, 3, 4);
  Value Col = rt::index2(M, Indexer::colon(), Indexer::single(1));
  EXPECT_EQ(Col.rows(), 2u);
  EXPECT_DOUBLE_EQ(Col.re(0), 2);
  EXPECT_DOUBLE_EQ(Col.re(1), 4);
  // A(:) is always a column vector.
  Value All = rt::index1(M, Indexer::colon());
  EXPECT_EQ(All.rows(), 4u);
  EXPECT_EQ(All.cols(), 1u);
}

TEST(Indexing, OutOfBoundsReadThrows) {
  Value M = mat22(1, 2, 3, 4);
  EXPECT_THROW(rt::index1(M, Indexer::single(4)), MatlabError);
  EXPECT_THROW(rt::index2(M, Indexer::single(2), Indexer::single(0)),
               MatlabError);
}

TEST(Indexing, BadSubscriptThrows) {
  EXPECT_THROW(checkSubscript(0), MatlabError);
  EXPECT_THROW(checkSubscript(-3), MatlabError);
  EXPECT_THROW(checkSubscript(1.5), MatlabError);
  EXPECT_EQ(checkSubscript(3), 2u);
}

TEST(Indexing, LogicalIndexSelectsNonzero) {
  Value V = rowVec({10, 20, 30});
  Value Mask = rowVec({1, 0, 1});
  Mask.setClass(MClass::Bool);
  Indexer I = Indexer::fromValue(Mask, V.numel());
  Value R = rt::index1(V, I);
  EXPECT_EQ(R.numel(), 2u);
  EXPECT_DOUBLE_EQ(R.re(1), 30);
}

TEST(Indexing, AssignGrowsVector) {
  Value V = rowVec({1});
  rt::indexAssign1(V, Indexer::single(4), Value::scalar(9));
  EXPECT_EQ(V.cols(), 5u);
  EXPECT_DOUBLE_EQ(V.re(4), 9);
  EXPECT_DOUBLE_EQ(V.re(2), 0); // zero-filled gap
}

TEST(Indexing, AssignGrowsMatrixIn2D) {
  Value M = mat22(1, 2, 3, 4);
  rt::indexAssign2(M, Indexer::single(2), Indexer::single(2),
                   Value::scalar(9));
  EXPECT_EQ(M.rows(), 3u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(2, 2), 9);
  EXPECT_DOUBLE_EQ(M.at(0, 0), 1); // preserved
}

TEST(Indexing, LinearGrowOfMatrixThrows) {
  Value M = mat22(1, 2, 3, 4);
  EXPECT_THROW(rt::indexAssign1(M, Indexer::single(10), Value::scalar(1)),
               MatlabError);
}

TEST(Indexing, AssignComplexPromotesBase) {
  Value V = rowVec({1, 2});
  rt::indexAssign1(V, Indexer::single(0), Value::complexScalar(0, 1));
  EXPECT_TRUE(V.isComplex());
  EXPECT_DOUBLE_EQ(V.im(0), 1);
  EXPECT_DOUBLE_EQ(V.im(1), 0);
}

TEST(Indexing, ColonAssignWholeColumn) {
  Value M = mat22(1, 2, 3, 4);
  rt::indexAssign2(M, Indexer::colon(), Indexer::single(0), colVec({7, 8}));
  EXPECT_DOUBLE_EQ(M.at(0, 0), 7);
  EXPECT_DOUBLE_EQ(M.at(1, 0), 8);
  EXPECT_DOUBLE_EQ(M.at(0, 1), 2);
}

TEST(Indexing, CountMismatchThrows) {
  Value V = rowVec({1, 2, 3});
  EXPECT_THROW(rt::indexAssign1(V, Indexer::single(0), rowVec({1, 2})),
               MatlabError);
}
