//===- tests/AsyncCompileTest.cpp - Background speculative compilation ----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The asynchronous speculation subsystem (ISSUE 1): the worker pool, the
// thread-safe repository under concurrent lookup/insert, publication
// ordering against invalidation, and drain determinism. Run this suite
// under -DMAJIC_SANITIZE=thread to certify the concurrent paths.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

using namespace majic;

namespace {

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPool, RunsEveryTask) {
  ThreadPool Pool(3);
  EXPECT_EQ(Pool.size(), 3u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 100; ++I)
    Pool.enqueue([&Count] { Count.fetch_add(1); });
  Pool.waitIdle();
  EXPECT_EQ(Count.load(), 100);
}

TEST(ThreadPool, DestructorFinishesQueuedWork) {
  std::atomic<int> Count{0};
  {
    ThreadPool Pool(1);
    for (int I = 0; I != 50; ++I)
      Pool.enqueue([&Count] { Count.fetch_add(1); });
  } // ~ThreadPool drains the queue before joining
  EXPECT_EQ(Count.load(), 50);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool Pool(2);
  Pool.waitIdle(); // must not hang
}

TEST(ThreadPool, ZeroRequestedThreadsStillWorks) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  std::atomic<bool> Ran{false};
  Pool.enqueue([&Ran] { Ran.store(true); });
  Pool.waitIdle();
  EXPECT_TRUE(Ran.load());
}

TEST(ThreadPool, PromoteMovesQueuedTaskToFront) {
  ThreadPool Pool(1);
  Pool.setPaused(true); // build a backlog no worker can touch yet
  std::mutex M;
  std::vector<char> Order;
  auto Record = [&](char C) {
    return [&Order, &M, C] {
      std::lock_guard<std::mutex> Lock(M);
      Order.push_back(C);
    };
  };
  Pool.enqueue(Record('A'));
  Pool.enqueue(Record('B'));
  ThreadPool::TaskId IdC = Pool.enqueue(Record('C'));
  EXPECT_TRUE(Pool.promote(IdC));
  Pool.setPaused(false);
  Pool.waitIdle();
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], 'C'); // promoted ahead of the FIFO backlog
  EXPECT_EQ(Order[1], 'A');
  EXPECT_EQ(Order[2], 'B');
}

TEST(ThreadPool, PromoteAfterCompletionReturnsFalse) {
  ThreadPool Pool(1);
  ThreadPool::TaskId Id = Pool.enqueue([] {});
  Pool.waitIdle();
  EXPECT_FALSE(Pool.promote(Id)); // already ran: nothing left to move
  EXPECT_FALSE(Pool.promote(Id + 1000)); // never existed
}

//===----------------------------------------------------------------------===//
// Repository under concurrency
//===----------------------------------------------------------------------===//

CompiledObject makeObj(const std::string &Name, TypeSignature Sig) {
  CompiledObject Obj;
  Obj.FunctionName = Name;
  Obj.Sig = std::move(Sig);
  Obj.Code = std::make_shared<IRFunction>();
  return Obj;
}

TEST(RepositoryConcurrency, ConcurrentLookupInsertInvalidate) {
  Repository R;
  constexpr int kWriters = 3, kReaders = 3, kRounds = 400;
  std::atomic<bool> Go{false};
  std::vector<std::thread> Threads;

  for (int W = 0; W != kWriters; ++W)
    Threads.emplace_back([&R, &Go, W] {
      while (!Go.load())
        std::this_thread::yield();
      for (int I = 0; I != kRounds; ++I) {
        // Alternate fresh signatures (vector growth), replacements of a
        // fixed signature, and whole-function invalidation.
        R.insert(makeObj("f", TypeSignature({Type::constant(I % 17)})));
        R.insert(makeObj("f", TypeSignature::generic(1)));
        if (I % 50 == 49 && W == 0)
          R.invalidate("f");
        R.insert(makeObj("g" + std::to_string(W), TypeSignature::generic(1)));
      }
    });

  std::atomic<uint64_t> SeenHits{0};
  for (int Rd = 0; Rd != kReaders; ++Rd)
    Threads.emplace_back([&R, &Go, &SeenHits] {
      while (!Go.load())
        std::this_thread::yield();
      TypeSignature Call({Type::ofValue(Value::intScalar(3))});
      for (int I = 0; I != kRounds; ++I) {
        CompiledObjectPtr Hit = R.lookup("f", Call);
        if (Hit) {
          // The handle stays valid regardless of concurrent replacement.
          EXPECT_NE(Hit->Code, nullptr);
          SeenHits.fetch_add(1);
        }
        (void)R.versions("f");
        (void)R.totalObjects();
      }
    });

  Go.store(true);
  for (std::thread &T : Threads)
    T.join();

  // Counter bookkeeping is consistent: every reader round either hit or
  // missed, and the split miss kinds sum to the combined counter.
  EXPECT_EQ(R.lookupHits(), SeenHits.load());
  EXPECT_EQ(R.lookupMisses() + R.lookupHits(),
            static_cast<uint64_t>(kReaders) * kRounds);
  EXPECT_EQ(R.lookupMisses(),
            R.lookupMissesNoFunction() + R.lookupMissesNoSafeVersion());
}

//===----------------------------------------------------------------------===//
// Engine background speculation
//===----------------------------------------------------------------------===//

const char *kCountdownV1 = "function s = countdown(n)\ns = 0;\n"
                           "for k = 1:n\ns = s + k;\nend\n";
const char *kCountdownV2 = "function s = countdown(n)\ns = 0;\n"
                           "for k = 1:n\ns = s + 2 * k;\nend\n";

TEST(EngineAsync, SpeculateAsyncPublishesAfterDrain) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 2;
  Engine E(O);
  ASSERT_TRUE(E.addSource("countdown", kCountdownV1));
  ASSERT_TRUE(E.speculateAsync("countdown"));
  E.drainCompiles();

  SpeculationStats S = E.speculationStats();
  EXPECT_EQ(S.Queued, 1u);
  EXPECT_EQ(S.Completed, 1u);
  EXPECT_EQ(S.Dropped, 0u);
  ASSERT_EQ(E.repository().versionCount("countdown"), 1u);
  EXPECT_EQ(E.repository().versions("countdown").front()->From,
            CompiledObject::Origin::Speculative);

  // The published object serves the matching invocation: no JIT compile.
  auto R = E.callFunction("countdown", {makeValue(Value::intScalar(10))}, 1,
                          SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 55);
  EXPECT_EQ(E.jitCompiles(), 0u);
}

TEST(EngineAsync, InFlightRequestsAreDeduplicated) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  ASSERT_TRUE(E.addSource("countdown", kCountdownV1));
  unsigned Queued = 0;
  for (int I = 0; I != 8; ++I)
    Queued += E.speculateAsync("countdown") ? 1 : 0;
  E.drainCompiles();
  SpeculationStats S = E.speculationStats();
  // At least the first request queued; every request that found the same
  // signature still in flight was deduplicated, and the bookkeeping adds
  // up exactly.
  EXPECT_GE(Queued, 1u);
  EXPECT_EQ(S.Queued, Queued);
  EXPECT_EQ(S.Queued + S.DedupedRequests, 8u);
  EXPECT_EQ(S.Completed, S.Queued);
}

TEST(EngineAsync, InvalidationDropsInFlightResults) {
  // Reloading a function while its speculative compile is in flight must
  // never publish the stale object: after the drain, the invocation sees
  // only code compiled from the new source. Repeat to give the race a
  // chance to bite under TSan.
  for (int Round = 0; Round != 25; ++Round) {
    EngineOptions O;
    O.Policy = CompilePolicy::Speculative;
    O.BackgroundCompileThreads = 2;
    Engine E(O);
    ASSERT_TRUE(E.addSource("countdown", kCountdownV1));
    E.speculateAsync("countdown");
    // Immediately shadow with v2 (sum of 2k, not k): bumps the source
    // generation and invalidates published v1 code.
    ASSERT_TRUE(E.addSource("countdown", kCountdownV2));
    E.drainCompiles();

    auto R = E.callFunction("countdown", {makeValue(Value::intScalar(10))}, 1,
                            SourceLoc());
    ASSERT_DOUBLE_EQ(R[0]->scalarValue(), 110) << "round " << Round;
    for (const CompiledObjectPtr &Obj : E.repository().versions("countdown"))
      EXPECT_NE(Obj->Code, nullptr);
  }
}

TEST(EngineAsync, DrainedResultsMatchSynchronousSpeculation) {
  // With a fixed RandSeed, background speculation + drain produces the
  // same numeric results as the synchronous pre-async path.
  const char *Source = "function y = noisy(n)\ny = 0;\n"
                       "for k = 1:n\ny = y + rand() * k;\nend\n";
  auto Run = [&](unsigned Threads) {
    EngineOptions O;
    O.Policy = CompilePolicy::Speculative;
    O.BackgroundCompileThreads = Threads;
    O.RandSeed = 0xfeedbeef;
    Engine E(O);
    EXPECT_TRUE(E.addSource("noisy", Source));
    if (Threads > 0) {
      EXPECT_TRUE(E.speculateAsync("noisy"));
      E.drainCompiles();
    } else {
      EXPECT_TRUE(E.precompileSpeculative("noisy"));
    }
    auto R = E.callFunction("noisy", {makeValue(Value::intScalar(50))}, 1,
                            SourceLoc());
    EXPECT_EQ(E.jitCompiles(), 0u); // speculation hit in both modes
    return R[0]->scalarValue();
  };
  double Sync = Run(0);
  double Async = Run(2);
  EXPECT_DOUBLE_EQ(Sync, Async);
}

TEST(EngineAsync, FirstCallDuringCompileInterpretsAndLaterCallsHit) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  ASSERT_TRUE(E.addSource("countdown", kCountdownV1));
  E.speculateAsync("countdown");
  // Whether or not the worker finished yet, the result is correct and no
  // JIT compile is wasted while the speculative compile is in flight.
  auto R1 = E.callFunction("countdown", {makeValue(Value::intScalar(10))}, 1,
                           SourceLoc());
  EXPECT_DOUBLE_EQ(R1[0]->scalarValue(), 55);
  EXPECT_EQ(E.jitCompiles(), 0u);
  E.drainCompiles();
  auto R2 = E.callFunction("countdown", {makeValue(Value::intScalar(10))}, 1,
                           SourceLoc());
  EXPECT_DOUBLE_EQ(R2[0]->scalarValue(), 55);
  EXPECT_EQ(E.jitCompiles(), 0u);
  // The published object (not a JIT one) now serves calls.
  ASSERT_EQ(E.repository().versionCount("countdown"), 1u);
  EXPECT_EQ(E.repository().versions("countdown").front()->From,
            CompiledObject::Origin::Speculative);
  SpeculationStats S = E.speculationStats();
  EXPECT_EQ(S.Completed, 1u);
  EXPECT_GE(S.TimeToFirstResultSeconds, 0.0);
}

TEST(EngineAsync, InvocationPromotesQueuedSpeculation) {
  // A call that misses on a function whose speculative compile is still
  // queued is the strongest priority signal there is: the entry jumps to
  // the front of the queue instead of waiting out the FIFO backlog.
  const char *Fns[] = {"aaa", "bbb", "ccc"};
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  for (const char *Name : Fns)
    ASSERT_TRUE(E.addSource(
        Name, "function y = " + std::string(Name) + "(x)\ny = x + 1;\n"));

  E.pauseBackgroundCompiles(); // freeze the worker so the queue is stable
  for (const char *Name : Fns)
    ASSERT_TRUE(E.speculateAsync(Name));
  EXPECT_EQ(E.queuedSpeculations(),
            (std::vector<std::string>{"aaa", "bbb", "ccc"}));

  // Explicit promotion moves ccc to the front...
  EXPECT_TRUE(E.promoteSpeculation("ccc"));
  EXPECT_EQ(E.queuedSpeculations(),
            (std::vector<std::string>{"ccc", "aaa", "bbb"}));
  // ...and an actual invocation of bbb promotes it implicitly (the call
  // itself interprets, since the compile hasn't finished).
  auto R =
      E.callFunction("bbb", {makeValue(Value::intScalar(4))}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 5);
  EXPECT_EQ(E.queuedSpeculations(),
            (std::vector<std::string>{"bbb", "ccc", "aaa"}));

  // Promotion of functions that are not queued reports false.
  EXPECT_FALSE(E.promoteSpeculation("nope"));

  E.resumeBackgroundCompiles();
  E.drainCompiles();
  SpeculationStats S = E.speculationStats();
  EXPECT_EQ(S.Completed, 3u);
  EXPECT_EQ(S.Promoted, 2u);
  EXPECT_TRUE(E.queuedSpeculations().empty());
  // Once drained nothing is queued, so promotion is a no-op again.
  EXPECT_FALSE(E.promoteSpeculation("ccc"));
}

TEST(EngineAsync, SnoopOrdersNeverRunBySourceRecency) {
  // Never-run functions tie at zero invocations, so the ranked queue falls
  // back to source recency: the file the user saved last speculates first.
  namespace fs = std::filesystem;
  std::string Dir = ::testing::TempDir() + "/majic_async_rank_mtime";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  auto Now = fs::file_time_type::clock::now();
  const struct {
    const char *Name;
    std::chrono::hours Age;
  } Files[] = {{"aa", std::chrono::hours(3)},
               {"bb", std::chrono::hours(2)},
               {"cc", std::chrono::hours(1)}};
  for (const auto &F : Files) {
    std::string Path = Dir + "/" + F.Name + ".m";
    std::ofstream(Path) << "function y = " << F.Name << "(x)\ny = x + 1;\n";
    fs::last_write_time(Path, Now - F.Age);
  }

  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  E.pauseBackgroundCompiles();
  E.watchDirectory(Dir);
  EXPECT_EQ(E.snoop(), 3u);
  // Newest source first: cc (1h old), bb (2h), aa (3h).
  EXPECT_EQ(E.queuedSpeculations(),
            (std::vector<std::string>{"cc", "bb", "aa"}));
  E.resumeBackgroundCompiles();
  E.drainCompiles();
}

TEST(EngineAsync, SnoopOrdersHotFirstAndPromotionStillWins) {
  // Once the profile has invocation counts, they dominate the ranking -
  // even over source recency - and explicit promotion still reorders the
  // ranked queue.
  namespace fs = std::filesystem;
  std::string Dir = ::testing::TempDir() + "/majic_async_rank_hot";
  fs::remove_all(Dir);
  fs::create_directories(Dir);
  auto Write = [&](const char *Name, std::chrono::hours Age) {
    std::string Path = Dir + "/" + Name + std::string(".m");
    std::ofstream(Path) << "function y = " << Name << "(x)\ny = x + 1;\n";
    fs::last_write_time(Path, fs::file_time_type::clock::now() - Age);
  };
  Write("aa", std::chrono::hours(6));
  Write("bb", std::chrono::hours(5));
  Write("cc", std::chrono::hours(4));

  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  E.watchDirectory(Dir);
  EXPECT_EQ(E.snoop(), 3u);
  E.drainCompiles();

  // The session's workload: bb is hot, aa lukewarm, cc never run.
  for (int I = 0; I != 3; ++I)
    E.callFunction("bb", {makeValue(Value::intScalar(1))}, 1, SourceLoc());
  E.callFunction("aa", {makeValue(Value::intScalar(1))}, 1, SourceLoc());

  // Touch every file - cc most recently, so recency alone would put the
  // never-run cc first. Invocation counts must win instead.
  Write("aa", std::chrono::hours(3));
  Write("bb", std::chrono::hours(2));
  Write("cc", std::chrono::hours(1));
  E.pauseBackgroundCompiles();
  EXPECT_EQ(E.snoop(), 3u);
  EXPECT_EQ(E.queuedSpeculations(),
            (std::vector<std::string>{"bb", "aa", "cc"}));

  // Promotion of the coldest entry overrides the ranking; the rest keep
  // their relative hot-first order.
  EXPECT_TRUE(E.promoteSpeculation("cc"));
  EXPECT_EQ(E.queuedSpeculations(),
            (std::vector<std::string>{"cc", "bb", "aa"}));
  E.resumeBackgroundCompiles();
  E.drainCompiles();
  EXPECT_TRUE(E.queuedSpeculations().empty());
}

TEST(EngineAsync, SnoopQueuesAndStatsAddUp) {
  std::string Dir = ::testing::TempDir() + "/majic_async_snoop";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  for (const char *Name : {"aa", "bb", "cc"}) {
    std::ofstream F(Dir + "/" + Name + std::string(".m"));
    F << "function y = " << Name << "(x)\ny = x + 1;\n";
  }
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 2;
  Engine E(O);
  E.watchDirectory(Dir);
  EXPECT_EQ(E.snoop(), 3u);
  E.drainCompiles();
  SpeculationStats S = E.speculationStats();
  EXPECT_EQ(S.Queued, 3u);
  EXPECT_EQ(S.Completed + S.Dropped, 3u);
  EXPECT_EQ(E.repository().totalObjects(), S.Completed);
  EXPECT_GT(S.BackgroundCompileSeconds, 0.0);
}

} // namespace
