//===- tests/InlinerTest.cpp - Function inlining -------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"

#include "analysis/Inliner.h"
#include "engine/Engine.h"
#include "ast/ASTPrinter.h"
#include "ast/ASTVisit.h"

#include <gtest/gtest.h>

using namespace majic;
using namespace majic::test;

namespace {

/// Inlines the main function of \p P using its module's subfunctions.
std::unique_ptr<Function> inlineMain(TestProgram &P,
                                     InlinerOptions Opts = {}) {
  Module &M = P.module();
  FunctionResolver Resolve = [&M](const std::string &Name) -> const Function * {
    return M.findFunction(Name);
  };
  return inlineFunctionCalls(*M.mainFunction(), M.context(), Resolve, Opts);
}

/// Counts IndexOrCall occurrences resolved as user-function calls.
unsigned countUserCalls(Function &F) {
  unsigned N = 0;
  visitStmts(F.body(), [&N](const Stmt *S) {
    visitStmtExprs(S, [&N](Expr *E) {
      visitExpr(E, [&N](Expr *Node) {
        if (auto *IC = dyn_cast<IndexOrCallExpr>(Node))
          N += IC->base()->symKind() == SymKind::UserFunction;
      });
    });
  });
  return N;
}

/// Runs the inlined clone through the interpreter and returns the scalar
/// result, checking it matches running the original.
double runBoth(const std::string &Src, std::vector<double> Args,
               InlinerOptions Opts = {}) {
  TestProgram P(Src);
  EXPECT_TRUE(P.ok());
  std::vector<ValuePtr> Boxed;
  for (double A : Args)
    Boxed.push_back(makeValue(Value::intScalar(A)));

  auto Original = P.run(Boxed, 1);
  double Expected = Original[0]->scalarValue();

  std::unique_ptr<Function> Inlined = inlineMain(P, Opts);
  auto Info = disambiguate(*Inlined, P.module());
  EXPECT_FALSE(Info->HasAmbiguousSymbols) << printFunction(*Inlined);
  Interpreter Interp(P.context(), P);
  auto R = Interp.run(*Inlined, Boxed, 1);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), Expected) << printFunction(*Inlined);
  return Expected;
}

TEST(Inliner, SimpleCallDisappears) {
  TestProgram P("function y = main(x)\ny = helper(x) + 1;\n"
                "function h = helper(v)\nh = v * 2;\n");
  ASSERT_TRUE(P.ok());
  auto Inlined = inlineMain(P);
  EXPECT_EQ(countUserCalls(*Inlined), 0u);
  runBoth("function y = main(x)\ny = helper(x) + 1;\n"
          "function h = helper(v)\nh = v * 2;\n",
          {5});
}

TEST(Inliner, CallByValuePreserved) {
  runBoth("function s = main(n)\nv = zeros(1, n);\nt = touch(v);\n"
          "s = sum(v) + t;\n"
          "function r = touch(w)\nw(1) = 100;\nr = w(1);\n",
          {4});
}

TEST(Inliner, NestedCallsInExpressions) {
  runBoth("function y = main(x)\ny = f(g(x)) + g(f(x));\n"
          "function a = f(v)\na = v + 1;\n"
          "function b = g(v)\nb = v * 3;\n",
          {2});
}

TEST(Inliner, EarlyReturnLowering) {
  runBoth("function y = main(x)\ny = clamp(x);\n"
          "function c = clamp(v)\nc = v;\nif v > 10\nc = 10;\nreturn;\nend\n"
          "if v < 0\nc = 0;\nreturn;\nend\nc = v * 2;\n",
          {15});
  runBoth("function y = main(x)\ny = clamp(x);\n"
          "function c = clamp(v)\nc = v;\nif v > 10\nc = 10;\nreturn;\nend\n"
          "if v < 0\nc = 0;\nreturn;\nend\nc = v * 2;\n",
          {3});
}

TEST(Inliner, ReturnInsideLoopLowering) {
  // return inside a loop must break out and skip the rest of the callee.
  runBoth("function y = main(n)\ny = firstbig(n);\n"
          "function r = firstbig(n)\nr = -1;\nfor k = 1:n\nif k * k > 10\n"
          "r = k;\nreturn;\nend\nend\nr = 0;\n",
          {10});
}

TEST(Inliner, ReturnInsideNestedLoops) {
  runBoth("function y = main(n)\ny = findpair(n);\n"
          "function r = findpair(n)\nr = 0;\nfor i = 1:n\nfor j = 1:n\n"
          "if i * j == 12\nr = i * 100 + j;\nreturn;\nend\nend\nend\n",
          {6});
}

TEST(Inliner, RecursionCapThreeLevels) {
  TestProgram P("function r = fib(n)\nif n <= 1\nr = n;\nelse\n"
                "r = fib(n - 1) + fib(n - 2);\nend\n");
  ASSERT_TRUE(P.ok());
  auto Inlined = inlineMain(P);
  // Recursive calls remain at the cap boundary, never fully unrolled.
  EXPECT_GT(countUserCalls(*Inlined), 0u);
  // Semantics preserved through the partial inlining.
  auto Info = disambiguate(*Inlined, P.module());
  EXPECT_FALSE(Info->HasAmbiguousSymbols);
  Interpreter Interp(P.context(), P);
  auto R = Interp.run(*Inlined, {makeValue(Value::intScalar(10))}, 1);
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 55);
}

TEST(Inliner, LargeCalleesLeftAlone) {
  // A callee over the line budget stays a call.
  std::string Big = "function h = big(v)\nh = v;\n";
  for (int K = 0; K != 300; ++K)
    Big += "h = h + 0;\n";
  TestProgram P("function y = main(x)\ny = big(x);\n" + Big);
  ASSERT_TRUE(P.ok());
  auto Inlined = inlineMain(P);
  EXPECT_EQ(countUserCalls(*Inlined), 1u);
}

TEST(Inliner, ShortCircuitRhsNotHoisted) {
  // Inlining f out of the && RHS would evaluate it unconditionally and
  // change behavior (f errors on negative input).
  runBoth("function y = main(x)\ny = 0;\n"
          "if x > 0 && check(x) > 1\ny = 1;\nend\n"
          "function c = check(v)\nif v < 0\nerror('negative');\nend\n"
          "c = v;\n",
          {-5});
}

TEST(Inliner, WhileConditionNotHoisted) {
  // The condition re-evaluates per iteration; hoisting would evaluate once.
  runBoth("function y = main(n)\nk = 0;\nwhile below(k, n)\nk = k + 1;\nend\n"
          "y = k;\n"
          "function b = below(a, lim)\nb = a < lim;\n",
          {7});
}

TEST(Inliner, AlphaRenamingAvoidsCapture) {
  // Caller and callee both use 'tmp'; inlining must not confuse them.
  runBoth("function y = main(x)\ntmp = 100;\ny = twice(x) + tmp;\n"
          "function t = twice(v)\ntmp = v * 2;\nt = tmp;\n",
          {4});
}

TEST(Inliner, MultiOutputCallSite) {
  runBoth("function y = main(x)\n[a, b] = pairof(x);\ny = a * 10 + b;\n"
          "function [p, q] = pairof(v)\np = v + 1;\nq = v + 2;\n",
          {3});
}

TEST(Inliner, InlinedThroughCompiledPipeline) {
  // The engine-level behavior: a function with small callees compiles to a
  // single unit; disabling inlining keeps CallU instructions. Compare
  // results and the user-call fallback counters.
  std::string Src = "function s = main(n)\ns = 0;\nfor k = 1:n\n"
                    "s = s + sq(k);\nend\n"
                    "function q = sq(v)\nq = v * v;\n";
  for (bool Inline : {true, false}) {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.InlineCalls = Inline;
    Engine E(O);
    ASSERT_TRUE(E.addSource("main", Src));
    auto R = E.callFunction("main", {makeValue(Value::intScalar(50))}, 1,
                            SourceLoc());
    EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 50.0 * 51 * 101 / 6);
  }
}

TEST(Inliner, HoistedFromForIterand) {
  // Iterands are evaluated once, so inlined callee bodies may legally be
  // hoisted before the loop.
  runBoth("function s = main(n)\ns = 0;\nfor k = 1:bound(n)\ns = s + k;\nend\n"
          "function b = bound(v)\nb = v * 2;\n",
          {5});
}

TEST(Inliner, ZeroArgumentCallee) {
  runBoth("function y = main(x)\ny = x + base();\n"
          "function b = base()\nb = 40;\n",
          {2});
}

} // namespace
