//===- tests/CorpusTest.cpp - The 16 paper benchmarks end-to-end --------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Every Table 1 benchmark must (a) load and run under the interpreter,
// (b) produce identical results under every compiled configuration, and
// (c) produce sane numeric answers where they are known analytically.
// Sizes here are reduced from the measurement sizes to keep tests fast.
//
//===----------------------------------------------------------------------===//

#include "engine/Corpus.h"
#include "engine/Engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

using namespace majic;

namespace {

/// Small test sizes (the measurement sizes live in the corpus table).
const std::map<std::string, std::vector<double>> &testArgs() {
  static const std::map<std::string, std::vector<double>> Args = {
      {"adapt", {1e-8, 4000}},
      {"cgopt", {60, 40}},
      {"crnich", {1, 3, 33, 33}},
      {"dirich", {20, 1e-3, 10}},
      {"finedif", {1, 1, 1, 40, 40}},
      {"galrkn", {24}},
      {"icn", {40}},
      {"mei", {17, 9}},
      {"orbec", {500}},
      {"orbrk", {100}},
      {"qmr", {40, 20}},
      {"sor", {24, 1.2, 10}},
      {"ackermann", {2, 3}},
      {"fractal", {400}},
      {"mandel", {16, 30}},
      {"fibonacci", {11}},
      // Not in the Table 1 corpus: the vectorized-style companion program
      // (its whole-array update is the elementwise-fusion target).
      {"heavyball", {60, 80}},
  };
  return Args;
}

std::vector<ValuePtr> boxArgs(const std::vector<double> &Xs) {
  std::vector<ValuePtr> Args;
  for (double A : Xs) {
    if (A == static_cast<long long>(A))
      Args.push_back(makeValue(Value::intScalar(A)));
    else
      Args.push_back(makeScalar(A));
  }
  return Args;
}

struct Result {
  Value V;
  std::string Output;
};

Result runPolicy(const std::string &Name, CompilePolicy Policy,
                 bool Precompile) {
  EngineOptions O;
  O.Policy = Policy;
  Engine E(O);
  EXPECT_TRUE(E.loadFile(mlibDirectory() + "/" + Name + ".m"))
      << E.diagnostics();
  if (Precompile) {
    if (Policy == CompilePolicy::Speculative)
      E.precompileSpeculative(Name);
    else if (Policy == CompilePolicy::Mcc)
      E.precompileGeneric(Name, testArgs().at(Name).size());
    else if (Policy == CompilePolicy::Falcon)
      E.precompileWithArgs(Name, boxArgs(testArgs().at(Name)));
  }
  auto Rs = E.callFunction(Name, boxArgs(testArgs().at(Name)), 1, SourceLoc());
  return {*Rs.at(0), E.context().output()};
}

class CorpusSoundness : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusSoundness, AllConfigurationsAgree) {
  const std::string Name = GetParam();
  Result Ref = runPolicy(Name, CompilePolicy::InterpretOnly, false);

  struct Cfg {
    const char *Label;
    CompilePolicy Policy;
    bool Precompile;
  };
  const Cfg Configs[] = {
      {"jit", CompilePolicy::Jit, false},
      {"falcon", CompilePolicy::Falcon, true},
      {"mcc", CompilePolicy::Mcc, true},
      {"spec", CompilePolicy::Speculative, true},
  };
  for (const Cfg &C : Configs) {
    Result Got = runPolicy(Name, C.Policy, C.Precompile);
    ASSERT_EQ(Ref.V.rows(), Got.V.rows()) << C.Label;
    ASSERT_EQ(Ref.V.cols(), Got.V.cols()) << C.Label;
    for (size_t I = 0, E = Ref.V.numel(); I != E; ++I) {
      EXPECT_DOUBLE_EQ(Ref.V.re(I), Got.V.re(I))
          << Name << " under " << C.Label << ", element " << I;
      EXPECT_DOUBLE_EQ(Ref.V.im(I), Got.V.im(I))
          << Name << " under " << C.Label << ", element " << I;
    }
    EXPECT_EQ(Ref.Output, Got.Output) << C.Label;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, CorpusSoundness,
    ::testing::ValuesIn([] {
      std::vector<std::string> Names;
      for (const BenchmarkSpec &Spec : benchmarkCorpus())
        Names.push_back(Spec.Name);
      return Names;
    }()),
    [](const ::testing::TestParamInfo<std::string> &Info) {
      return Info.param;
    });

//===----------------------------------------------------------------------===//
// Known-answer checks
//===----------------------------------------------------------------------===//

TEST(CorpusAnswers, Fibonacci) {
  Result R = runPolicy("fibonacci", CompilePolicy::Jit, false);
  EXPECT_DOUBLE_EQ(R.V.scalarValue(), 89); // fib(11)
}

TEST(CorpusAnswers, Ackermann) {
  Result R = runPolicy("ackermann", CompilePolicy::Jit, false);
  EXPECT_DOUBLE_EQ(R.V.scalarValue(), 9); // ackermann(2,3) = 2*3+3
}

TEST(CorpusAnswers, GalerkinConvergesToExactSolution) {
  // The summed nodal error of the FEM solution must be small.
  Result R = runPolicy("galrkn", CompilePolicy::Jit, false);
  EXPECT_LT(R.V.scalarValue(), 1e-2);
  EXPECT_GE(R.V.scalarValue(), 0);
}

TEST(CorpusAnswers, AdaptIntegratesTestFunction) {
  // integral_0^4 13(x - x^2) e^{-3x/2} dx = -1.54879 (computed with an
  // independent high-order quadrature).
  Result R = runPolicy("adapt", CompilePolicy::Jit, false);
  EXPECT_NEAR(R.V.scalarValue(), -1.548788, 1e-4);
}

TEST(CorpusAnswers, CgSolvesTheSystem) {
  // cgopt returns x with A x ~ b; for the tridiagonal system row sums give
  // x interior values near 1/2 scale; just check the residual via norm by
  // reconstructing in another engine run.
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.loadFile(mlibDirectory() + "/cgopt.m"));
  auto Rs = E.callFunction("cgopt", boxArgs({60, 40}), 1, SourceLoc());
  const Value &X = *Rs[0];
  ASSERT_EQ(X.rows(), 60u);
  // Interior equation: 4 x_i - x_{i-1} - x_{i+1} = 1.
  for (size_t I = 1; I + 1 < 60; ++I) {
    double Lhs = 4 * X.re(I) - X.re(I - 1) - X.re(I + 1);
    EXPECT_NEAR(Lhs, 1.0, 1e-6) << I;
  }
}

TEST(CorpusAnswers, MandelCountsBounded) {
  Result R = runPolicy("mandel", CompilePolicy::Jit, false);
  for (size_t I = 0; I != R.V.numel(); ++I) {
    EXPECT_GE(R.V.re(I), 0);
    EXPECT_LE(R.V.re(I), 30);
  }
  // The center of the set never escapes.
  EXPECT_DOUBLE_EQ(R.V.at(8, 7), 30);
}

TEST(CorpusAnswers, DirichletBoundariesPreserved) {
  Result R = runPolicy("dirich", CompilePolicy::Jit, false);
  const Value &U = R.V;
  EXPECT_DOUBLE_EQ(U.at(3, 0), 20);
  EXPECT_DOUBLE_EQ(U.at(3, U.cols() - 1), 180);
  EXPECT_DOUBLE_EQ(U.at(0, 3), 80);
  // Interior values stay within the boundary extremes.
  for (size_t I = 1; I + 1 < U.rows(); ++I)
    for (size_t J = 1; J + 1 < U.cols(); ++J) {
      EXPECT_GE(U.at(I, J), 0.0);
      EXPECT_LE(U.at(I, J), 180.0);
    }
}

TEST(CorpusFusion, ElidesTemporariesAcrossTheCorpus) {
  // The fusion pass must fire on real programs, not just synthetic chains:
  // compiling the corpus with concrete argument types has to elide at
  // least one elementwise temporary in at least four distinct benchmarks.
  std::vector<std::string> Programs;
  for (const BenchmarkSpec &Spec : benchmarkCorpus())
    Programs.push_back(Spec.Name);
  Programs.push_back("heavyball");
  std::vector<std::string> Fused;
  for (const std::string &Prog : Programs) {
    EngineOptions O;
    O.Policy = CompilePolicy::Falcon;
    O.BackgroundCompileThreads = 0;
    Engine E(O);
    ASSERT_TRUE(E.loadFile(mlibDirectory() + "/" + Prog + ".m"))
        << E.diagnostics();
    E.precompileWithArgs(Prog, boxArgs(testArgs().at(Prog)));
    for (const auto &[Name, Count] : E.sampleMetrics().Counters)
      if (Name == "fusion.temps_elided" && Count > 0)
        Fused.push_back(Prog);
  }
  std::string Names;
  for (const std::string &N : Fused)
    Names += N + " ";
  EXPECT_GE(Fused.size(), 4u) << "fused benchmarks: " << Names;
}

TEST(CorpusAnswers, HeavyBallSolvesTheSystemIdenticallyWhenFused) {
  // The vectorized companion program: its fused five-op update must solve
  // the same tridiagonal system cgopt does, and the JIT (which fuses the
  // update into one EwFuse loop) must match the interpreter bit for bit.
  Result Ref = runPolicy("heavyball", CompilePolicy::InterpretOnly, false);
  Result Jit = runPolicy("heavyball", CompilePolicy::Jit, false);
  ASSERT_EQ(Ref.V.numel(), 60u);
  ASSERT_EQ(Jit.V.numel(), 60u);
  for (size_t I = 0; I != 60; ++I)
    EXPECT_DOUBLE_EQ(Ref.V.re(I), Jit.V.re(I)) << I;
  // Interior equation of the system: 4 x_i - x_{i-1} - x_{i+1} = 1.
  for (size_t I = 1; I + 1 < 60; ++I) {
    double Lhs = 4 * Jit.V.re(I) - Jit.V.re(I - 1) - Jit.V.re(I + 1);
    EXPECT_NEAR(Lhs, 1.0, 1e-6) << I;
  }
}

TEST(CorpusMeta, TableOneMetadataComplete) {
  EXPECT_EQ(benchmarkCorpus().size(), 16u);
  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    EXPECT_FALSE(Spec.Description.empty()) << Spec.Name;
    EXPECT_GT(Spec.PaperLines, 0u) << Spec.Name;
    EXPECT_GT(Spec.PaperRuntime, 0.0) << Spec.Name;
    EXPECT_FALSE(Spec.Args.empty()) << Spec.Name;
    EXPECT_TRUE(testArgs().count(Spec.Name)) << Spec.Name;
  }
}

} // namespace
