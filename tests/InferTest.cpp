//===- tests/InferTest.cpp - Type inference and speculation -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"

#include "infer/Infer.h"
#include "infer/Speculate.h"
#include "infer/TypeCalculator.h"

#include <gtest/gtest.h>

using namespace majic;
using namespace majic::test;

namespace {

/// Infers types for the main function of \p Src with parameter types
/// \p Params.
struct Inferred {
  Inferred(const std::string &Src, std::vector<Type> Params = {},
           InferOptions Opts = InferOptions())
      : P(Src) {
    EXPECT_TRUE(P.ok());
    Info = P.info(P.module().mainFunction()->name());
    Result = inferTypes(*Info, TypeSignature(std::move(Params)), Opts);
  }

  Type slotType(const std::string &Name) {
    int Slot = Info->Symbols.lookup(Name);
    EXPECT_GE(Slot, 0) << Name;
    return Result.Ann.SlotSummary[Slot];
  }

  TestProgram P;
  FunctionInfo *Info;
  InferResult Result;
};

//===----------------------------------------------------------------------===//
// The type calculator
//===----------------------------------------------------------------------===//

TEST(TypeCalculator, RuleCountIsInPaperBallpark) {
  // Section 2.3.1: "Currently, MaJIC's type calculator contains about 250
  // rules."
  unsigned N = TypeCalculator::instance().numRules();
  EXPECT_GE(N, 150u);
  EXPECT_LE(N, 400u);
}

TEST(TypeCalculator, MulLadderMostRestrictiveFirst) {
  // The paper's '*' example: the calculator tries integer scalar multiply,
  // real scalar multiply, complex scalar multiply, ... generic complex
  // matrix multiply, in that order.
  const TypeCalculator &C = TypeCalculator::instance();
  Type IntS = Type::scalar(IntrinsicType::Int, Range::constant(2));
  Type RealS = Type::scalar(IntrinsicType::Real);
  Type CplxS = Type::scalar(IntrinsicType::Complex);
  Type RealM = Type::matrix(IntrinsicType::Real);
  Type CplxM = Type::matrix(IntrinsicType::Complex);
  Type RealCol = Type(IntrinsicType::Real, ShapeBound::bottom(),
                      ShapeBound{ShapeBound::kUnknownDim, 1}, Range::top());

  EXPECT_EQ(C.firedBinaryRule(rt::BinOp::MatMul, IntS, IntS),
            "mul:int-scalar");
  EXPECT_EQ(C.firedBinaryRule(rt::BinOp::MatMul, RealS, RealS),
            "mul:real-scalar");
  EXPECT_EQ(C.firedBinaryRule(rt::BinOp::MatMul, CplxS, CplxS),
            "mul:cplx-scalar");
  EXPECT_EQ(C.firedBinaryRule(rt::BinOp::MatMul, RealS, RealM),
            "mul:scalar-array");
  EXPECT_EQ(C.firedBinaryRule(rt::BinOp::MatMul, RealM, RealCol),
            "mul:dgemv");
  EXPECT_EQ(C.firedBinaryRule(rt::BinOp::MatMul, RealM, RealM),
            "mul:real-matmul");
  EXPECT_EQ(C.firedBinaryRule(rt::BinOp::MatMul, CplxM, RealM),
            "mul:cplx-matmul");
}

TEST(TypeCalculator, DefaultRuleYieldsTop) {
  const TypeCalculator &C = TypeCalculator::instance();
  Type Str(IntrinsicType::String, ShapeBound::bottom(), ShapeBound::top(),
           Range::top());
  Type R = C.binary(rt::BinOp::MatMul, Str, Str, InferOptions());
  EXPECT_EQ(R.intrinsic(), IntrinsicType::Top);
}

TEST(TypeCalculator, MonotonicOnSamples) {
  // Monotonicity (required by the dataflow framework): growing an input
  // never shrinks the output.
  const TypeCalculator &C = TypeCalculator::instance();
  InferOptions Opts;
  std::vector<Type> Chain = {
      Type::scalar(IntrinsicType::Int, Range::constant(2)),
      Type::scalar(IntrinsicType::Int, Range::interval(0, 10)),
      Type::scalar(IntrinsicType::Real),
      Type::scalar(IntrinsicType::Complex),
      Type::top(),
  };
  for (rt::BinOp Op : {rt::BinOp::Add, rt::BinOp::MatMul, rt::BinOp::Lt}) {
    for (size_t I = 0; I + 1 < Chain.size(); ++I) {
      for (const Type &Other : Chain) {
        Type RSmall = C.binary(Op, Chain[I], Other, Opts);
        Type RBig = C.binary(Op, Chain[I + 1], Other, Opts);
        EXPECT_TRUE(RSmall.le(RBig))
            << rt::binOpName(Op) << ": " << RSmall.str() << " vs "
            << RBig.str();
      }
    }
  }
}

TEST(TypeCalculator, SqrtDomainRules) {
  const TypeCalculator &C = TypeCalculator::instance();
  InferOptions Opts;
  Type NonNeg = Type::scalar(IntrinsicType::Real, Range::interval(0, 100));
  Type AnyReal = Type::scalar(IntrinsicType::Real);
  Type Negative = Type::scalar(IntrinsicType::Real, Range::interval(-9, -9));
  // Proven domain: real, with a tight range.
  Type R1 = C.builtin("sqrt", {{NonNeg}}, 1, Opts).front();
  EXPECT_EQ(R1.intrinsic(), IntrinsicType::Real);
  EXPECT_DOUBLE_EQ(R1.range().Hi, 10);
  // Unknown domain, optimistic mode (default): stays real under a runtime
  // deoptimization guard.
  Type R2 = C.builtin("sqrt", {{AnyReal}}, 1, Opts).front();
  EXPECT_EQ(R2.intrinsic(), IntrinsicType::Real);
  // Provably negative input never stays real, even optimistically.
  Type R3 = C.builtin("sqrt", {{Negative}}, 1, Opts).front();
  EXPECT_EQ(R3.intrinsic(), IntrinsicType::Complex);
  // Pessimistic mode: unknown domains escalate.
  InferOptions Pessimistic;
  Pessimistic.OptimisticRealMath = false;
  Type R4 = C.builtin("sqrt", {{AnyReal}}, 1, Pessimistic).front();
  EXPECT_EQ(R4.intrinsic(), IntrinsicType::Complex);
}

//===----------------------------------------------------------------------===//
// JIT inference (Section 2.4)
//===----------------------------------------------------------------------===//

TEST(Infer, ConstantPropagationThroughArithmetic) {
  Inferred I("function y = f(n)\nm = n + 1;\ny = m * 2;\n",
             {Type::constant(10)});
  auto C = I.slotType("y").constantValue();
  ASSERT_TRUE(C.has_value());
  EXPECT_DOUBLE_EQ(*C, 22);
}

TEST(Infer, ExactShapeFromZeros) {
  // "In the statement A = zeros(m,n), the value ranges of m and n may
  // uniquely determine the shape of A" (Section 2.4).
  Inferred I("function y = f(n)\nA = zeros(n, n);\ny = A;\n",
             {Type::constant(134)});
  auto S = I.slotType("A").exactShape();
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Rows, 134u);
  EXPECT_EQ(S->Cols, 134u);
}

TEST(Infer, IndexAssignGrowsShapeFromIndexRange) {
  // "In array assignments of the form A(i)=..., the range of the index can
  // determine the shape of the array A" (Section 2.4).
  Inferred I("function y = f(n)\nx = 0;\nfor k = 1:n\nx(k) = k;\nend\ny = x;\n",
             {Type::constant(50)});
  Type X = I.slotType("x");
  EXPECT_EQ(X.maxShape().Cols, 50u);
}

TEST(Infer, LoopVariableRangeFromColon) {
  Inferred I("function y = f(n)\ns = 0;\nfor k = 2:n-1\ns = s + k;\nend\ny = "
             "s;\n",
             {Type::constant(100)});
  Type K = I.slotType("k");
  EXPECT_TRUE(K.isScalar());
  EXPECT_EQ(K.intrinsic(), IntrinsicType::Int);
  EXPECT_DOUBLE_EQ(K.range().Lo, 2);
  EXPECT_DOUBLE_EQ(K.range().Hi, 99);
}

TEST(Infer, SubscriptCheckRemoval) {
  // The loop index provably stays within the array created by zeros(n,1):
  // all reads inside the loop need no subscript checks.
  Inferred I("function s = f(n)\nA = zeros(n, 1);\nfor k = 1:n\nA(k) = "
             "k;\nend\ns = 0;\nfor k = 1:n\ns = s + A(k);\nend\n",
             {Type::constant(64)});
  EXPECT_GE(I.Result.Ann.SafeSubscripts.size(), 1u);
  // And the write is proven in-bounds too.
  bool AnyInBoundsWrite = false;
  for (const auto &[S, WF] : I.Result.Ann.Writes)
    AnyInBoundsWrite |= WF.InBounds;
  EXPECT_TRUE(AnyInBoundsWrite);
}

TEST(Infer, NoRangesDisablesCheckRemoval) {
  // The Figure 7 "no ranges" ablation.
  InferOptions Opts;
  Opts.EnableRanges = false;
  Inferred I("function s = f(n)\nA = zeros(n, 1);\ns = 0;\nfor k = 1:n\ns = s "
             "+ A(k);\nend\n",
             {Type::constant(64)}, Opts);
  EXPECT_TRUE(I.Result.Ann.SafeSubscripts.empty());
  EXPECT_FALSE(I.slotType("n").range().isConstant());
}

TEST(Infer, NoMinShapesDropsLowerBounds) {
  InferOptions Opts;
  Opts.EnableMinShapes = false;
  Inferred I("function y = f(n)\nA = zeros(3, 3);\ny = A;\n",
             {Type::constant(5)}, Opts);
  EXPECT_FALSE(I.slotType("A").exactShape().has_value());
  EXPECT_EQ(I.slotType("A").maxShape().Rows, 3u);
}

TEST(Infer, SmallVectorLiteralHasExactShape) {
  Inferred I("function y = f(a, b)\nv = [a b 2*a];\ny = v;\n",
             {Type::scalar(IntrinsicType::Real),
              Type::scalar(IntrinsicType::Real)});
  auto S = I.slotType("v").exactShape();
  ASSERT_TRUE(S.has_value());
  EXPECT_EQ(S->Rows, 1u);
  EXPECT_EQ(S->Cols, 3u);
}

TEST(Infer, ComplexStaysComplex) {
  Inferred I("function y = f(c)\nz = 0;\nfor k = 1:3\nz = z*z + c;\nend\ny = "
             "z;\n",
             {Type::scalar(IntrinsicType::Complex)});
  EXPECT_EQ(I.slotType("z").intrinsic(), IntrinsicType::Complex);
  EXPECT_TRUE(I.slotType("z").isScalar());
}

TEST(Infer, SqrtOfSumOfSquaresStaysReal) {
  // Interval arithmetic proves x^2 + y^2 >= 0, so sqrt stays real — the
  // fact that keeps orbec/orbrk on the fast path.
  Inferred I("function r = f(x, y)\nr = sqrt(x^2 + y^2);\n",
             {Type::scalar(IntrinsicType::Real),
              Type::scalar(IntrinsicType::Real)});
  EXPECT_EQ(I.slotType("r").intrinsic(), IntrinsicType::Real);
}

TEST(Infer, SqrtOfUnknownMayBeComplex) {
  // Pessimistic inference (used after a deoptimization) escalates.
  InferOptions Pessimistic;
  Pessimistic.OptimisticRealMath = false;
  Inferred I("function r = f(x)\nr = sqrt(x);\n",
             {Type::scalar(IntrinsicType::Real)}, Pessimistic);
  EXPECT_EQ(I.slotType("r").intrinsic(), IntrinsicType::Complex);
  // Optimistic (default) inference keeps it real, guarded at runtime.
  Inferred IOpt("function r = f(x)\nr = sqrt(x);\n",
                {Type::scalar(IntrinsicType::Real)});
  EXPECT_EQ(IOpt.slotType("r").intrinsic(), IntrinsicType::Real);
}

TEST(Infer, BranchJoinWidensType) {
  Inferred I("function y = f(c)\nif c > 0\nx = 1;\nelse\nx = 2.5;\nend\ny = "
             "x;\n",
             {Type::scalar(IntrinsicType::Real)});
  Type X = I.slotType("y");
  EXPECT_EQ(X.intrinsic(), IntrinsicType::Real);
  EXPECT_DOUBLE_EQ(X.range().Lo, 1);
  EXPECT_DOUBLE_EQ(X.range().Hi, 2.5);
}

TEST(Infer, WideningTerminatesGrowingLoop) {
  // x grows without bound; the iteration cap must widen and terminate.
  Inferred I("function y = f(n)\nx = 0;\nwhile x < n\nx = x + 1;\nend\ny = "
             "x;\n",
             {Type::scalar(IntrinsicType::Real)});
  EXPECT_TRUE(I.slotType("x").isScalar());
  EXPECT_TRUE(intrinsicLE(I.slotType("x").intrinsic(), IntrinsicType::Real));
}

TEST(Infer, GenericSignatureStaysSound) {
  // With top parameters everything flows to coarse types, never bottom.
  Inferred I("function y = f(a, b)\ny = a * b + 1;\n",
             {Type::top(), Type::top()});
  EXPECT_FALSE(I.slotType("y").isBottom());
}

TEST(Infer, ConservativeVsRuntime) {
  // Dynamic values observed at runtime are subtypes of the inferred
  // annotations (the soundness invariant of Section 2.3).
  std::string Src = "function y = f(n)\n"
                    "A = zeros(n, 1);\n"
                    "for k = 1:n\nA(k) = sqrt(k);\nend\n"
                    "y = sum(A);\n";
  Inferred I(Src, {Type::constant(10)});

  TestProgram P(Src);
  auto Rs = P.run({makeValue(Value::intScalar(10))}, 1);
  Type RuntimeT = Type::ofValue(*Rs[0]);
  EXPECT_TRUE(RuntimeT.le(I.slotType("y").join(RuntimeT)));
  // And y's static type admits the dynamic value directly.
  EXPECT_TRUE(RuntimeT.le(I.slotType("y")))
      << RuntimeT.str() << " not <= " << I.slotType("y").str();
}

//===----------------------------------------------------------------------===//
// Speculation (Section 2.5)
//===----------------------------------------------------------------------===//

TEST(Speculate, ColonHintMakesLoopBoundIntScalar) {
  TestProgram P("function s = f(n)\ns = 0;\nfor k = 1:n\ns = s + k;\nend\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Sig = speculateSignature(*P.info("f"));
  ASSERT_EQ(Sig.size(), 1u);
  EXPECT_TRUE(Sig[0].isScalar());
  EXPECT_EQ(Sig[0].intrinsic(), IntrinsicType::Int);
}

TEST(Speculate, CreatorArgHint) {
  TestProgram P("function A = f(m, n)\nA = zeros(m, n);\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Sig = speculateSignature(*P.info("f"));
  EXPECT_EQ(Sig[0].intrinsic(), IntrinsicType::Int);
  EXPECT_TRUE(Sig[1].isScalar());
}

TEST(Speculate, RelationalHintIsRealScalar) {
  TestProgram P("function y = f(x)\nif x > 0\ny = 1;\nelse\ny = 2;\nend\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Sig = speculateSignature(*P.info("f"));
  EXPECT_TRUE(Sig[0].isScalar());
  EXPECT_TRUE(intrinsicLE(Sig[0].intrinsic(), IntrinsicType::Real));
}

TEST(Speculate, F77SubscriptHint) {
  TestProgram P("function y = f(A, k)\ny = A(k);\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Sig = speculateSignature(*P.info("f"));
  // k is hinted integer scalar; A gets no hint (stays top).
  EXPECT_EQ(Sig[1].intrinsic(), IntrinsicType::Int);
  EXPECT_EQ(Sig[0].intrinsic(), IntrinsicType::Top);
}

TEST(Speculate, F90StyleSuppressesSubscriptHint) {
  TestProgram P("function y = f(A, k)\ny = A(1:k);\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Sig = speculateSignature(*P.info("f"));
  // 1:k is a colon context: k still gets the colon hint (int scalar), but
  // through the range rule rather than the subscript rule.
  EXPECT_EQ(Sig[1].intrinsic(), IntrinsicType::Int);
}

TEST(Speculate, HintsChainThroughAssignments) {
  // n flows into m, and m is a loop bound: the hint reaches n.
  TestProgram P("function s = f(n)\nm = n;\ns = 0;\nfor k = 1:m\ns = s + "
                "k;\nend\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Sig = speculateSignature(*P.info("f"));
  EXPECT_TRUE(Sig[0].isScalar());
  EXPECT_EQ(Sig[0].intrinsic(), IntrinsicType::Int);
}

TEST(Speculate, MatrixArgsStayTop) {
  // qmr/mei-style code: matrix-valued parameters collect no hints, so the
  // speculative signature stays generic for them (the Section 3.6 failure
  // mode reproduced).
  TestProgram P("function y = f(A, b)\ny = A * b;\ny = y + A \\ b;\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Sig = speculateSignature(*P.info("f"));
  EXPECT_EQ(Sig[0].intrinsic(), IntrinsicType::Top);
  EXPECT_EQ(Sig[1].intrinsic(), IntrinsicType::Top);
}

TEST(Speculate, GuessIsSafeForMatchingInvocation) {
  TestProgram P("function s = f(n)\ns = 0;\nfor k = 1:n\ns = s + k;\nend\n");
  ASSERT_TRUE(P.ok());
  TypeSignature Spec = speculateSignature(*P.info("f"));
  // A typical scalar invocation is accepted...
  TypeSignature IntCall({Type::ofValue(Value::intScalar(100))});
  EXPECT_TRUE(IntCall.safeFor(Spec));
  // ...a matrix invocation is rejected (the repository then falls back to
  // the JIT).
  TypeSignature MatCall({Type::ofValue(Value::zeros(3, 3))});
  EXPECT_FALSE(MatCall.safeFor(Spec));
}

} // namespace
