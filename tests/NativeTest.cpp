//===- tests/NativeTest.cpp - The native third tier ------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The native execution tier: C emission compiled by the system compiler,
// loaded with dlopen, promoted by hotness, persisted beside the .mjo files,
// and - above all - never able to change a program's results or crash the
// engine, whatever happens to the compiler or the cached shared objects.
//
// Every test that needs a real C compiler probes for one first and skips
// when the host has none; the fallback tests run everywhere.
//
//===----------------------------------------------------------------------===//

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "backend/CEmitter.h"
#include "backend/Compiler.h"
#include "engine/Corpus.h"
#include "engine/Engine.h"
#include "native/NativeCompiler.h"
#include "repo/RepoStore.h"
#include "support/Error.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace majic;
namespace fs = std::filesystem;

namespace {

bool hostCompilerAvailable() {
  static const bool Available = native::NativeCompiler("cc").available();
  return Available;
}

//===----------------------------------------------------------------------===//
// Golden corpus sweep: every benchmark's emitted C must survive the real
// compiler at -std=c11 -Wall -Werror and load through the fixed ABI.
//===----------------------------------------------------------------------===//

struct Compiled {
  SourceManager SM;
  Diagnostics Diags;
  std::unique_ptr<Module> Mod;
  std::unique_ptr<FunctionInfo> Info;
  std::unique_ptr<IRFunction> Code;
  TypeSignature Sig;

  Compiled(const std::string &Src, std::vector<Type> Params) {
    Mod = parseModule("t", Src, SM, Diags);
    EXPECT_NE(Mod, nullptr) << Diags.render(SM);
    Info = disambiguate(*Mod->mainFunction(), *Mod);
    Sig = TypeSignature(std::move(Params));
    InferResult R = inferTypes(*Info, Sig);
    CodeGenOptions CG;
    CG.Mode = CodeGenMode::Optimized;
    Code = generateCode(*Info, R.Ann, Sig, CG);
    EXPECT_NE(Code, nullptr);
  }
};

TEST(NativeGolden, EveryCorpusBenchmarkCompilesAndLoads) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  native::NativeCompiler NC("cc");
  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    std::ifstream In(mlibDirectory() + "/" + Spec.Name + ".m");
    std::stringstream SS;
    SS << In.rdbuf();
    std::vector<Type> Params;
    for (double A : Spec.Args)
      Params.push_back(A == static_cast<long long>(A)
                           ? Type::scalar(IntrinsicType::Int)
                           : Type::scalar(IntrinsicType::Real));
    Compiled C(SS.str(), std::move(Params));
    std::string Src = emitCSource(*C.Code, C.Sig);
    // -Wall -Werror is part of the compile() invocation: any warning in
    // the emitted C fails this sweep.
    std::vector<uint8_t> So;
    std::unique_ptr<native::NativeModule> Mod;
    try {
      So = NC.compile(Src, Spec.Name);
      Mod = native::NativeCompiler::load(So, Spec.Name, C.Code->NumOuts);
    } catch (MatlabError &ME) {
      FAIL() << Spec.Name << ": " << ME.message();
    }
    EXPECT_GT(So.size(), 0u) << Spec.Name;
    ASSERT_NE(Mod, nullptr) << Spec.Name;
    EXPECT_NE(Mod->entry(), nullptr) << Spec.Name;
    EXPECT_EQ(Mod->numOuts(), C.Code->NumOuts) << Spec.Name;
  }
}

//===----------------------------------------------------------------------===//
// Engine tiering
//===----------------------------------------------------------------------===//

class NativeEngineTest : public ::testing::Test {
protected:
  void SetUp() override {
    faults::reset();
    Dir = fs::temp_directory_path() /
          ("majic_native_" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(Dir);
  }
  void TearDown() override {
    faults::reset();
    fs::remove_all(Dir);
  }

  /// Deterministic native session: JIT policy, no worker pool (compiles,
  /// saves, and native builds all run synchronously on the engine thread).
  EngineOptions nativeOpts(unsigned HotThreshold = 1) {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.BackgroundCompileThreads = 0;
    O.RepoDir = Dir.string();
    O.NativeTier = true;
    O.NativeHotThreshold = HotThreshold;
    return O;
  }

  std::vector<fs::path> filesWith(const std::string &Ext) {
    std::vector<fs::path> Out;
    if (!fs::exists(Dir))
      return Out;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().extension() == Ext)
        Out.push_back(E.path());
    return Out;
  }

  fs::path Dir;
};

ValuePtr intArg(double X) { return makeValue(Value::intScalar(X)); }

const char *kHotSource = "function y = hot(x)\n"
                         "y = 0;\n"
                         "for k = 1:x\n"
                         "y = y + k * k;\n"
                         "end\n";
const double kHotArg = 10;
const double kHotExpect = 385; // sum of squares 1..10

TEST_F(NativeEngineTest, HotFunctionPromotesAndMatchesVm) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  Engine E(nativeOpts(/*HotThreshold=*/2));
  ASSERT_TRUE(E.addSource("hot", kHotSource));

  // First call: below the hotness threshold, VM only.
  auto R1 = E.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R1[0]->scalarValue(), kHotExpect);
  EXPECT_EQ(E.nativeCompiles(), 0u);
  EXPECT_EQ(E.nativeHits(), 0u);

  // Second call crosses the threshold: one native compile, served native,
  // bit-identical answer.
  auto R2 = E.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R2[0]->scalarValue(), kHotExpect);
  EXPECT_EQ(E.nativeCompiles(), 1u);
  EXPECT_EQ(E.nativeHits(), 1u);
  EXPECT_EQ(E.nativeFailures(), 0u);
  EXPECT_EQ(E.nativeDeopts(), 0u);

  // Third call reuses the loaded module: still exactly one compile.
  E.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
  EXPECT_EQ(E.nativeCompiles(), 1u);
  EXPECT_EQ(E.nativeHits(), 2u);

  // The shared object was persisted beside the .mjo.
  EXPECT_EQ(E.repoStoreStats().NativeSaved, 1u);
  EXPECT_EQ(filesWith(".mjn").size(), 1u);

  // The profile records the tier.
  bool Profiled = false;
  for (const obs::FunctionProfile &P : E.profiles())
    if (P.Name == "hot") {
      Profiled = true;
      EXPECT_EQ(P.NativeRuns, 2u);
    }
  EXPECT_TRUE(Profiled);
}

TEST_F(NativeEngineTest, WarmStartRunsNativeWithZeroCompilerInvocations) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  {
    Engine Cold(nativeOpts());
    ASSERT_TRUE(Cold.addSource("hot", kHotSource));
    auto R = Cold.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
    ASSERT_DOUBLE_EQ(R[0]->scalarValue(), kHotExpect);
    ASSERT_EQ(Cold.nativeCompiles(), 1u);
    ASSERT_EQ(Cold.repoStoreStats().NativeSaved, 1u);
  }

  Engine Warm(nativeOpts());
  EXPECT_EQ(Warm.repoStoreStats().NativeLoaded, 1u);
  ASSERT_TRUE(Warm.addSource("hot", kHotSource));
  EXPECT_EQ(Warm.nativeFailures(), 0u);

  // First warm call: served native straight from disk - no JIT compile,
  // no C compiler invocation, same answer.
  auto R = Warm.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kHotExpect);
  EXPECT_EQ(Warm.nativeCompiles(), 0u);
  EXPECT_EQ(Warm.nativeHits(), 1u);
  EXPECT_EQ(Warm.jitCompiles(), 0u);
}

TEST_F(NativeEngineTest, SourceDriftDiscardsNativeEntry) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  {
    Engine Cold(nativeOpts());
    ASSERT_TRUE(Cold.addSource("hot", kHotSource));
    Cold.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
    ASSERT_EQ(Cold.repoStoreStats().NativeSaved, 1u);
  }

  // Changed .m text: the cached .so was compiled from different source and
  // must not run, however valid its bytes.
  Engine Warm(nativeOpts());
  ASSERT_TRUE(Warm.addSource("hot", "function y = hot(x)\ny = x + 1;\n"));
  auto R = Warm.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kHotArg + 1);
  // The stale module was discarded and the new source compiled fresh.
  EXPECT_EQ(Warm.nativeCompiles(), 1u);
  EXPECT_EQ(Warm.nativeHits(), 1u);
}

TEST_F(NativeEngineTest, TamperedNativeEntryQuarantinedAndRecompiled) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  {
    Engine Cold(nativeOpts());
    ASSERT_TRUE(Cold.addSource("hot", kHotSource));
    Cold.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
    ASSERT_EQ(Cold.repoStoreStats().NativeSaved, 1u);
  }

  // Flip one byte in the middle of the .mjn: the CRC must catch it.
  auto Files = filesWith(".mjn");
  ASSERT_EQ(Files.size(), 1u);
  {
    std::fstream F(Files[0], std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(static_cast<std::streamoff>(fs::file_size(Files[0])) / 2);
    F.put('\xa5');
  }

  Engine Warm(nativeOpts());
  EXPECT_EQ(Warm.repoStoreStats().NativeLoaded, 0u);
  EXPECT_EQ(Warm.repoStoreStats().NativeQuarantined, 1u);
  ASSERT_TRUE(Warm.addSource("hot", kHotSource));
  auto R = Warm.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kHotExpect);
  // Quarantined, then recompiled natively - the tier self-heals.
  EXPECT_EQ(Warm.nativeCompiles(), 1u);
  EXPECT_FALSE(filesWith(".corrupt").empty());
}

TEST_F(NativeEngineTest, MissingCompilerFallsBackToVm) {
  // No skip here: this must pass on compiler-less hosts too.
  EngineOptions O = nativeOpts();
  O.NativeCC = "/nonexistent/majic-cc";
  Engine E(O);
  EXPECT_FALSE(E.nativeTierAvailable());
  ASSERT_TRUE(E.addSource("hot", kHotSource));
  for (int I = 0; I != 3; ++I) {
    auto R = E.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
    EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kHotExpect);
  }
  EXPECT_EQ(E.nativeCompiles(), 0u);
  EXPECT_EQ(E.nativeHits(), 0u);
  // Nothing bogus persisted either.
  EXPECT_EQ(E.repoStoreStats().NativeSaved, 0u);
  EXPECT_TRUE(filesWith(".mjn").empty());
}

TEST_F(NativeEngineTest, NativeErrorTextMatchesVm) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  const char *Src = "function y = oob(x)\n"
                    "A = zeros(3, 1);\n"
                    "for k = 1:3\nA(k) = k;\nend\n"
                    "y = A(x);\n";

  auto errorText = [&](EngineOptions O) {
    Engine E(std::move(O));
    EXPECT_TRUE(E.addSource("oob", Src));
    // Warm the tier on a valid index first, then trip the bad one.
    E.callFunction("oob", {intArg(2)}, 1, SourceLoc());
    try {
      E.callFunction("oob", {intArg(10)}, 1, SourceLoc());
    } catch (MatlabError &ME) {
      return ME.message();
    }
    return std::string("<no error>");
  };

  EngineOptions Vm;
  Vm.Policy = CompilePolicy::Jit;
  Vm.BackgroundCompileThreads = 0;
  std::string VmMsg = errorText(std::move(Vm));
  std::string NativeMsg = errorText(nativeOpts());
  EXPECT_NE(VmMsg, "<no error>");
  EXPECT_EQ(NativeMsg, VmMsg);
}

TEST_F(NativeEngineTest, InjectedFaultsDegradeToVmSilently) {
  if (!hostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  for (faults::Site Site : {faults::Site::NativeCompile,
                            faults::Site::NativeLoad, faults::Site::NativeRun}) {
    faults::reset();
    faults::armEvery(Site, 1);
    fs::remove_all(Dir);
    Engine E(nativeOpts());
    ASSERT_TRUE(E.addSource("hot", kHotSource));
    for (int I = 0; I != 3; ++I) {
      auto R = E.callFunction("hot", {intArg(kHotArg)}, 1, SourceLoc());
      EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kHotExpect)
          << faults::siteName(Site);
    }
    // However the fault lands, the answer is right and nothing escapes.
    // The failed version is quarantined, not retried on every call.
    EXPECT_GT(faults::stats(Site).Fired, 0u) << faults::siteName(Site);
    EXPECT_GT(E.nativeFailures() + E.nativeDeopts(), 0u)
        << faults::siteName(Site);
    faults::reset();
  }
}

//===----------------------------------------------------------------------===//
// The .mjn validation ladder, store-level
//===----------------------------------------------------------------------===//

class NativeStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    faults::reset();
    Dir = fs::temp_directory_path() /
          ("majic_mjn_" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(Dir);
  }
  void TearDown() override {
    faults::reset();
    fs::remove_all(Dir);
  }

  TypeSignature sig() { return TypeSignature({Type::scalar(IntrinsicType::Int)}); }

  /// A store with one saved native entry under stamp extra \p Extra.
  void saveOne(uint64_t Extra, const std::string &So = "\x7f""ELF-not-really") {
    RepoStore S(Dir.string());
    S.setNativeStampExtra(Extra);
    ASSERT_TRUE(S.saveNative("ff", sig(), 1, So, /*SourceHash=*/12345));
  }

  fs::path onlyMjn() {
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".mjn")
        return E.path();
    return {};
  }

  bool anyCorrupt() {
    if (!fs::exists(Dir))
      return false;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".corrupt")
        return true;
    return false;
  }

  fs::path Dir;
};

TEST_F(NativeStoreTest, RoundTrip) {
  saveOne(7, std::string("so-bytes\0with-nul", 17));
  RepoStore S(Dir.string());
  S.setNativeStampExtra(7);
  auto Entries = S.loadAllNative();
  ASSERT_EQ(Entries.size(), 1u);
  EXPECT_EQ(Entries[0].FunctionName, "ff");
  EXPECT_EQ(Entries[0].NumOuts, 1u);
  EXPECT_EQ(Entries[0].SourceHash, 12345u);
  EXPECT_EQ(Entries[0].SoBytes, std::string("so-bytes\0with-nul", 17));
  EXPECT_EQ(S.stats().NativeLoaded, 1u);
}

TEST_F(NativeStoreTest, BitFlipQuarantines) {
  saveOne(7);
  fs::path P = onlyMjn();
  ASSERT_FALSE(P.empty());
  {
    std::fstream F(P, std::ios::in | std::ios::out | std::ios::binary);
    F.seekp(static_cast<std::streamoff>(fs::file_size(P)) - 3);
    F.put('\x5a');
  }
  RepoStore S(Dir.string());
  S.setNativeStampExtra(7);
  EXPECT_TRUE(S.loadAllNative().empty());
  EXPECT_EQ(S.stats().NativeQuarantined, 1u);
  EXPECT_TRUE(anyCorrupt());
  EXPECT_TRUE(onlyMjn().empty()); // renamed away, never served again
}

TEST_F(NativeStoreTest, TruncationQuarantines) {
  saveOne(7);
  fs::path P = onlyMjn();
  ASSERT_FALSE(P.empty());
  fs::resize_file(P, 10);
  RepoStore S(Dir.string());
  S.setNativeStampExtra(7);
  EXPECT_TRUE(S.loadAllNative().empty());
  EXPECT_EQ(S.stats().NativeQuarantined, 1u);
  EXPECT_TRUE(anyCorrupt());
}

TEST_F(NativeStoreTest, GarbageFileQuarantines) {
  fs::create_directories(Dir);
  std::ofstream(Dir / "junk.0000.mjn") << "this was never a native entry";
  RepoStore S(Dir.string());
  S.setNativeStampExtra(7);
  EXPECT_TRUE(S.loadAllNative().empty());
  EXPECT_EQ(S.stats().NativeQuarantined, 1u);
  EXPECT_TRUE(anyCorrupt());
}

TEST_F(NativeStoreTest, StampSkewDiscardsQuietly) {
  saveOne(/*Extra=*/7);
  // A different stamp extra models an ABI bump or a compiler upgrade: the
  // entry is plausible bytes from the wrong world - dropped, not
  // quarantined, and the file removed so it is not re-judged every start.
  RepoStore S(Dir.string());
  S.setNativeStampExtra(8);
  EXPECT_TRUE(S.loadAllNative().empty());
  EXPECT_EQ(S.stats().NativeSkewed, 1u);
  EXPECT_EQ(S.stats().NativeQuarantined, 0u);
  EXPECT_FALSE(anyCorrupt());
  EXPECT_TRUE(onlyMjn().empty());
}

TEST_F(NativeStoreTest, SharedWritableDirRefusesNativePayloads) {
  saveOne(7);
  // A group- or world-writable store directory means CRC-valid bytes could
  // have been planted by another user; dlopen'ing them would be code
  // execution, so both native save and native load must refuse. The .mjn
  // file is left untouched (it may be legitimate - just unprovable).
  fs::permissions(Dir, fs::perms::owner_all | fs::perms::group_all |
                           fs::perms::others_read | fs::perms::others_exec);
  {
    RepoStore S(Dir.string());
    S.setNativeStampExtra(7);
    EXPECT_FALSE(S.nativeTrusted());
    EXPECT_TRUE(S.loadAllNative().empty());
    EXPECT_EQ(S.stats().NativeUntrusted, 1u);
    EXPECT_EQ(S.stats().NativeLoaded, 0u);
    EXPECT_EQ(S.stats().NativeQuarantined, 0u);
    EXPECT_FALSE(S.saveNative("gg", sig(), 1, "bytes", 1));
    EXPECT_FALSE(anyCorrupt());
    EXPECT_FALSE(onlyMjn().empty());
  }
  // Tightening the permissions restores the tier: same bytes, now loadable.
  fs::permissions(Dir, fs::perms::owner_all);
  RepoStore S(Dir.string());
  S.setNativeStampExtra(7);
  EXPECT_TRUE(S.nativeTrusted());
  EXPECT_EQ(S.loadAllNative().size(), 1u);
}

TEST_F(NativeStoreTest, EraseNativeLeavesMjoAlone) {
  saveOne(7);
  fs::create_directories(Dir);
  std::ofstream(Dir / "ff.deadbeef.mjo") << "unrelated payload kind";
  RepoStore S(Dir.string());
  S.eraseNative("ff");
  EXPECT_TRUE(onlyMjn().empty());
  EXPECT_TRUE(fs::exists(Dir / "ff.deadbeef.mjo"));
}

TEST_F(NativeStoreTest, SaveFaultFailsSoft) {
  RepoStore S(Dir.string());
  S.setNativeStampExtra(7);
  faults::armEvery(faults::Site::RepoSave, 1);
  EXPECT_FALSE(S.saveNative("ff", sig(), 1, "so", 1));
  faults::reset();
  EXPECT_EQ(S.stats().NativeSaveFailures, 1u);
  EXPECT_TRUE(onlyMjn().empty());
}

} // namespace
