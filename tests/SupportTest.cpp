//===- tests/SupportTest.cpp - Support utilities -------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "repo/Repository.h"
#include "repo/Snooper.h"
#include "support/Diagnostics.h"
#include "support/Rng.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>

using namespace majic;

namespace {

//===----------------------------------------------------------------------===//
// Strings
//===----------------------------------------------------------------------===//

TEST(StringUtils, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(format("%.2f", 1.0 / 3), "0.33");
  EXPECT_EQ(format("empty"), "empty");
}

TEST(StringUtils, Split) {
  auto Parts = splitString("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(splitString("", ',').size(), 1u);
}

TEST(StringUtils, EndsWith) {
  EXPECT_TRUE(endsWith("foo.m", ".m"));
  EXPECT_FALSE(endsWith("foo.mat", ".m"));
  EXPECT_FALSE(endsWith("m", ".m"));
}

TEST(StringUtils, FormatDouble) {
  EXPECT_EQ(formatDouble(42), "42");
  EXPECT_EQ(formatDouble(-3), "-3");
  EXPECT_EQ(formatDouble(2.5), "2.5");
  EXPECT_EQ(formatDouble(1e20), "1e+20");
}

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(Rng, DeterministicPerSeed) {
  Rng A(123), B(123), C(124);
  for (int I = 0; I != 100; ++I) {
    uint64_t X = A.nextU64();
    EXPECT_EQ(X, B.nextU64());
  }
  EXPECT_NE(A.nextU64(), C.nextU64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng R(9);
  double Min = 1, Max = 0;
  for (int I = 0; I != 10000; ++I) {
    double X = R.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  EXPECT_LT(Min, 0.05); // spreads over the interval
  EXPECT_GT(Max, 0.95);
}

TEST(Rng, ReseedRestartsStream) {
  Rng R(7);
  uint64_t First = R.nextU64();
  R.nextU64();
  R.reseed(7);
  EXPECT_EQ(R.nextU64(), First);
}

//===----------------------------------------------------------------------===//
// Diagnostics and source locations
//===----------------------------------------------------------------------===//

TEST(Diagnostics, CollectsAndRenders) {
  SourceManager SM;
  uint32_t Id = SM.addBuffer("f.m", "x = 1;\n");
  Diagnostics D;
  D.error({Id, 1, 5}, "bad thing");
  D.warning({Id, 1, 1}, "odd thing");
  EXPECT_TRUE(D.hasErrors());
  EXPECT_EQ(D.numErrors(), 1u);
  std::string Text = D.render(SM);
  EXPECT_NE(Text.find("f.m:1:5: error: bad thing"), std::string::npos);
  EXPECT_NE(Text.find("warning: odd thing"), std::string::npos);
  D.clear();
  EXPECT_FALSE(D.hasErrors());
}

TEST(SourceManager, DescribeUnknown) {
  SourceManager SM;
  EXPECT_EQ(SM.describe(SourceLoc()), "<unknown>");
}

TEST(PhaseTimes, AccumulatesAndNames) {
  PhaseTimes P;
  P.add(Phase::Parse, 0.5);
  P.add(Phase::Parse, 0.25);
  P.add(Phase::Execute, 1.0);
  EXPECT_DOUBLE_EQ(P.get(Phase::Parse), 0.75);
  EXPECT_DOUBLE_EQ(P.total(), 1.75);
  EXPECT_STREQ(PhaseTimes::phaseName(Phase::TypeInference), "typeinf");
  P.clear();
  EXPECT_DOUBLE_EQ(P.total(), 0);
}

//===----------------------------------------------------------------------===//
// Repository
//===----------------------------------------------------------------------===//

CompiledObject makeObj(const std::string &Name, TypeSignature Sig) {
  CompiledObject Obj;
  Obj.FunctionName = Name;
  Obj.Sig = std::move(Sig);
  Obj.Code = std::make_shared<IRFunction>();
  return Obj;
}

TEST(Repository, MissOnEmptyAndUnknown) {
  Repository R;
  EXPECT_EQ(R.lookup("f", TypeSignature::generic(1)), nullptr);
  EXPECT_EQ(R.totalObjects(), 0u);
  EXPECT_EQ(R.lookupMisses(), 1u);
}

TEST(Repository, SafetyGovernsLookup) {
  Repository R;
  R.insert(makeObj("f", TypeSignature({Type::scalar(IntrinsicType::Real)})));
  // Int scalar is a subtype: safe.
  TypeSignature IntCall({Type::ofValue(Value::intScalar(5))});
  EXPECT_NE(R.lookup("f", IntCall), nullptr);
  // A matrix is not.
  TypeSignature MatCall({Type::ofValue(Value::zeros(2, 2))});
  EXPECT_EQ(R.lookup("f", MatCall), nullptr);
}

TEST(Repository, BestMatchByDistance) {
  Repository R;
  R.insert(makeObj("f", TypeSignature::generic(1)));
  R.insert(makeObj("f", TypeSignature({Type::scalar(IntrinsicType::Int)})));
  TypeSignature Call({Type::ofValue(Value::intScalar(3))});
  CompiledObjectPtr Hit = R.lookup("f", Call);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Sig[0].intrinsic(), IntrinsicType::Int);
  // A real-scalar call can only use the generic version.
  TypeSignature RealCall({Type::ofValue(Value::scalar(2.5))});
  CompiledObjectPtr Generic = R.lookup("f", RealCall);
  ASSERT_NE(Generic, nullptr);
  EXPECT_EQ(Generic->Sig[0].intrinsic(), IntrinsicType::Top);
}

TEST(Repository, InsertReplacesSameSignature) {
  Repository R;
  R.insert(makeObj("f", TypeSignature::generic(1)));
  auto Obj = makeObj("f", TypeSignature::generic(1));
  Obj.CompileSeconds = 42;
  R.insert(std::move(Obj));
  EXPECT_EQ(R.totalObjects(), 1u);
  CompiledObjectPtr Hit = R.lookup("f", TypeSignature::generic(1));
  ASSERT_NE(Hit, nullptr);
  EXPECT_DOUBLE_EQ(Hit->CompileSeconds, 42);
}

TEST(Repository, InvalidateDropsAllVersions) {
  Repository R;
  R.insert(makeObj("f", TypeSignature::generic(1)));
  R.insert(makeObj("f", TypeSignature({Type::scalar(IntrinsicType::Int)})));
  R.insert(makeObj("g", TypeSignature::generic(1)));
  R.invalidate("f");
  EXPECT_TRUE(R.versions("f").empty());
  EXPECT_EQ(R.totalObjects(), 1u);
}

TEST(Repository, HitCountersAdvance) {
  Repository R;
  R.insert(makeObj("f", TypeSignature::generic(1)));
  TypeSignature Call({Type::ofValue(Value::intScalar(1))});
  R.lookup("f", Call);
  R.lookup("f", Call);
  R.lookup("g", Call);
  EXPECT_EQ(R.lookupHits(), 2u);
  EXPECT_EQ(R.lookupMisses(), 1u);
  EXPECT_EQ(R.versions("f").front()->Hits, 2u);
}

TEST(Repository, MissKindsAreSplit) {
  Repository R;
  TypeSignature IntCall({Type::ofValue(Value::intScalar(1))});
  // Unknown function: a no-function miss.
  R.lookup("f", IntCall);
  EXPECT_EQ(R.lookupMissesNoFunction(), 1u);
  EXPECT_EQ(R.lookupMissesNoSafeVersion(), 0u);
  // Versions exist but none is safe for a matrix: a speculation miss.
  R.insert(makeObj("f", TypeSignature({Type::scalar(IntrinsicType::Real)})));
  TypeSignature MatCall({Type::ofValue(Value::zeros(2, 2))});
  R.lookup("f", MatCall);
  EXPECT_EQ(R.lookupMissesNoFunction(), 1u);
  EXPECT_EQ(R.lookupMissesNoSafeVersion(), 1u);
  // The combined counter is the sum of both kinds.
  EXPECT_EQ(R.lookupMisses(), 2u);
}

TEST(Repository, ReplacementPreservesHits) {
  Repository R;
  R.insert(makeObj("f", TypeSignature::generic(1)));
  TypeSignature Call({Type::ofValue(Value::intScalar(1))});
  R.lookup("f", Call);
  R.lookup("f", Call);
  R.lookup("f", Call);
  EXPECT_EQ(R.versions("f").front()->Hits, 3u);
  // Recompiling the same signature (e.g. the optimizing backend replacing
  // JIT code) must not zero the accumulated per-version hit count.
  auto Better = makeObj("f", TypeSignature::generic(1));
  Better.CompileSeconds = 0.5;
  R.insert(std::move(Better));
  EXPECT_EQ(R.totalObjects(), 1u);
  EXPECT_EQ(R.versions("f").front()->Hits, 3u);
  R.lookup("f", Call);
  EXPECT_EQ(R.versions("f").front()->Hits, 4u);
}

TEST(Repository, CompileSecondsAccumulateAcrossReplacement) {
  Repository R;
  auto A = makeObj("f", TypeSignature::generic(1));
  A.CompileSeconds = 1.0;
  R.insert(std::move(A));
  auto B = makeObj("f", TypeSignature::generic(1));
  B.CompileSeconds = 2.5;
  R.insert(std::move(B));
  // The replaced version's compile time is not lost to the statistics.
  EXPECT_DOUBLE_EQ(R.totalCompileSeconds(), 3.5);
  EXPECT_DOUBLE_EQ(R.versions("f").front()->CompileSeconds, 2.5);
}

TEST(Repository, LookupHandleSurvivesReplacementAndGrowth) {
  Repository R;
  R.insert(makeObj("f", TypeSignature({Type::scalar(IntrinsicType::Int)})));
  TypeSignature Call({Type::ofValue(Value::intScalar(1))});
  CompiledObjectPtr Hit = R.lookup("f", Call);
  ASSERT_NE(Hit, nullptr);
  std::shared_ptr<const IRFunction> Code = Hit->Code;
  // Push enough versions to force vector growth, then replace and
  // invalidate; the handle must stay fully usable (the latent
  // use-after-free this API change fixed).
  for (int I = 0; I != 64; ++I)
    R.insert(makeObj("f", TypeSignature({Type::constant(I)})));
  R.insert(makeObj("f", TypeSignature({Type::scalar(IntrinsicType::Int)})));
  R.invalidate("f");
  EXPECT_EQ(Hit->Code, Code);
  EXPECT_EQ(Hit->Sig[0].intrinsic(), IntrinsicType::Int);
}

//===----------------------------------------------------------------------===//
// Snooper
//===----------------------------------------------------------------------===//

TEST(Snooper, DetectsNewAndModified) {
  std::string Dir = ::testing::TempDir() + "/majic_snooper_unit";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  SourceSnooper S;
  S.watchDirectory(Dir);
  EXPECT_TRUE(S.scan().empty());

  {
    std::ofstream F(Dir + "/a.m");
    F << "function y = a(x)\ny = x;\n";
  }
  auto C1 = S.scan();
  ASSERT_EQ(C1.size(), 1u);
  EXPECT_EQ(C1[0].FunctionName, "a");
  EXPECT_EQ(C1[0].K, SourceSnooper::Change::Kind::Added);
  EXPECT_TRUE(S.scan().empty()); // unchanged

  // Touch with a strictly newer mtime.
  std::filesystem::last_write_time(
      Dir + "/a.m",
      std::filesystem::file_time_type::clock::now() + std::chrono::seconds(3));
  auto C2 = S.scan();
  ASSERT_EQ(C2.size(), 1u);
  EXPECT_EQ(C2[0].K, SourceSnooper::Change::Kind::Modified);

  // Deleting the file is reported exactly once, as Removed.
  std::filesystem::remove(Dir + "/a.m");
  auto C3 = S.scan();
  ASSERT_EQ(C3.size(), 1u);
  EXPECT_EQ(C3[0].FunctionName, "a");
  EXPECT_EQ(C3[0].K, SourceSnooper::Change::Kind::Removed);
  EXPECT_TRUE(S.scan().empty());

  // Non-.m files are ignored.
  {
    std::ofstream F(Dir + "/notes.txt");
    F << "hello";
  }
  EXPECT_TRUE(S.scan().empty());
}

TEST(Snooper, DeterministicOrder) {
  std::string Dir = ::testing::TempDir() + "/majic_snooper_order";
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  for (const char *Name : {"zeta.m", "alpha.m", "mid.m"}) {
    std::ofstream F(Dir + "/" + Name);
    F << "function y = f(x)\ny = x;\n";
  }
  SourceSnooper S;
  S.watchDirectory(Dir);
  auto Changes = S.scan();
  ASSERT_EQ(Changes.size(), 3u);
  EXPECT_EQ(Changes[0].FunctionName, "alpha");
  EXPECT_EQ(Changes[2].FunctionName, "zeta");
}

} // namespace
