//===- tests/RepoStoreTest.cpp - Persistent repository & warm start --------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The on-disk code repository: crash-safe saves, the startup validation
// ladder, warm starts that serve the first invocation with zero compiles,
// and - above all - that no corruption of the store (bit flips, truncation,
// injected faults, leftover temp files, deleted sources) can ever crash the
// engine or change a program's results.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "repo/RepoStore.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace majic;
namespace fs = std::filesystem;

namespace {

class RepoStoreTest : public ::testing::Test {
protected:
  void SetUp() override {
    faults::reset();
    Dir = fs::temp_directory_path() /
          ("majic_repostore_" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(Dir);
  }
  void TearDown() override {
    faults::reset();
    fs::remove_all(Dir);
  }

  /// Engine options for a deterministic store session: JIT policy and no
  /// worker pool, so compiles and saves both happen synchronously.
  EngineOptions syncOpts() {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.BackgroundCompileThreads = 0;
    O.RepoDir = Dir.string();
    return O;
  }

  /// Paths of the store's entry files.
  std::vector<fs::path> entryFiles() {
    std::vector<fs::path> Out;
    if (!fs::exists(Dir))
      return Out;
    for (const fs::directory_entry &E : fs::directory_iterator(Dir))
      if (E.path().extension() == ".mjo")
        Out.push_back(E.path());
    return Out;
  }

  fs::path Dir;
};

ValuePtr intArg(double X) { return makeValue(Value::intScalar(X)); }

const char *kSource = "function y = ff(x)\n"
                      "y = 0;\n"
                      "for k = 1:x\n"
                      "y = y + k * k;\n"
                      "end\n";
const double kArg = 10;
const double kExpect = 385; // sum of squares 1..10

//===----------------------------------------------------------------------===//
// Round trip and warm start
//===----------------------------------------------------------------------===//

TEST_F(RepoStoreTest, CompileWritesOneEntryFile) {
  Engine E(syncOpts());
  ASSERT_TRUE(E.addSource("ff", kSource));
  auto R = E.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
  EXPECT_EQ(E.jitCompiles(), 1u);

  RepoStoreStats S = E.repoStoreStats();
  EXPECT_EQ(S.Saved, 1u);
  EXPECT_EQ(S.SaveFailures, 0u);
  auto Files = entryFiles();
  ASSERT_EQ(Files.size(), 1u);
  // <function>.<sighash>.mjo
  EXPECT_EQ(Files[0].filename().string().rfind("ff.", 0), 0u);
}

TEST_F(RepoStoreTest, WarmStartServesFirstCallWithZeroCompiles) {
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("ff", kSource));
    auto R = Cold.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
    ASSERT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
    ASSERT_EQ(Cold.repoStoreStats().Saved, 1u);
  }

  Engine Warm(syncOpts());
  RepoStoreStats S = Warm.repoStoreStats();
  EXPECT_EQ(S.Loaded, 1u);
  EXPECT_EQ(S.Quarantined, 0u);
  ASSERT_TRUE(Warm.addSource("ff", kSource));
  EXPECT_EQ(Warm.repoStoreStats().Adopted, 1u);
  EXPECT_EQ(Warm.repository().versionCount("ff"), 1u);

  // The first invocation is served straight from disk: no JIT compile, no
  // interpreter fallback, no speculation queued - and the same answer.
  auto R = Warm.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
  EXPECT_EQ(Warm.jitCompiles(), 0u);
  EXPECT_EQ(Warm.interpreterFallbacks(), 0u);
  EXPECT_EQ(Warm.speculationStats().Queued, 0u);
}

TEST_F(RepoStoreTest, SourceDriftDiscardsEntryAndRecompiles) {
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("ff", kSource));
    Cold.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
    ASSERT_EQ(Cold.repoStoreStats().Saved, 1u);
  }

  // The .m text changed: the stored object was compiled from different
  // source and must not be served, however plausible its bytes are.
  std::string NewSource = "function y = ff(x)\ny = x + 1;\n";
  Engine Warm(syncOpts());
  EXPECT_EQ(Warm.repoStoreStats().Loaded, 1u);
  ASSERT_TRUE(Warm.addSource("ff", NewSource));
  RepoStoreStats S = Warm.repoStoreStats();
  EXPECT_EQ(S.Adopted, 0u);
  EXPECT_EQ(S.StaleSource, 1u);
  EXPECT_EQ(Warm.repository().versionCount("ff"), 0u);

  auto R = Warm.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kArg + 1);
  EXPECT_EQ(Warm.jitCompiles(), 1u);
}

TEST_F(RepoStoreTest, AsyncSavesFlushDeterministically) {
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Speculative;
    O.BackgroundCompileThreads = 1;
    O.RepoDir = Dir.string();
    Engine E(O);
    ASSERT_TRUE(E.addSource("ff", kSource));
    ASSERT_TRUE(E.speculateAsync("ff"));
    E.drainCompiles();
    E.flushRepoStore();
    EXPECT_EQ(E.repoStoreStats().Saved, 1u);
    EXPECT_EQ(entryFiles().size(), 1u);
  }
  // Destroying the engine with saves possibly queued is also clean (the
  // pool drains before the store goes away); the file is intact on disk.
  Engine Warm(syncOpts());
  EXPECT_EQ(Warm.repoStoreStats().Loaded, 1u);
}

//===----------------------------------------------------------------------===//
// Corruption: the loader must never crash, whatever the bytes
//===----------------------------------------------------------------------===//

/// Reads a store entry file as raw bytes.
std::string slurp(const fs::path &P) {
  std::ifstream In(P, std::ios::binary);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

void spit(const fs::path &P, const std::string &Bytes) {
  std::ofstream Out(P, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

TEST_F(RepoStoreTest, BitFlipFuzzAlwaysQuarantinesOrValidates) {
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("ff", kSource));
    Cold.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  }
  auto Files = entryFiles();
  ASSERT_EQ(Files.size(), 1u);
  std::string Good = slurp(Files[0]);
  ASSERT_GT(Good.size(), 40u);

  fs::path FuzzDir = Dir / "fuzz";
  uint64_t Accepted = 0, Rejected = 0;
  for (size_t I = 0; I < Good.size(); ++I) {
    std::string Bad = Good;
    Bad[I] = static_cast<char>(Bad[I] ^ (1u << (I % 8)));
    fs::remove_all(FuzzDir);
    fs::create_directories(FuzzDir);
    spit(FuzzDir / Files[0].filename(), Bad);

    RepoStore S(FuzzDir.string());
    std::vector<RepoStore::Entry> Loaded = S.loadAll();
    RepoStoreStats St = S.stats();
    // Every flipped file is either caught by the validation ladder or - for
    // flips in the source-hash header field - decodes but carries a hash
    // the engine will refuse at adoption. Nothing crashes, and the
    // bookkeeping always accounts for exactly the one file.
    EXPECT_EQ(Loaded.size() + St.Quarantined + St.Skewed, 1u)
        << "byte " << I;
    if (!Loaded.empty()) {
      ++Accepted;
      EXPECT_EQ(Loaded[0].Obj.FunctionName, "ff");
    } else {
      ++Rejected;
    }
  }
  // The CRC covers the payload and the header fields are individually
  // validated, so the overwhelming majority of flips must be rejected; the
  // only survivable flips are in the source-hash field (8 bytes x 1 flip).
  EXPECT_LE(Accepted, 8u);
  EXPECT_GT(Rejected, 0u);
}

TEST_F(RepoStoreTest, TruncationFuzzNeverCrashes) {
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("ff", kSource));
    Cold.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  }
  auto Files = entryFiles();
  ASSERT_EQ(Files.size(), 1u);
  std::string Good = slurp(Files[0]);

  fs::path FuzzDir = Dir / "fuzz";
  for (size_t Len = 0; Len < Good.size(); Len += 3) {
    fs::remove_all(FuzzDir);
    fs::create_directories(FuzzDir);
    spit(FuzzDir / Files[0].filename(), Good.substr(0, Len));

    RepoStore S(FuzzDir.string());
    EXPECT_TRUE(S.loadAll().empty()) << "length " << Len;
    EXPECT_EQ(S.stats().Quarantined, 1u) << "length " << Len;
  }
}

TEST_F(RepoStoreTest, GarbageFilesAreQuarantined) {
  fs::create_directories(Dir);
  spit(Dir / "ff.0000000000000000.mjo", std::string(512, '\x5a'));
  spit(Dir / "gg.ffffffffffffffff.mjo", "");
  RepoStore S(Dir.string());
  EXPECT_TRUE(S.loadAll().empty());
  EXPECT_EQ(S.stats().Quarantined, 2u);
  // Quarantined files are renamed out of the .mjo namespace: a second load
  // of the same directory is clean.
  RepoStore S2(Dir.string());
  EXPECT_TRUE(S2.loadAll().empty());
  EXPECT_EQ(S2.stats().Quarantined, 0u);
}

TEST_F(RepoStoreTest, PoisonedStoreRecomputesIdenticalResults) {
  double ColdResult;
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("ff", kSource));
    ColdResult =
        Cold.callFunction("ff", {intArg(kArg)}, 1, SourceLoc())[0]->scalarValue();
  }
  // Flip one bit in the middle of every entry file.
  for (const fs::path &P : entryFiles()) {
    std::string Bytes = slurp(P);
    Bytes[Bytes.size() / 2] = static_cast<char>(Bytes[Bytes.size() / 2] ^ 0x10);
    spit(P, Bytes);
  }

  Engine Warm(syncOpts());
  RepoStoreStats S = Warm.repoStoreStats();
  EXPECT_EQ(S.Loaded, 0u);
  EXPECT_EQ(S.Quarantined, 1u);
  ASSERT_TRUE(Warm.addSource("ff", kSource));
  auto R = Warm.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  // Transparent fallback: the poisoned entry cost a recompile, nothing else.
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), ColdResult);
  EXPECT_EQ(Warm.jitCompiles(), 1u);
}

//===----------------------------------------------------------------------===//
// Crash consistency: temp files and injected faults
//===----------------------------------------------------------------------===//

TEST_F(RepoStoreTest, LeftoverTempFilesAreSweptAtStartup) {
  fs::create_directories(Dir);
  // What a save that died between write and rename leaves behind.
  spit(Dir / "ff.0123456789abcdef.mjo.tmp12345.7", "partial bytes");
  spit(Dir / "gg.aaaaaaaaaaaaaaaa.mjo.tmp999.1", "");

  Engine E(syncOpts());
  EXPECT_EQ(E.repoStoreStats().SweptTemps, 2u);
  EXPECT_TRUE(entryFiles().empty());
  for (const fs::directory_entry &F : fs::directory_iterator(Dir))
    EXPECT_EQ(F.path().filename().string().find(".tmp"), std::string::npos)
        << F.path();
}

TEST_F(RepoStoreTest, InjectedSaveFaultIsContained) {
  Engine E(syncOpts());
  ASSERT_TRUE(E.addSource("ff", kSource));
  faults::armEvery(faults::Site::RepoSave, 1);
  auto R = E.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  // The failed save is invisible to the caller...
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
  EXPECT_EQ(E.jitCompiles(), 1u);
  RepoStoreStats S = E.repoStoreStats();
  EXPECT_EQ(S.Saved, 0u);
  EXPECT_EQ(S.SaveFailures, 1u);
  // ...and leaves no debris: no entry file, no temp file.
  EXPECT_TRUE(entryFiles().empty());

  // With the fault gone, the next compile persists normally.
  faults::reset();
  ASSERT_TRUE(E.addSource("ff", kSource));
  E.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  EXPECT_EQ(E.repoStoreStats().Saved, 1u);
  EXPECT_EQ(entryFiles().size(), 1u);
}

TEST_F(RepoStoreTest, InjectedLoadFaultQuarantinesAndRecovers) {
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("ff", kSource));
    Cold.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  }

  faults::armEvery(faults::Site::RepoLoad, 1);
  Engine Warm(syncOpts());
  RepoStoreStats S = Warm.repoStoreStats();
  EXPECT_EQ(S.Loaded, 0u);
  EXPECT_EQ(S.Quarantined, 1u);
  faults::reset();

  // Cold path again, same answer, and the store repopulates.
  ASSERT_TRUE(Warm.addSource("ff", kSource));
  auto R = Warm.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
  EXPECT_EQ(Warm.jitCompiles(), 1u);
  EXPECT_EQ(Warm.repoStoreStats().Saved, 1u);
}

//===----------------------------------------------------------------------===//
// Source deletion invalidates memory and disk
//===----------------------------------------------------------------------===//

TEST_F(RepoStoreTest, RemovedSourceErasesRepositoryAndStore) {
  fs::path SrcDir = Dir / "src";
  fs::create_directories(SrcDir);
  { std::ofstream(SrcDir / "ff.m") << kSource; }

  EngineOptions O = syncOpts();
  O.RepoDir = (Dir / "store").string();
  Engine E(O);
  E.watchDirectory(SrcDir.string());
  EXPECT_EQ(E.snoop(), 1u);
  auto R = E.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  ASSERT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
  ASSERT_EQ(E.repository().versionCount("ff"), 1u);
  ASSERT_EQ(E.repoStoreStats().Saved, 1u);

  // Delete the source; the next snoop must stop serving it, from memory
  // and from disk.
  fs::remove(SrcDir / "ff.m");
  EXPECT_EQ(E.snoop(), 0u);
  EXPECT_EQ(E.repository().versionCount("ff"), 0u);
  EXPECT_THROW(E.callFunction("ff", {intArg(kArg)}, 1, SourceLoc()),
               MatlabError);
  bool AnyEntry = false;
  for (const fs::directory_entry &F : fs::directory_iterator(Dir / "store"))
    AnyEntry |= F.path().extension() == ".mjo";
  EXPECT_FALSE(AnyEntry);

  // A fresh engine on the same store has nothing to warm-start from.
  Engine E2(O);
  EXPECT_EQ(E2.repoStoreStats().Loaded, 0u);
}

TEST_F(RepoStoreTest, QueuedSaveDoesNotResurrectRemovedSource) {
  fs::path SrcDir = Dir / "src";
  fs::path StoreDir = Dir / "store";
  fs::create_directories(SrcDir);
  { std::ofstream(SrcDir / "ff.m") << kSource; }

  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 1; // saves ride the background pool
  O.RepoDir = StoreDir.string();
  Engine E(O);
  E.watchDirectory(SrcDir.string());
  ASSERT_EQ(E.snoop(), 1u);

  // Hold the pool so the save stays queued, compile, then delete the
  // source and process the removal while the save is still pending. The
  // save must not recreate the erased entry when it finally runs - a
  // deleted source must not resurrect on the next warm start.
  E.pauseBackgroundCompiles();
  auto R = E.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  ASSERT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
  fs::remove(SrcDir / "ff.m");
  EXPECT_EQ(E.snoop(), 0u);
  E.resumeBackgroundCompiles();
  E.flushRepoStore();

  for (const fs::directory_entry &F : fs::directory_iterator(StoreDir))
    EXPECT_NE(F.path().extension(), ".mjo") << F.path();

  Engine E2(O);
  EXPECT_EQ(E2.repoStoreStats().Loaded, 0u);
}

//===----------------------------------------------------------------------===//
// Multiple versions and functions round-trip
//===----------------------------------------------------------------------===//

TEST_F(RepoStoreTest, MultipleVersionsAndFunctionsSurviveRestart) {
  std::string Other = "function y = gg(a, b)\ny = a * 2 + b;\n";
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("ff", kSource));
    ASSERT_TRUE(Cold.addSource("gg", Other));
    // Two signatures of ff (scalar and 1x4 vector) and one of gg.
    Cold.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
    Cold.precompileWithArgs("ff", {makeValue(Value::zeros(1, 4))});
    Cold.callFunction("gg", {intArg(3), intArg(4)}, 1, SourceLoc());
    EXPECT_EQ(Cold.repoStoreStats().Saved, 3u);
  }
  ASSERT_EQ(entryFiles().size(), 3u);

  Engine Warm(syncOpts());
  EXPECT_EQ(Warm.repoStoreStats().Loaded, 3u);
  ASSERT_TRUE(Warm.addSource("ff", kSource));
  ASSERT_TRUE(Warm.addSource("gg", Other));
  EXPECT_EQ(Warm.repoStoreStats().Adopted, 3u);
  EXPECT_EQ(Warm.repository().versionCount("ff"), 2u);
  EXPECT_EQ(Warm.repository().versionCount("gg"), 1u);

  auto R1 = Warm.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  auto R2 = Warm.callFunction("gg", {intArg(3), intArg(4)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R1[0]->scalarValue(), kExpect);
  EXPECT_DOUBLE_EQ(R2[0]->scalarValue(), 10.0);
  EXPECT_EQ(Warm.jitCompiles(), 0u);
}

//===----------------------------------------------------------------------===//
// Fused code in the store
//===----------------------------------------------------------------------===//

/// An elementwise chain the compiler fuses into a single EwFuse op.
const char *kFusedSource = "function y = fz(x)\n"
                           "a = ones(100, 1) * x;\n"
                           "b = a + a .* a - 2.5;\n"
                           "y = b(1) + b(100);\n";
const double kFusedExpect = 215.0; // b(k) = 10 + 100 - 2.5 at x = 10

bool holdsEwFuse(const Repository &Repo, const std::string &Name) {
  for (const CompiledObjectPtr &Obj : Repo.versions(Name))
    for (const Instr &In : Obj->Code->Code)
      if (In.Op == Opcode::EwFuse)
        return true;
  return false;
}

TEST_F(RepoStoreTest, FusedCodeWarmStartsBitIdentically) {
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("fz", kFusedSource));
    auto R = Cold.callFunction("fz", {intArg(kArg)}, 1, SourceLoc());
    ASSERT_DOUBLE_EQ(R[0]->scalarValue(), kFusedExpect);
    // The entry on disk holds a fused program, not just fusable source.
    ASSERT_TRUE(holdsEwFuse(Cold.repository(), "fz"));
    ASSERT_EQ(Cold.repoStoreStats().Saved, 1u);
  }

  // The fused program survives the serialize/validate/adopt ladder and is
  // served straight from disk: no compile, and the identical answer.
  Engine Warm(syncOpts());
  EXPECT_EQ(Warm.repoStoreStats().Loaded, 1u);
  ASSERT_TRUE(Warm.addSource("fz", kFusedSource));
  EXPECT_EQ(Warm.repoStoreStats().Adopted, 1u);
  EXPECT_TRUE(holdsEwFuse(Warm.repository(), "fz"));
  auto R = Warm.callFunction("fz", {intArg(kArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kFusedExpect);
  EXPECT_EQ(Warm.jitCompiles(), 0u);
  EXPECT_EQ(Warm.interpreterFallbacks(), 0u);
}

TEST_F(RepoStoreTest, OldAbiStampIsDiscardedCleanlyAndRecompiled) {
  {
    Engine Cold(syncOpts());
    ASSERT_TRUE(Cold.addSource("fz", kFusedSource));
    Cold.callFunction("fz", {intArg(kArg)}, 1, SourceLoc());
    ASSERT_EQ(Cold.repoStoreStats().Saved, 1u);
  }

  // Rewrite the entry's build stamp (bytes 8..15, after magic and format
  // version) to simulate a store written by an engine with a different
  // code ABI - an older kCodeABIVersion, say, without the fused opcode.
  auto Files = entryFiles();
  ASSERT_EQ(Files.size(), 1u);
  {
    std::fstream IO(Files[0], std::ios::in | std::ios::out |
                                  std::ios::binary);
    ASSERT_TRUE(IO.good());
    IO.seekp(8);
    IO.put('\x5a');
  }

  // Skewed entries are discarded before decoding - not quarantined as
  // corruption, not adopted - and the call path recompiles from source.
  Engine Warm(syncOpts());
  RepoStoreStats S = Warm.repoStoreStats();
  EXPECT_EQ(S.Loaded, 0u);
  EXPECT_EQ(S.Skewed, 1u);
  EXPECT_EQ(S.Quarantined, 0u);
  ASSERT_TRUE(Warm.addSource("fz", kFusedSource));
  auto R = Warm.callFunction("fz", {intArg(kArg)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kFusedExpect);
  EXPECT_EQ(Warm.jitCompiles(), 1u);
}

//===----------------------------------------------------------------------===//
// Persistent profiles (profiles.mjp)
//===----------------------------------------------------------------------===//

/// A representative profile summary for the store round-trip tests: two
/// functions, one with signatures and an overflow count, one bare.
std::vector<RepoStore::ProfileSummary> sampleProfiles() {
  RepoStore::ProfileSummary Hot;
  Hot.Name = "gg";
  Hot.Invocations = 41;
  Hot.OtherSignatures = 2;
  RepoStore::ProfileSig S1;
  S1.Sig = TypeSignature::ofValues({makeValue(Value::scalar(2.5))});
  S1.SigStr = S1.Sig.str();
  S1.Count = 30;
  RepoStore::ProfileSig S2;
  S2.Sig = TypeSignature::ofValues({intArg(3)});
  S2.SigStr = S2.Sig.str();
  S2.Count = 9;
  Hot.Sigs = {S1, S2};

  RepoStore::ProfileSummary Cold;
  Cold.Name = "ff";
  Cold.Invocations = 1;
  return {Hot, Cold};
}

TEST_F(RepoStoreTest, ProfileSaveLoadRoundTrip) {
  RepoStore S(Dir.string());
  ASSERT_TRUE(S.saveProfiles(sampleProfiles()));
  EXPECT_EQ(S.stats().ProfilesSaved, 1u);
  EXPECT_TRUE(fs::exists(S.profilePath()));

  RepoStore S2(Dir.string());
  std::vector<RepoStore::ProfileSummary> Loaded = S2.loadProfiles();
  EXPECT_EQ(S2.stats().ProfilesLoaded, 2u);
  ASSERT_EQ(Loaded.size(), 2u);
  EXPECT_EQ(Loaded[0].Name, "gg");
  EXPECT_EQ(Loaded[0].Invocations, 41u);
  EXPECT_EQ(Loaded[0].OtherSignatures, 2u);
  ASSERT_EQ(Loaded[0].Sigs.size(), 2u);
  EXPECT_EQ(Loaded[0].Sigs[0].Count, 30u);
  // The signature string is re-rendered from the decoded signature, not
  // stored: equality proves the type payload itself survived.
  EXPECT_EQ(Loaded[0].Sigs[0].SigStr,
            TypeSignature::ofValues({makeValue(Value::scalar(2.5))}).str());
  EXPECT_EQ(Loaded[1].Name, "ff");
  EXPECT_EQ(Loaded[1].Invocations, 1u);
  EXPECT_TRUE(Loaded[1].Sigs.empty());

  // A missing profile file is not an event at all: no load, no quarantine.
  fs::remove(S2.profilePath());
  RepoStore S3(Dir.string());
  EXPECT_TRUE(S3.loadProfiles().empty());
  EXPECT_EQ(S3.stats().ProfilesQuarantined, 0u);
}

TEST_F(RepoStoreTest, ProfileBitFlipFuzzRejectsEveryFlip) {
  // Unlike .mjo entries (whose source-hash field is validated at adoption,
  // not load), every byte of profiles.mjp is covered by a header check or
  // the payload CRC: no single-bit flip may ever load.
  std::string Good = RepoStore::encodeProfiles(sampleProfiles());
  ASSERT_GT(Good.size(), 40u);

  fs::path FuzzDir = Dir / "fuzz";
  for (size_t I = 0; I < Good.size(); ++I) {
    std::string Bad = Good;
    Bad[I] = static_cast<char>(Bad[I] ^ (1u << (I % 8)));
    fs::remove_all(FuzzDir);
    fs::create_directories(FuzzDir);
    spit(FuzzDir / RepoStore::kProfileFileName, Bad);

    RepoStore S(FuzzDir.string());
    EXPECT_TRUE(S.loadProfiles().empty()) << "byte " << I;
    RepoStoreStats St = S.stats();
    EXPECT_EQ(St.ProfilesLoaded, 0u) << "byte " << I;
    EXPECT_EQ(St.ProfilesQuarantined + St.ProfilesSkewed, 1u) << "byte " << I;
  }
}

TEST_F(RepoStoreTest, ProfileTruncationFuzzNeverCrashes) {
  std::string Good = RepoStore::encodeProfiles(sampleProfiles());
  fs::path FuzzDir = Dir / "fuzz";
  for (size_t Len = 0; Len < Good.size(); Len += 3) {
    fs::remove_all(FuzzDir);
    fs::create_directories(FuzzDir);
    spit(FuzzDir / RepoStore::kProfileFileName, Good.substr(0, Len));

    RepoStore S(FuzzDir.string());
    EXPECT_TRUE(S.loadProfiles().empty()) << "length " << Len;
    EXPECT_EQ(S.stats().ProfilesQuarantined, 1u) << "length " << Len;
  }
}

TEST_F(RepoStoreTest, CorruptProfileFileColdStartsCleanly) {
  // A trashed profiles.mjp must behave exactly like a trashed .mjo: it is
  // quarantined out of the namespace, the session cold-starts with empty
  // profiles, and nothing crashes or changes results.
  fs::create_directories(Dir);
  spit(Dir / RepoStore::kProfileFileName, std::string(256, '\x5a'));

  {
    Engine E(syncOpts()); // RepoDir == ProfileDir == Dir by default
    RepoStoreStats St = E.repoStoreStats();
    EXPECT_EQ(St.ProfilesLoaded, 0u);
    EXPECT_EQ(St.ProfilesQuarantined, 1u);
    ASSERT_TRUE(E.addSource("ff", kSource));
    auto R = E.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
    EXPECT_DOUBLE_EQ(R[0]->scalarValue(), kExpect);
  }
  // The corrupt file was renamed away and the session above persisted a
  // fresh, valid profile: the next start loads it cleanly.
  Engine E2(syncOpts());
  RepoStoreStats St = E2.repoStoreStats();
  EXPECT_EQ(St.ProfilesQuarantined, 0u);
  EXPECT_GE(St.ProfilesLoaded, 1u);
}

// The acceptance test for profile-guided speculation end to end: session 1
// builds a profile (gg hot with a real-scalar argument, ff lukewarm) in a
// profile-only directory - no code store, so nothing but the profile can
// carry information across sessions. Session 2 must (a) queue gg before ff
// and (b) speculatively compile gg's *observed* real-scalar signature, not
// the backward hint's integer guess (gg's argument drives a for-range, so
// the hint infers int), proving the first real call hits with zero JIT
// compiles.
TEST_F(RepoStoreTest, PersistedProfilesDriveHotFirstObservedSigSpeculation) {
  fs::path SrcDir = Dir / "src";
  fs::path ProfDir = Dir / "prof";
  fs::create_directories(SrcDir);
  {
    std::ofstream(SrcDir / "gg.m") << "function y = gg(n)\ny = 0;\n"
                                      "for k = 1:n\ny = y + k;\nend\n";
    std::ofstream(SrcDir / "ff.m") << kSource;
  }
  ValuePtr RealArg = makeValue(Value::scalar(2.5));
  const std::string ObservedSig = TypeSignature::ofValues({RealArg}).str();

  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.BackgroundCompileThreads = 0;
    O.ProfileDir = ProfDir.string();
    Engine S1(O);
    S1.watchDirectory(SrcDir.string());
    ASSERT_EQ(S1.snoop(), 2u);
    for (int I = 0; I != 3; ++I)
      S1.callFunction("gg", {RealArg}, 1, SourceLoc());
    S1.callFunction("ff", {intArg(kArg)}, 1, SourceLoc());
  }
  ASSERT_TRUE(fs::exists(ProfDir / RepoStore::kProfileFileName));

  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  O.ProfileDir = ProfDir.string();
  Engine S2(O);
  EXPECT_EQ(S2.repoStoreStats().ProfilesLoaded, 2u);
  S2.pauseBackgroundCompiles();
  S2.watchDirectory(SrcDir.string());
  ASSERT_EQ(S2.snoop(), 2u);
  EXPECT_EQ(S2.queuedSpeculations(),
            (std::vector<std::string>{"gg", "ff"}));
  S2.resumeBackgroundCompiles();
  S2.drainCompiles();

  ASSERT_EQ(S2.repository().versionCount("gg"), 1u);
  CompiledObjectPtr Obj = S2.repository().versions("gg").front();
  EXPECT_EQ(Obj->From, CompiledObject::Origin::Speculative);
  EXPECT_EQ(Obj->Sig.str(), ObservedSig);

  // The call the profile predicted: served by the speculative compile.
  auto R = S2.callFunction("gg", {RealArg}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 3.0); // k = 1, 2
  EXPECT_EQ(S2.jitCompiles(), 0u);
  EXPECT_EQ(S2.interpreterFallbacks(), 0u);
}

} // namespace
