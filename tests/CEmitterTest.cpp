//===- tests/CEmitterTest.cpp - The Figure 3 C source generator ----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "backend/CEmitter.h"
#include "backend/Compiler.h"
#include "engine/Corpus.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace majic;

namespace {

struct Compiled {
  SourceManager SM;
  Diagnostics Diags;
  std::unique_ptr<Module> Mod;
  std::unique_ptr<FunctionInfo> Info;
  std::unique_ptr<IRFunction> Code;
  TypeSignature Sig;

  Compiled(const std::string &Src, std::vector<Type> Params,
           CodeGenMode Mode = CodeGenMode::Optimized) {
    Mod = parseModule("t", Src, SM, Diags);
    EXPECT_NE(Mod, nullptr) << Diags.render(SM);
    Info = disambiguate(*Mod->mainFunction(), *Mod);
    Sig = TypeSignature(std::move(Params));
    InferResult R = inferTypes(*Info, Sig);
    CodeGenOptions CG;
    CG.Mode = Mode;
    Code = generateCode(*Info, R.Ann, Sig, CG);
    EXPECT_NE(Code, nullptr);
  }

  std::string emit() { return emitCSource(*Code, Sig); }
};

TEST(CEmitter, Figure3PolyGenericUsesMlfCalls) {
  // Figure 3 bottom row: the complex-matrix signature generates boxed
  // mlfPower / mlfTimes / mlfPlus library calls.
  Compiled C("function p = poly(x)\np = x.^5 + 3*x + 2;\n",
             {Type::matrix(IntrinsicType::Complex)});
  std::string Src = C.emit();
  EXPECT_NE(Src.find("mlfDotPower"), std::string::npos) << Src;
  EXPECT_NE(Src.find("mlfTimes"), std::string::npos);
  EXPECT_NE(Src.find("mlfPlus"), std::string::npos);
  EXPECT_NE(Src.find("itype(arg0)=cplx"), std::string::npos);
}

TEST(CEmitter, Figure3PolyScalarInlines) {
  // Figure 3 middle rows: real scalar signatures inline to plain C
  // arithmetic with no mlf operator calls.
  Compiled C("function p = poly(x)\np = x.^5 + 3*x + 2;\n",
             {Type::scalar(IntrinsicType::Real)});
  std::string Src = C.emit();
  EXPECT_EQ(Src.find("mlfPlus"), std::string::npos) << Src;
  EXPECT_NE(Src.find("pow("), std::string::npos);
  EXPECT_NE(Src.find("mlfGetScalar"), std::string::npos);
  EXPECT_NE(Src.find("itype(arg0)=real"), std::string::npos);
}

TEST(CEmitter, ConstantSignatureFoldsToLiteral) {
  // Figure 3 top row: with limits <3,3>, poly(3) = 254 appears literally.
  Compiled C("function p = poly(x)\np = x.^5 + 3*x + 2;\n",
             {Type::scalar(IntrinsicType::Int, Range::constant(3))});
  OptimizeOptions OO;
  optimize(*C.Code, OO);
  std::string Src = C.emit();
  EXPECT_NE(Src.find("254"), std::string::npos) << Src;
  EXPECT_NE(Src.find("limits=<3,3>"), std::string::npos);
}

TEST(CEmitter, LoopsBecomeLabelsAndGotos) {
  Compiled C("function s = f(n)\ns = 0;\nfor k = 1:n\ns = s + k;\nend\n",
             {Type::scalar(IntrinsicType::Int)});
  std::string Src = C.emit();
  EXPECT_NE(Src.find("goto L"), std::string::npos);
  // Labels carry a null statement so one may legally precede a '}'.
  EXPECT_NE(Src.find(":;\n"), std::string::npos);
  // The loop back-edge polls the execution budget, as the VM does.
  EXPECT_NE(Src.find("mlfPoll"), std::string::npos);
}

TEST(CEmitter, ChecksAppearOnlyWithoutProof) {
  std::string Fn = "function s = f(n)\nA = zeros(n, 1);\n"
                   "for k = 1:n\nA(k) = k;\nend\ns = A(n);\n";
  Compiled Proven(Fn, {Type::scalar(IntrinsicType::Int, Range::constant(9))});
  EXPECT_EQ(Proven.emit().find("mlfLoadChecked"), std::string::npos);
  Compiled Unproven(Fn, {Type::scalar(IntrinsicType::Int)});
  // n's value is unknown: A(n) keeps its subscript check.
  EXPECT_NE(Unproven.emit().find("mlfStoreGrow"), std::string::npos);
}

TEST(CEmitter, ElementwiseChainEmitsOneFusedLoop) {
  // A four-op elementwise chain over real matrices lowers to a single
  // fused loop: one allocation, one pass, per-entry named temporaries
  // (and no mlf operator call per op).
  Compiled C("function r = f(a, b, c)\nr = a .* b + c - a .* 0.5;\n",
             {Type::matrix(IntrinsicType::Real),
              Type::matrix(IntrinsicType::Real),
              Type::matrix(IntrinsicType::Real)});
  std::string Src = C.emit();
  // Four operands, not five: the second read of `a` reuses its table slot.
  EXPECT_NE(Src.find("mlfEwAlloc(4"), std::string::npos) << Src;
  EXPECT_NE(Src.find("fused elementwise: 9 entries"), std::string::npos);
  // The program table is hoisted to file scope and passed to the
  // allocation shim, which re-simulates it for conformance/deopt checks.
  EXPECT_NE(Src.find("static const int mlf_prog_"), std::string::npos);
  EXPECT_NE(Src.find("mlfEwLoad"), std::string::npos);
  // One loop for the whole chain, and none of the per-op library calls
  // the generic path would emit.
  EXPECT_EQ(Src.find("for (long long k"), Src.rfind("for (long long k"));
  EXPECT_EQ(Src.find("mlfTimes"), std::string::npos);
  EXPECT_EQ(Src.find("mlfPlus"), std::string::npos);
}

TEST(CEmitter, EveryCorpusBenchmarkEmits) {
  // The emitter must cover every opcode the corpus generates; emitting all
  // sixteen benchmarks is a broad opcode-coverage sweep.
  for (const BenchmarkSpec &Spec : benchmarkCorpus()) {
    std::ifstream In(mlibDirectory() + "/" + Spec.Name + ".m");
    std::stringstream SS;
    SS << In.rdbuf();
    std::vector<Type> Params;
    for (double A : Spec.Args)
      Params.push_back(A == static_cast<long long>(A)
                           ? Type::scalar(IntrinsicType::Int)
                           : Type::scalar(IntrinsicType::Real));
    Compiled C(SS.str(), std::move(Params));
    std::string Src = C.emit();
    EXPECT_GT(Src.size(), 200u) << Spec.Name;
    EXPECT_NE(Src.find(Spec.Name + "_compiled"), std::string::npos)
        << Spec.Name;
    // Balanced braces: crude syntactic sanity.
    EXPECT_EQ(std::count(Src.begin(), Src.end(), '{'),
              std::count(Src.begin(), Src.end(), '}'))
        << Spec.Name;
  }
}

} // namespace
