//===- tests/FuzzTest.cpp - Randomized differential soundness -----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-based testing of the core soundness invariant: a randomly
// generated MATLAB program behaves identically (results, output, errors)
// under the interpreter and under every compiled configuration. Programs
// are drawn from a grammar over scalars, a vector, loops, branches,
// indexing and builtins; all loops are bounded so every program terminates.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "obs/Metrics.h"
#include "support/FaultInjection.h"
#include "support/Parallel.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

using namespace majic;

namespace {

/// A tiny seeded program generator.
class ProgramGen {
public:
  explicit ProgramGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Src = "function out = fuzz(n)\n"
          "a = n + 1;\n"
          "b = 3;\n"
          "c = 0.5;\n"
          "v = zeros(1, 8);\n"
          "for k = 1:8\n"
          "v(k) = k * 2;\n"
          "end\n";
    unsigned NumStmts = 3 + pick(6);
    for (unsigned S = 0; S != NumStmts; ++S)
      statement(1);
    Src += "out = a + b + c + sum(v);\n";
    return Src;
  }

private:
  unsigned pick(unsigned N) { return static_cast<unsigned>(R.nextU64() % N); }
  double num() {
    static const double Pool[] = {0, 1, 2, 3, 0.5, -1, -2.5, 7, 10};
    return Pool[pick(sizeof(Pool) / sizeof(Pool[0]))];
  }
  std::string scalarVar() {
    static const char *Vars[] = {"a", "b", "c"};
    return Vars[pick(3)];
  }

  std::string scalarExpr(unsigned Depth) {
    switch (Depth > 2 ? pick(3) : pick(8)) {
    case 0:
      return scalarVar();
    case 1: {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%g", num());
      return Buf;
    }
    case 2:
      return "v(" + indexExpr() + ")";
    case 3: {
      static const char *Ops[] = {" + ", " - ", " * "};
      return "(" + scalarExpr(Depth + 1) + Ops[pick(3)] +
             scalarExpr(Depth + 1) + ")";
    }
    case 4: {
      // Division keeps denominators away from zero.
      return "(" + scalarExpr(Depth + 1) + " / (abs(" +
             scalarExpr(Depth + 1) + ") + 1))";
    }
    case 5: {
      static const char *Fns[] = {"abs", "floor", "cos", "exp"};
      std::string Fn = Fns[pick(4)];
      if (Fn == "exp")
        return "exp(-abs(" + scalarExpr(Depth + 1) + "))";
      return Fn + "(" + scalarExpr(Depth + 1) + ")";
    }
    case 6:
      return "sqrt(abs(" + scalarExpr(Depth + 1) + "))";
    default:
      return "mod(" + scalarExpr(Depth + 1) + ", 5)";
    }
  }

  /// An index expression guaranteed in [1, 8].
  std::string indexExpr() {
    switch (pick(3)) {
    case 0:
      return std::to_string(1 + pick(8));
    case 1:
      return "k"; // only used inside the k loops below
    default:
      return "mod(floor(abs(" + scalarExpr(3) + ")), 8) + 1";
    }
  }

  /// An index valid outside loops.
  std::string indexExprNoK() {
    if (pick(2))
      return std::to_string(1 + pick(8));
    return "mod(floor(abs(" + scalarExpr(3) + ")), 8) + 1";
  }

  void statement(unsigned Depth) {
    switch (Depth > 2 ? pick(3) : pick(7)) {
    case 0:
      Src += scalarVar() + " = " + scalarExpr(1) + ";\n";
      return;
    case 1:
      Src += "v(" + indexExprNoK() + ") = " + scalarExpr(1) + ";\n";
      return;
    case 2:
      Src += scalarVar() + " = v(" + indexExprNoK() + ") + " +
             scalarExpr(2) + ";\n";
      return;
    case 3: {
      Src += "if " + scalarExpr(2) + " > " + scalarExpr(2) + "\n";
      statement(Depth + 1);
      if (pick(2)) {
        Src += "else\n";
        statement(Depth + 1);
      }
      Src += "end\n";
      return;
    }
    case 4: {
      // Bounded counted loop using k; k-based indexing is in range.
      Src += "for k = 1:" + std::to_string(2 + pick(7)) + "\n";
      statement(Depth + 1);
      if (pick(2))
        Src += "v(k) = v(k) + " + scalarExpr(3) + ";\n";
      Src += "end\n";
      return;
    }
    case 5: {
      // Bounded while with an explicit counter.
      std::string Cnt = "w" + std::to_string(Counter++);
      Src += Cnt + " = 0;\n";
      Src += "while " + Cnt + " < " + std::to_string(1 + pick(5)) + "\n";
      Src += Cnt + " = " + Cnt + " + 1;\n";
      statement(Depth + 1);
      Src += "end\n";
      return;
    }
    default: {
      Src += scalarVar() + " = max(" + scalarExpr(2) + ", " +
             scalarExpr(2) + ") + min(v);\n";
      return;
    }
    }
  }

  Rng R;
  std::string Src;
  unsigned Counter = 0;
};

struct Outcome {
  bool Threw = false;
  std::string Error;
  double Result = 0;
  std::string Output;
};

Outcome runFuzz(const std::string &Src, EngineOptions Opts, double Arg) {
  Engine E(Opts);
  Outcome Out;
  if (!E.addSource("fuzz", Src)) {
    Out.Threw = true;
    Out.Error = "parse: " + E.diagnostics();
    return Out;
  }
  try {
    auto R = E.callFunction("fuzz", {makeValue(Value::intScalar(Arg))}, 1,
                            SourceLoc());
    Out.Result = R[0]->scalarValue();
  } catch (const MatlabError &Err) {
    Out.Threw = true;
    Out.Error = Err.message();
  }
  Out.Output = E.context().output();
  return Out;
}

class FuzzSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSoundness, AllPathsAgree) {
  ProgramGen Gen(GetParam());
  std::string Src = Gen.generate();

  EngineOptions Interp;
  Interp.Policy = CompilePolicy::InterpretOnly;
  Outcome Ref = runFuzz(Src, Interp, 5);

  struct Cfg {
    const char *Name;
    CompilePolicy Policy;
    bool SpillAll;
    bool Ranges;
  };
  const Cfg Configs[] = {
      {"jit", CompilePolicy::Jit, false, true},
      {"falcon", CompilePolicy::Falcon, false, true},
      {"mcc", CompilePolicy::Mcc, false, true},
      {"jit-noranges", CompilePolicy::Jit, false, false},
      {"jit-spillall", CompilePolicy::Jit, true, true},
  };
  for (const Cfg &C : Configs) {
    EngineOptions O;
    O.Policy = C.Policy;
    O.RegAlloc.SpillEverything = C.SpillAll;
    O.Infer.EnableRanges = C.Ranges;
    Outcome Got = runFuzz(Src, O, 5);
    ASSERT_EQ(Ref.Threw, Got.Threw)
        << C.Name << " error='" << Got.Error << "' vs ref='" << Ref.Error
        << "'\nprogram:\n"
        << Src;
    if (!Ref.Threw) {
      if (std::isnan(Ref.Result))
        EXPECT_TRUE(std::isnan(Got.Result)) << C.Name << "\n" << Src;
      else
        EXPECT_DOUBLE_EQ(Ref.Result, Got.Result) << C.Name << "\n" << Src;
    }
    EXPECT_EQ(Ref.Output, Got.Output) << C.Name << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSoundness,
                         ::testing::Range<uint64_t>(1, 41));

//===----------------------------------------------------------------------===//
// Native-tier soundness: the same generated programs, executed as machine
// code through the third tier (hot threshold 1: the first call already
// compiles, loads and runs native), must agree with the interpreter
// bit-for-bit - results, error text, and printed output. Gated off under
// TSan: dlopen of the uninstrumented generated .so is incompatible with
// the runtime.
//===----------------------------------------------------------------------===//

#ifndef __SANITIZE_THREAD__

bool nativeHostCompilerAvailable() {
  static const bool Available = native::NativeCompiler("cc").available();
  return Available;
}

class NativeSoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NativeSoundness, MachineCodeAgreesWithInterpreter) {
  if (!nativeHostCompilerAvailable())
    GTEST_SKIP() << "no C compiler on host";
  ProgramGen Gen(GetParam());
  std::string Src = Gen.generate();

  EngineOptions Interp;
  Interp.Policy = CompilePolicy::InterpretOnly;
  Outcome Ref = runFuzz(Src, Interp, 5);

  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 0;
  O.NativeTier = true;
  O.NativeHotThreshold = 1;
  Outcome Got = runFuzz(Src, O, 5);
  ASSERT_EQ(Ref.Threw, Got.Threw)
      << "error='" << Got.Error << "' vs ref='" << Ref.Error
      << "'\nprogram:\n"
      << Src;
  if (Ref.Threw) {
    EXPECT_EQ(Ref.Error, Got.Error) << Src;
  } else if (std::isnan(Ref.Result)) {
    EXPECT_TRUE(std::isnan(Got.Result)) << Src;
  } else {
    EXPECT_DOUBLE_EQ(Ref.Result, Got.Result) << Src;
  }
  EXPECT_EQ(Ref.Output, Got.Output) << Src;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NativeSoundness,
                         ::testing::Range<uint64_t>(1, 21));

#endif // !__SANITIZE_THREAD__

//===----------------------------------------------------------------------===//
// Fault-schedule sweep: under an arbitrary seeded injection schedule the
// engine never crashes, a call that completes returns the interpreter's
// answer, and once the faults clear (and the source is reloaded, lifting
// any quarantine) behavior is exactly the reference again. The engines run
// against a persistent store so the repo-save and repo-load sites are part
// of every schedule: a second session starts under the same schedule (its
// warm-start load may be denied or quarantined), and the recovery session
// warm-starts from whatever survived.
//===----------------------------------------------------------------------===//

class FaultSweep : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override { faults::reset(); }
  void TearDown() override { faults::reset(); }
};

TEST_P(FaultSweep, EngineSurvivesScheduleAndRecovers) {
  uint64_t Seed = GetParam();
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();

  EngineOptions InterpOpts;
  InterpOpts.Policy = CompilePolicy::InterpretOnly;
  Outcome Ref = runFuzz(Src, InterpOpts, 5);

  // Derive a schedule from the seed: each site independently stays off,
  // fires once at a random hit, or fires randomly at 20%.
  Rng R(Seed * 0x9e3779b97f4a7c15ull + 0xda3e39cb94b95bdbull);
  for (unsigned SI = 0; SI != faults::kNumSites; ++SI) {
    auto S = static_cast<faults::Site>(SI);
    switch (R.nextU64() % 3) {
    case 0:
      break;
    case 1:
      faults::armAt(S, 1 + R.nextU64() % 20);
      break;
    default:
      faults::armRandom(S, 0.2, R.nextU64());
      break;
    }
  }

  namespace fs = std::filesystem;
  fs::path StoreDir =
      fs::temp_directory_path() / ("majic_faultsweep_" + std::to_string(Seed));
  fs::remove_all(StoreDir);

  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  O.RepoDir = StoreDir.string();

  // Under injection a load may fail (parse fault) and a call may fail
  // (injected OOM); neither may crash, and a call that succeeds must
  // return the reference result - faults deny work, they never corrupt it.
  // Two sessions run under the schedule: the second warm-starts from
  // whatever the first managed to persist, with repo-load faults live.
  for (int Session = 0; Session != 2; ++Session) {
    Engine E(O);
    if (!E.addSource("fuzz", Src))
      continue;
    for (int I = 0; I != 6; ++I) {
      E.speculateAsync("fuzz");
      try {
        auto Got = E.callFunction("fuzz", {makeValue(Value::intScalar(5))}, 1,
                                  SourceLoc());
        if (!Ref.Threw) {
          if (std::isnan(Ref.Result))
            EXPECT_TRUE(std::isnan(Got[0]->scalarValue())) << Src;
          else
            EXPECT_DOUBLE_EQ(Ref.Result, Got[0]->scalarValue()) << Src;
        }
      } catch (const MatlabError &) {
        // Injected denial (out of memory, ...): recoverable by contract.
      }
    }
    E.drainCompiles();
    E.flushRepoStore();
    if (Session == 1) {
      // The sweep's observability contract: after the workers quiesce, the
      // engine's sampled "faults.*" gauges report exactly the per-site
      // hit/fired counts the injector saw, so a sweep run can tell which
      // sites its schedule actually exercised.
      obs::MetricsSnapshot Snap = E.sampleMetrics();
      auto GaugeOf = [&Snap](const std::string &Name) -> int64_t {
        for (const auto &[N, V] : Snap.Gauges)
          if (N == Name)
            return V;
        return -1;
      };
      std::string FiredSummary;
      for (unsigned SI = 0; SI != faults::kNumSites; ++SI) {
        auto S = static_cast<faults::Site>(SI);
        faults::SiteStats FS = faults::stats(S);
        std::string Base = std::string("faults.") + faults::siteName(S);
        EXPECT_EQ(GaugeOf(Base + ".hits"), int64_t(FS.Hits)) << Base;
        EXPECT_EQ(GaugeOf(Base + ".fired"), int64_t(FS.Fired)) << Base;
        if (FS.Fired)
          FiredSummary += (FiredSummary.empty() ? "" : ", ") +
                          std::string(faults::siteName(S)) + "=" +
                          std::to_string(FS.Fired);
      }
      if (!FiredSummary.empty())
        std::printf("  [seed %llu] fired sites: %s\n",
                    static_cast<unsigned long long>(Seed),
                    FiredSummary.c_str());
    }
  }

  // Faults clear. A fresh session warm-starts from whatever the faulted
  // sessions left on disk - possibly nothing, never anything harmful - and
  // must agree with the reference exactly.
  faults::reset();
  Outcome Got;
  Engine E(O);
  ASSERT_TRUE(E.addSource("fuzz", Src)) << E.diagnostics();
  EXPECT_EQ(E.quarantineCount(), 0u);

  try {
    auto Res = E.callFunction("fuzz", {makeValue(Value::intScalar(5))}, 1,
                              SourceLoc());
    Got.Result = Res[0]->scalarValue();
  } catch (const MatlabError &Err) {
    Got.Threw = true;
    Got.Error = Err.message();
  }
  // shutdown() quiesces the background store writes (cancelling queued
  // saves, waiting out running ones), so the directory can be removed
  // with the engine still in scope - the scoped-block workaround this
  // test used to need is exactly the race shutdown() closes.
  E.shutdown();
  ASSERT_EQ(Ref.Threw, Got.Threw)
      << "error='" << Got.Error << "' vs ref='" << Ref.Error
      << "'\nprogram:\n"
      << Src;
  if (!Ref.Threw) {
    if (std::isnan(Ref.Result))
      EXPECT_TRUE(std::isnan(Got.Result)) << Src;
    else
      EXPECT_DOUBLE_EQ(Ref.Result, Got.Result) << Src;
  }
  fs::remove_all(StoreDir);
}

INSTANTIATE_TEST_SUITE_P(Schedules, FaultSweep,
                         ::testing::Range<uint64_t>(1, 56));

//===----------------------------------------------------------------------===//
// Native-tier fault sweep: with the third tier promoted on the very first
// call and the native sites firing (compile rejected, loader refused, the
// machine code itself failing mid-run), every call still returns exactly
// the interpreter's answer - native faults degrade the tier, they never
// deny or corrupt a result. Gated off under TSan: dlopen of the
// uninstrumented generated .so is incompatible with the runtime.
//===----------------------------------------------------------------------===//

#ifndef __SANITIZE_THREAD__

class NativeFaultSweep : public ::testing::TestWithParam<uint64_t> {
protected:
  void SetUp() override { faults::reset(); }
  void TearDown() override { faults::reset(); }
};

TEST_P(NativeFaultSweep, TierDegradesWithoutChangingResults) {
  if (!native::NativeCompiler("cc").available())
    GTEST_SKIP() << "no C compiler on host";
  uint64_t Seed = GetParam();
  ProgramGen Gen(Seed);
  std::string Src = Gen.generate();

  EngineOptions InterpOpts;
  InterpOpts.Policy = CompilePolicy::InterpretOnly;
  Outcome Ref = runFuzz(Src, InterpOpts, 5);

  namespace fs = std::filesystem;
  fs::path StoreDir = fs::temp_directory_path() /
                      ("majic_nativesweep_" + std::to_string(Seed));
  fs::remove_all(StoreDir);

  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 0; // native builds run synchronously
  O.RepoDir = StoreDir.string();
  O.NativeTier = true;
  O.NativeHotThreshold = 1;

  // Derive a schedule over the three native sites from the seed: each
  // independently stays off, fires once, or fires at 50%.
  Rng R(Seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull);
  for (faults::Site S : {faults::Site::NativeCompile, faults::Site::NativeLoad,
                         faults::Site::NativeRun}) {
    switch (R.nextU64() % 3) {
    case 0:
      break;
    case 1:
      faults::armAt(S, 1 + R.nextU64() % 4);
      break;
    default:
      faults::armRandom(S, 0.5, R.nextU64());
      break;
    }
  }

  // Two sessions share the store, so the second exercises native warm
  // adoption under the same schedule. Native faults are invisible in the
  // results: no call may fail or drift from the reference.
  auto CheckCall = [&](Engine &E) {
    try {
      auto Got = E.callFunction("fuzz", {makeValue(Value::intScalar(5))}, 1,
                                SourceLoc());
      EXPECT_FALSE(Ref.Threw) << Src;
      if (!Ref.Threw) {
        if (std::isnan(Ref.Result)) {
          EXPECT_TRUE(std::isnan(Got[0]->scalarValue())) << Src;
        } else {
          EXPECT_DOUBLE_EQ(Ref.Result, Got[0]->scalarValue()) << Src;
        }
      }
    } catch (const MatlabError &Err) {
      EXPECT_TRUE(Ref.Threw) << Src;
      if (Ref.Threw) {
        EXPECT_EQ(Ref.Error, Err.message()) << Src;
      }
    }
  };
  for (int Session = 0; Session != 2; ++Session) {
    Engine E(O);
    ASSERT_TRUE(E.addSource("fuzz", Src)) << E.diagnostics();
    for (int I = 0; I != 4; ++I)
      CheckCall(E);
    E.flushRepoStore();
    E.shutdown();
  }

  // Faults clear: a fresh session warm-starts from whatever survived and
  // still agrees exactly, with the tier healthy again.
  faults::reset();
  Engine E(O);
  ASSERT_TRUE(E.addSource("fuzz", Src)) << E.diagnostics();
  for (int I = 0; I != 2; ++I)
    CheckCall(E);
  E.shutdown();
  fs::remove_all(StoreDir);
}

INSTANTIATE_TEST_SUITE_P(Schedules, NativeFaultSweep,
                         ::testing::Range<uint64_t>(1, 13));

#endif // !__SANITIZE_THREAD__

//===----------------------------------------------------------------------===//
// Elementwise-fusion fuzz: random elementwise expression trees over
// matrices with NaN/Inf elements, empty matrices, int/real operands and
// scalar<->matrix broadcasts must produce BIT-identical values under the
// interpreter and under every compiled configuration, at 1 and at 4
// compute threads (the fused kernel's determinism contract), with
// identical error messages and printed output. Trees deliberately exceed
// the fusion stack depth sometimes (partial fusion), hit the complex/
// domain deopt guards (x.^y with negative base, sqrt/log of negatives),
// and mix in dimension mismatches so error ordering is exercised too.
//===----------------------------------------------------------------------===//

/// Generates one function whose body is a chain of elementwise statements
/// and whose single output is a matrix.
class EwTreeGen {
public:
  explicit EwTreeGen(uint64_t Seed) : R(Seed) {}

  std::string generate() {
    Rows = 1 + pick(3);
    Cols = 1 + pick(4);
    Src = "function out = ewfuzz(n)\n";
    // q = NaN, w = Inf, computed so no special literals are needed.
    Src += "q = 0 / 0;\nw = 1 / 0;\n";
    Src += "X = " + matrixLit(true) + ";\n";
    Src += "Y = " + matrixLit(true) + ";\n";
    Src += "Z = " + matrixLit(false) + ";\n";
    Src += "K = ones(" + std::to_string(Rows) + ", " + std::to_string(Cols) +
           ");\n"; // int-classed matrix
    Src += "K = K + K + K;\n";
    Src += "s = 2.5;\nt = -1.25;\nu = 3;\n";
    if (pick(4) == 0) {
      // An empty-matrix round: elementwise chains over 0xN values.
      Src += "E = zeros(0, " + std::to_string(Cols) + ");\n";
      Src += "r0 = E + E .* 2 - E ./ 4;\n";
    }
    unsigned NumStmts = 1 + pick(3);
    for (unsigned S = 0; S != NumStmts; ++S)
      Src += "r" + std::to_string(S + 1) + " = " + expr(0) + ";\n";
    if (pick(6) == 0) // dimension-mismatch round: error text must match
      Src += "bad = X + ones(" + std::to_string(Rows + 1) + ", " +
             std::to_string(Cols) + ");\ndisp(bad);\n";
    Src += "out = r" + std::to_string(NumStmts) + ";\n";
    return Src;
  }

private:
  unsigned pick(unsigned N) { return static_cast<unsigned>(R.nextU64() % N); }

  std::string matrixLit(bool WithSpecials) {
    // Element pool mixes signs, zeros, and (optionally) NaN/Inf variables.
    static const char *Plain[] = {"0",  "1",    "-2", "0.5", "3.75",
                                  "-7", "0.125", "2",  "-0.5"};
    std::string S = "[";
    for (unsigned RI = 0; RI != Rows; ++RI) {
      if (RI)
        S += "; ";
      for (unsigned CI = 0; CI != Cols; ++CI) {
        if (CI)
          S += " ";
        if (WithSpecials && pick(8) == 0)
          S += pick(2) ? "q" : "w";
        else
          S += Plain[pick(sizeof(Plain) / sizeof(Plain[0]))];
      }
    }
    return S + "]";
  }

  std::string expr(unsigned Depth) {
    // Leaves get likelier with depth; depth 5+ is leaves only. Chains can
    // exceed the 8-slot fusion stack, exercising partial fusion.
    if (Depth >= 5 || pick(10) < 2 + Depth) {
      switch (pick(7)) {
      case 0:
        return "X";
      case 1:
        return "Y";
      case 2:
        return "Z";
      case 3:
        return "K"; // int-classed operand
      case 4:
        return "s";
      case 5:
        return "t";
      default:
        return "u"; // int scalar: x .^ u keeps the fused int-exponent rule hot
      }
    }
    switch (pick(9)) {
    case 0:
      return "(" + expr(Depth + 1) + " + " + expr(Depth + 1) + ")";
    case 1:
      return "(" + expr(Depth + 1) + " - " + expr(Depth + 1) + ")";
    case 2:
      return "(" + expr(Depth + 1) + " .* " + expr(Depth + 1) + ")";
    case 3:
      return "(" + expr(Depth + 1) + " ./ " + expr(Depth + 1) + ")";
    case 4:
      // Scalar * matrix via the matrix-op spelling (broadcast MatMul).
      return "(s * " + expr(Depth + 1) + ")";
    case 5:
      return "(-" + expr(Depth + 1) + ")";
    case 6: {
      static const char *Fns[] = {"abs", "sqrt", "exp", "sin", "cos"};
      return std::string(Fns[pick(5)]) + "(" + expr(Depth + 1) + ")";
    }
    case 7:
      // Negative bases and non-integral exponents hit the complex deopt.
      return "(" + expr(Depth + 1) + " .^ " + (pick(2) ? "u" : "t") + ")";
    default:
      return "(" + expr(Depth + 1) + " ./ (abs(" + expr(Depth + 1) +
             ") + 0.5))";
    }
  }

  Rng R;
  std::string Src;
  unsigned Rows = 2, Cols = 2;
};

struct EwOutcome {
  bool Threw = false;
  std::string Error;
  Value V;
  std::string Output;
};

EwOutcome runEwFuzz(const std::string &Src, EngineOptions Opts) {
  Engine E(Opts);
  EwOutcome Out;
  if (!E.addSource("ewfuzz", Src)) {
    Out.Threw = true;
    Out.Error = "parse: " + E.diagnostics();
    return Out;
  }
  try {
    auto R = E.callFunction("ewfuzz", {makeValue(Value::intScalar(5))}, 1,
                            SourceLoc());
    Out.V = *R[0];
  } catch (const MatlabError &Err) {
    Out.Threw = true;
    Out.Error = Err.message();
  }
  Out.Output = E.context().output();
  return Out;
}

/// Bit-exact matrix comparison: same shape, same class, and the same
/// 64-bit pattern for every element (NaNs included).
void expectBitIdentical(const Value &Ref, const Value &Got,
                        const std::string &Label, const std::string &Src) {
  ASSERT_EQ(Ref.rows(), Got.rows()) << Label << "\n" << Src;
  ASSERT_EQ(Ref.cols(), Got.cols()) << Label << "\n" << Src;
  EXPECT_EQ(static_cast<int>(Ref.mclass()), static_cast<int>(Got.mclass()))
      << Label << "\n"
      << Src;
  for (size_t I = 0, N = Ref.numel(); I != N; ++I) {
    uint64_t RB, GB;
    double RV = Ref.re(I), GV = Got.re(I);
    std::memcpy(&RB, &RV, sizeof RB);
    std::memcpy(&GB, &GV, sizeof GB);
    EXPECT_EQ(RB, GB) << Label << " re[" << I << "] " << RV << " vs " << GV
                      << "\n"
                      << Src;
    RV = Ref.im(I);
    GV = Got.im(I);
    std::memcpy(&RB, &RV, sizeof RB);
    std::memcpy(&GB, &GV, sizeof GB);
    EXPECT_EQ(RB, GB) << Label << " im[" << I << "]\n" << Src;
  }
}

class EwFusionFuzz : public ::testing::TestWithParam<uint64_t> {
protected:
  void TearDown() override { par::setComputeThreads(0); }
};

TEST_P(EwFusionFuzz, BitIdenticalAcrossConfigsAndThreadCounts) {
  EwTreeGen Gen(GetParam());
  std::string Src = Gen.generate();

  EngineOptions Interp;
  Interp.Policy = CompilePolicy::InterpretOnly;
  Interp.ComputeThreads = 1;
  EwOutcome Ref = runEwFuzz(Src, Interp);

  struct Cfg {
    const char *Name;
    CompilePolicy Policy;
    unsigned Threads;
    bool Fusion;
  };
  const Cfg Configs[] = {
      {"jit-1t", CompilePolicy::Jit, 1, true},
      {"jit-4t", CompilePolicy::Jit, 4, true},
      {"falcon-4t", CompilePolicy::Falcon, 4, true},
      {"jit-nofusion", CompilePolicy::Jit, 1, false},
      {"interp-4t", CompilePolicy::InterpretOnly, 4, true},
  };
  for (const Cfg &C : Configs) {
    EngineOptions O;
    O.Policy = C.Policy;
    O.ComputeThreads = C.Threads;
    O.FuseElementwise = C.Fusion;
    EwOutcome Got = runEwFuzz(Src, O);
    ASSERT_EQ(Ref.Threw, Got.Threw)
        << C.Name << " error='" << Got.Error << "' vs ref='" << Ref.Error
        << "'\nprogram:\n"
        << Src;
    if (Ref.Threw)
      EXPECT_EQ(Ref.Error, Got.Error) << C.Name << "\n" << Src;
    else
      expectBitIdentical(Ref.V, Got.V, C.Name, Src);
    EXPECT_EQ(Ref.Output, Got.Output) << C.Name << "\n" << Src;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EwFusionFuzz,
                         ::testing::Range<uint64_t>(1, 61));

} // namespace
