//===- tests/BackendTest.cpp - Compiled vs interpreted soundness ---------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The core soundness property: for every program, every compiled
// configuration (JIT / optimized / generic / ablations / spill-everything)
// produces bit-identical results and output to the interpreter.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include "ast/Parser.h"
#include "backend/Compiler.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>

using namespace majic;

namespace {

struct RunOutcome {
  std::vector<Value> Results;
  std::string Output;
  bool Threw = false;
  std::string ErrorMessage;
};

RunOutcome runWith(EngineOptions Opts, const std::string &Source,
                   const std::string &Fn, std::vector<double> ScalarArgs,
                   size_t NumOuts) {
  Engine E(Opts);
  EXPECT_TRUE(E.addSource(Fn, Source)) << E.diagnostics();
  std::vector<ValuePtr> Args;
  for (double A : ScalarArgs)
    Args.push_back(makeValue(Value::intScalar(A)));
  RunOutcome Out;
  try {
    std::vector<ValuePtr> Rs = E.callFunction(Fn, Args, NumOuts, SourceLoc());
    for (const ValuePtr &R : Rs)
      Out.Results.push_back(*R);
  } catch (const MatlabError &Err) {
    Out.Threw = true;
    Out.ErrorMessage = Err.message();
  }
  Out.Output = E.context().output();
  return Out;
}

void expectSameValue(const Value &A, const Value &B, const std::string &Cfg) {
  ASSERT_EQ(A.rows(), B.rows()) << Cfg;
  ASSERT_EQ(A.cols(), B.cols()) << Cfg;
  ASSERT_EQ(A.isString(), B.isString()) << Cfg;
  if (A.isString()) {
    EXPECT_EQ(A.stringValue(), B.stringValue()) << Cfg;
    return;
  }
  for (size_t I = 0, E = A.numel(); I != E; ++I) {
    double AR = A.re(I), BR = B.re(I);
    if (AR != AR) // NaN
      EXPECT_NE(BR, BR) << Cfg << " elem " << I;
    else
      EXPECT_DOUBLE_EQ(AR, BR) << Cfg << " elem " << I;
    EXPECT_DOUBLE_EQ(A.im(I), B.im(I)) << Cfg << " elem " << I;
  }
}

/// Runs \p Source's function \p Fn under the interpreter and under every
/// compiled configuration, asserting identical behavior.
void checkSoundness(const std::string &Source, const std::string &Fn,
                    std::vector<double> Args, size_t NumOuts = 1) {
  EngineOptions Ref;
  Ref.Policy = CompilePolicy::InterpretOnly;
  RunOutcome Expected = runWith(Ref, Source, Fn, Args, NumOuts);

  struct Config {
    const char *Name;
    EngineOptions Opts;
  };
  std::vector<Config> Configs;
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    Configs.push_back({"jit", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Falcon;
    Configs.push_back({"falcon(optimized)", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Mcc;
    Configs.push_back({"mcc(generic)", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Speculative;
    Configs.push_back({"speculative", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.Infer.EnableRanges = false;
    Configs.push_back({"jit-noranges", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.Infer.EnableMinShapes = false;
    Configs.push_back({"jit-nominshapes", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.RegAlloc.SpillEverything = true;
    Configs.push_back({"jit-spillall", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.Platform = PlatformModel::mips();
    Configs.push_back({"jit-mips", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Falcon;
    O.Platform = PlatformModel::mips();
    Configs.push_back({"falcon-mips", O});
  }
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.InlineCalls = false;
    Configs.push_back({"jit-noinline", O});
  }

  for (const Config &C : Configs) {
    RunOutcome Got = runWith(C.Opts, Source, Fn, Args, NumOuts);
    EXPECT_EQ(Expected.Threw, Got.Threw)
        << C.Name << ": " << Got.ErrorMessage;
    if (Expected.Threw || Got.Threw)
      continue;
    ASSERT_EQ(Expected.Results.size(), Got.Results.size()) << C.Name;
    for (size_t I = 0; I != Expected.Results.size(); ++I)
      expectSameValue(Expected.Results[I], Got.Results[I],
                      std::string(C.Name) + " result " + std::to_string(I));
    EXPECT_EQ(Expected.Output, Got.Output) << C.Name;
  }
}

//===----------------------------------------------------------------------===//
// Soundness across configurations
//===----------------------------------------------------------------------===//

TEST(Backend, ScalarArithmetic) {
  checkSoundness("function y = f(a, b)\n"
                 "y = (a + b) * 3 - a / b + a \\ b + 2^a - a^0.5;\n",
                 "f", {4, 2});
}

TEST(Backend, ScalarLoopAccumulation) {
  checkSoundness("function s = f(n)\ns = 0;\nfor k = 1:n\ns = s + k * k;\n"
                 "end\n",
                 "f", {100});
}

TEST(Backend, WhileLoopWithBreakContinue) {
  checkSoundness("function s = f(n)\ns = 0;\nk = 0;\n"
                 "while 1\nk = k + 1;\nif k > n\nbreak;\nend\n"
                 "if mod(k, 2) == 0\ncontinue;\nend\ns = s + k;\nend\n",
                 "f", {20});
}

TEST(Backend, NestedLoops2D) {
  checkSoundness("function s = f(n)\nA = zeros(n, n);\n"
                 "for i = 1:n\nfor j = 1:n\nA(i, j) = i * 10 + j;\nend\nend\n"
                 "s = 0;\n"
                 "for i = 1:n\nfor j = 1:n\ns = s + A(i, j);\nend\nend\n",
                 "f", {15});
}

TEST(Backend, VectorGrowthInLoop) {
  checkSoundness("function s = f(n)\nx = 0;\nfor k = 1:n\nx(k) = sqrt(k);\n"
                 "end\ns = sum(x);\n",
                 "f", {50});
}

TEST(Backend, ComplexScalarIteration) {
  checkSoundness("function m = f(n)\nc = -0.4 + 0.6i;\nz = 0;\n"
                 "for k = 1:n\nz = z * z + c;\nend\nm = abs(z);\n",
                 "f", {12});
}

TEST(Backend, SmallVectorOps) {
  checkSoundness("function s = f(n)\nv = [1 2 3];\n"
                 "for k = 1:n\nv = [v(1) + 1, v(2) * 2, v(3) - 1];\nend\n"
                 "s = v(1) + v(2) + v(3);\n",
                 "f", {8});
}

TEST(Backend, MatrixLiteralAndConcat) {
  checkSoundness("function s = f(a)\nM = [a a+1; a+2 a+3];\n"
                 "N = [M; M];\ns = sum(sum(N));\n",
                 "f", {3});
}

TEST(Backend, RangesAndColonIndexing) {
  checkSoundness("function s = f(n)\nv = 1:n;\nw = v(2:2:end);\n"
                 "s = sum(w) + numel(w);\n",
                 "f", {17});
}

TEST(Backend, TwoDimColonAssignment) {
  checkSoundness("function s = f(n)\nA = zeros(n, n);\n"
                 "A(:, 2) = ones(n, 1) * 7;\nA(1, :) = 1:n;\n"
                 "s = sum(A(:, 2)) + sum(A(1, :));\n",
                 "f", {6});
}

TEST(Backend, BuiltinsMix) {
  checkSoundness("function s = f(n)\nv = linspace(0, 1, n);\n"
                 "s = max(v) + min(v) + mean(v) + norm(v) + sum(abs(v));\n",
                 "f", {11});
}

TEST(Backend, MatrixSolveAndEig) {
  checkSoundness("function s = f(n)\nA = eye(n) * 4;\n"
                 "for i = 1:n-1\nA(i, i+1) = 1;\nA(i+1, i) = 1;\nend\n"
                 "b = ones(n, 1);\nx = A \\ b;\ne = eig(A);\n"
                 "s = sum(x) + sum(e);\n",
                 "f", {8});
}

TEST(Backend, MatVecProducts) {
  checkSoundness("function s = f(n)\nA = zeros(n, n);\n"
                 "for i = 1:n\nfor j = 1:n\nA(i, j) = 1 / (i + j);\nend\nend\n"
                 "x = ones(n, 1);\ny = A * x;\nz = A * y + 2 * x;\n"
                 "s = norm(z);\n",
                 "f", {10});
}

TEST(Backend, RecursionFibonacci) {
  checkSoundness("function r = f(n)\nif n <= 1\nr = n;\nelse\n"
                 "r = f(n - 1) + f(n - 2);\nend\n",
                 "f", {12});
}

TEST(Backend, MutualCallsWithSubfunctions) {
  checkSoundness("function r = f(n)\nr = helper(n) + helper(n + 1);\n"
                 "function h = helper(x)\nh = x * x + inner(x);\n"
                 "function v = inner(x)\nv = x + 1;\n",
                 "f", {5});
}

TEST(Backend, MultipleOutputs) {
  checkSoundness("function [a, b, c] = f(n)\nv = [3 1 2] * n;\n"
                 "[a, b] = max(v);\nc = numel(v);\n",
                 "f", {4}, 3);
}

TEST(Backend, EarlyReturn) {
  checkSoundness("function r = f(n)\nr = -1;\nif n > 3\nreturn;\nend\n"
                 "r = n * 2;\n",
                 "f", {5});
}

TEST(Backend, StringsAndPrintf) {
  checkSoundness("function r = f(n)\nfor k = 1:n\n"
                 "fprintf('%d squared is %d\\n', k, k * k);\nend\n"
                 "disp('done');\nr = n;\n",
                 "f", {3});
}

TEST(Backend, ShortCircuitSemantics) {
  // The right operand must not evaluate (it would divide by zero and
  // print); both paths must agree.
  checkSoundness("function r = f(n)\nr = 0;\n"
                 "if n > 100 && probe(n) > 0\nr = 1;\nend\n"
                 "if n > 0 || probe(n) > 0\nr = r + 2;\nend\n"
                 "function p = probe(x)\nfprintf('probed\\n');\np = 1 / (x - x);\n",
                 "f", {5});
}

TEST(Backend, RandStreamIdenticalAcrossPaths) {
  checkSoundness("function s = f(n)\nA = rand(n, n);\nv = rand(1, n);\n"
                 "s = sum(sum(A)) + sum(v) + rand;\n",
                 "f", {7});
}

TEST(Backend, NegativeSqrtGoesComplex) {
  checkSoundness("function s = f(n)\nx = sqrt(-n);\ns = imag(x);\n", "f", {9});
}

TEST(Backend, SubscriptErrorAgrees) {
  checkSoundness("function r = f(n)\nv = zeros(n, 1);\nr = v(n + 1);\n", "f",
                 {4});
}

TEST(Backend, UndefinedOutputErrorAgrees) {
  checkSoundness("function r = f(n)\nif n > 100\nr = 1;\nend\n", "f", {3});
}

TEST(Backend, GrowMatrixTwoDim) {
  checkSoundness("function s = f(n)\nA = 0;\nA(n, n) = 5;\n"
                 "s = numel(A) + A(n, n) + A(1, 1);\n",
                 "f", {7});
}

TEST(Backend, TransposeAndDot) {
  checkSoundness("function s = f(n)\nv = (1:n)';\ns = v' * v + dot(v, v);\n",
                 "f", {9});
}

TEST(Backend, LogicalIndexing) {
  checkSoundness("function s = f(n)\nv = 1:n;\nm = v(v > 3);\n"
                 "v(v < 3) = 0;\ns = sum(m) + sum(v);\n",
                 "f", {10});
}

TEST(Backend, CallByValueThroughCompiledCode) {
  checkSoundness("function s = f(n)\na = zeros(1, n);\nb = touch(a);\n"
                 "s = sum(a) + b;\n"
                 "function r = touch(v)\nv(1) = 99;\nr = v(1);\n",
                 "f", {5});
}

TEST(Backend, ModRemFloorInLoop) {
  checkSoundness("function s = f(n)\ns = 0;\nfor k = 1:n\n"
                 "s = s + mod(k, 3) + rem(k, 4) + floor(k / 2) + "
                 "ceil(k / 3);\nend\n",
                 "f", {25});
}

TEST(Backend, DownwardAndFractionalRanges) {
  checkSoundness("function s = f(n)\ns = 0;\nfor k = n:-1:1\ns = s + k;\nend\n"
                 "for t = 0:0.25:1\ns = s + t;\nend\n",
                 "f", {10});
}

TEST(Backend, TrigPipeline) {
  checkSoundness("function s = f(n)\ns = 0;\nfor k = 1:n\n"
                 "s = s + sin(k) * cos(k) + atan2(k, n) + exp(-k);\nend\n",
                 "f", {15});
}

//===----------------------------------------------------------------------===//
// Repository and policy behavior
//===----------------------------------------------------------------------===//

TEST(EngineRepo, JitCompilesOncePerSkeleton) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource(
      "fib", "function r = fib(n)\nif n <= 1\nr = n;\nelse\n"
             "r = fib(n - 1) + fib(n - 2);\nend\n"));
  auto R = E.callFunction("fib", {makeValue(Value::intScalar(15))}, 1,
                          SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 610);
  // One constant-specialized version plus one generalized version; the
  // recursion must not compile one version per argument value.
  auto Versions = E.repository().versions("fib");
  ASSERT_FALSE(Versions.empty());
  EXPECT_LE(Versions.size(), 2u);
  EXPECT_LE(E.jitCompiles(), 2u);
}

TEST(EngineRepo, LocatorPrefersTighterSignature) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource("g", "function y = g(n)\ny = n + 1;\n"));
  // Two versions coexist: a generic one and a batch-optimized one for an
  // int-scalar invocation (Figure 3's multiple signatures).
  ASSERT_TRUE(E.precompileGeneric("g", 1));
  ASSERT_TRUE(E.precompileWithArgs("g", {makeValue(Value::intScalar(5))}));
  auto Versions = E.repository().versions("g");
  ASSERT_FALSE(Versions.empty());
  EXPECT_EQ(Versions.size(), 2u);

  // An int-scalar invocation picks the tighter (optimized) version...
  TypeSignature IntSig({Type::ofValue(Value::intScalar(5))});
  CompiledObjectPtr Hit = E.repository().lookup("g", IntSig);
  ASSERT_NE(Hit, nullptr);
  EXPECT_EQ(Hit->Mode, CodeGenMode::Optimized);
  // ...a matrix invocation only matches the generic one.
  TypeSignature MatSig({Type::ofValue(Value::zeros(2, 2))});
  CompiledObjectPtr Generic = E.repository().lookup("g", MatSig);
  ASSERT_NE(Generic, nullptr);
  EXPECT_EQ(Generic->Mode, CodeGenMode::Generic);
  // A repository hit means no further compilation.
  auto Args = std::vector<ValuePtr>{makeValue(Value::intScalar(5))};
  E.callFunction("g", Args, 1, SourceLoc());
  EXPECT_EQ(E.jitCompiles(), 0u);
}

TEST(EngineRepo, SpeculativeHitAvoidsJit) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  Engine E(O);
  ASSERT_TRUE(E.addSource(
      "sumto", "function s = sumto(n)\ns = 0;\nfor k = 1:n\ns = s + k;\nend\n"));
  ASSERT_TRUE(E.precompileSpeculative("sumto"));
  auto R = E.callFunction("sumto", {makeValue(Value::intScalar(100))}, 1,
                          SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 5050);
  // The speculative version matched: no JIT compile happened.
  EXPECT_EQ(E.jitCompiles(), 0u);
}

TEST(EngineRepo, SpeculativeMissFallsBackToJit) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  Engine E(O);
  // The speculator guesses n is an int scalar; invoking with a matrix is
  // rejected by the signature check, and the JIT kicks in (Section 3.6).
  ASSERT_TRUE(E.addSource(
      "total", "function s = total(n)\ns = 0;\nfor k = 1:n\ns = s + k;\nend\n"));
  ASSERT_TRUE(E.precompileSpeculative("total"));
  Value M = Value::zeros(1, 3);
  M.reRef(0) = 5; // colon uses the first element only
  auto R = E.callFunction("total", {makeValue(std::move(M))}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 15);
  EXPECT_GE(E.jitCompiles(), 1u);
}

TEST(EngineRepo, SnooperPicksUpSources) {
  std::string Dir = ::testing::TempDir() + "/majic_snoop";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream F(Dir + "/twice.m");
    F << "function y = twice(x)\ny = 2 * x;\n";
  }
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  Engine E(O);
  E.watchDirectory(Dir);
  EXPECT_EQ(E.snoop(), 1u);
  EXPECT_TRUE(E.knowsFunction("twice"));
  // The snooped function was speculatively compiled ahead of time (on the
  // background workers; drain to observe the published object).
  E.drainCompiles();
  EXPECT_GE(E.repository().totalObjects(), 1u);
  auto R = E.callFunction("twice", {makeValue(Value::intScalar(21))}, 1,
                          SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 42);
  // Unchanged files are not reported again.
  EXPECT_EQ(E.snoop(), 0u);
}

TEST(EngineRepo, InteractiveWorkspacePersists) {
  Engine E;
  E.runScript("x = 10;");
  E.runScript("y = x + 5;");
  ValuePtr Y = E.workspaceVar("y");
  ASSERT_NE(Y, nullptr);
  EXPECT_DOUBLE_EQ(Y->scalarValue(), 15);
  std::string Out = E.runScript("disp(y + 1)");
  EXPECT_EQ(Out, "16\n");
}

TEST(EngineRepo, ScriptCallsCompiledFunctions) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource("sq", "function y = sq(x)\ny = x * x;\n"));
  E.runScript("r = sq(9);");
  EXPECT_DOUBLE_EQ(E.workspaceVar("r")->scalarValue(), 81);
  EXPECT_GE(E.jitCompiles(), 1u);
}

//===----------------------------------------------------------------------===//
// Engine boundary errors (parity between compiled and interpreted paths)
//===----------------------------------------------------------------------===//

TEST(EngineBoundary, TooManyInputsRejectedOnCompiledPath) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x;\n"));
  try {
    E.callFunction("f", {makeScalar(1), makeScalar(2)}, 1, SourceLoc());
    FAIL() << "expected MatlabError";
  } catch (const MatlabError &Err) {
    EXPECT_NE(Err.message().find("too many input arguments"),
              std::string::npos);
  }
}

TEST(EngineBoundary, TooManyOutputsRejected) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource("f", "function y = f(x)\ny = x;\n"));
  try {
    E.callFunction("f", {makeScalar(1)}, 3, SourceLoc());
    FAIL() << "expected MatlabError";
  } catch (const MatlabError &Err) {
    EXPECT_NE(Err.message().find("too many output arguments"),
              std::string::npos);
  }
}

TEST(EngineBoundary, BadFileDoesNotPoisonLaterLoads) {
  Engine E;
  EXPECT_FALSE(E.addSource("bad", "function y = bad(\n"));
  // A later, valid file must still load and run.
  ASSERT_TRUE(E.addSource("good", "function y = good(x)\ny = x + 1;\n"));
  auto R = E.callFunction("good", {makeScalar(4)}, 1, SourceLoc());
  EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 5);
}

TEST(EngineBoundary, ZeroOutputFunctionCallableAsStatement) {
  // MATLAB allows statement calls to functions that return nothing; both
  // execution paths must too.
  std::string Src = "function r = main(n)\nshout(n);\nr = n;\n"
                    "function shout(x)\nfprintf('x=%d\\n', x);\n";
  for (CompilePolicy Pol :
       {CompilePolicy::InterpretOnly, CompilePolicy::Jit}) {
    EngineOptions O;
    O.Policy = Pol;
    O.InlineCalls = false; // keep the call visible to the call machinery
    Engine E(O);
    ASSERT_TRUE(E.addSource("main", Src));
    auto R = E.callFunction("main", {makeValue(Value::intScalar(7))}, 1,
                            SourceLoc());
    EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 7) << compilePolicyName(Pol);
    EXPECT_EQ(E.context().output(), "x=7\n") << compilePolicyName(Pol);
    // The *displayed* form (no semicolon) also runs, printing the callee's
    // own output but no "ans =" since nothing is returned.
    E.context().clearOutput();
    std::string Out = E.runScript("shout(3)\n");
    EXPECT_EQ(Out, "x=3\n") << compilePolicyName(Pol);
  }
}

TEST(EngineBoundary, RunawayRecursionGuarded) {
  Engine E;
  ASSERT_TRUE(E.addSource("spin", "function y = spin(n)\ny = spin(n + 1);\n"));
  try {
    E.callFunction("spin", {makeScalar(1)}, 1, SourceLoc());
    FAIL() << "expected MatlabError";
  } catch (const MatlabError &Err) {
    EXPECT_NE(Err.message().find("recursion depth"), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Deoptimization (optimistic real-domain math guards)
//===----------------------------------------------------------------------===//

TEST(Deopt, GuardFailureRecompilesAndMatchesInterpreter) {
  // sqrt of a data-dependent negative: optimistic code deopts, the retry
  // produces the interpreter's complex result.
  checkSoundness("function s = f(n)\nx = 5 - n;\ny = sqrt(x);\n"
                 "s = real(y) + 2 * imag(y);\n",
                 "f", {9});
}

TEST(Deopt, CounterAndReplacementVersion) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  // cos(n)*3 - 2 has the static range [-5, 1]: the sign is unknown at
  // compile time, so sqrt is compiled optimistically real with a guard.
  ASSERT_TRUE(E.addSource(
      "g", "function s = g(n)\nx = cos(n) * 3 - 2;\ny = sqrt(x);\n"
           "s = imag(y);\n"));
  auto R = E.callFunction("g", {makeValue(Value::intScalar(9))}, 1,
                          SourceLoc());
  double Expected = std::sqrt(-(std::cos(9.0) * 3 - 2)); // arg is negative
  EXPECT_NEAR(R[0]->scalarValue(), Expected, 1e-12);
  EXPECT_EQ(E.deoptimizations(), 1u);
  // The pessimistic replacement handles later calls without deopting.
  auto R2 = E.callFunction("g", {makeValue(Value::intScalar(9))}, 1,
                           SourceLoc());
  EXPECT_NEAR(R2[0]->scalarValue(), Expected, 1e-12);
  EXPECT_EQ(E.deoptimizations(), 1u);
}

TEST(Deopt, NoDeoptWhenGuardsHold) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  Engine E(O);
  ASSERT_TRUE(E.addSource(
      "h", "function s = h(n)\ns = 0;\nfor k = 1:n\ns = s + sqrt(s + "
           "k);\nend\n"));
  auto R = E.callFunction("h", {makeValue(Value::intScalar(50))}, 1,
                          SourceLoc());
  EXPECT_GT(R[0]->scalarValue(), 0);
  EXPECT_EQ(E.deoptimizations(), 0u);
}

TEST(Deopt, OutputAndRandRolledBackOnRetry) {
  // The failed optimistic attempt prints and draws random numbers before
  // tripping the guard; the retry must not duplicate either.
  std::string Src = "function s = f(n)\nfprintf('once\\n');\nr = rand;\n"
                    "y = sqrt(3 - n);\ns = r + imag(y);\n";
  EngineOptions Interp;
  Interp.Policy = CompilePolicy::InterpretOnly;
  RunOutcome Ref = runWith(Interp, Src, "f", {7}, 1);
  EngineOptions Jit;
  Jit.Policy = CompilePolicy::Jit;
  RunOutcome Got = runWith(Jit, Src, "f", {7}, 1);
  ASSERT_FALSE(Got.Threw) << Got.ErrorMessage;
  EXPECT_EQ(Ref.Output, Got.Output);
  EXPECT_DOUBLE_EQ(Ref.Results[0].re(0), Got.Results[0].re(0));
}

//===----------------------------------------------------------------------===//
// Performance-shape sanity (not timing: instruction counts)
//===----------------------------------------------------------------------===//

TEST(BackendPerf, CheckRemovalChangesEmittedOpcodes) {
  // With range propagation the loop accesses compile to unchecked element
  // ops; without it every access carries the subscript check (Figure 7's
  // "no ranges" mechanism, observed structurally in the IR).
  std::string Src = "function s = f(n)\nA = zeros(n, 1);\n"
                    "for k = 1:n\nA(k) = k;\nend\n"
                    "s = 0;\nfor k = 1:n\ns = s + A(k);\nend\n";
  SourceManager SM;
  Diagnostics Diags;
  auto Mod = parseModule("f", Src, SM, Diags);
  ASSERT_NE(Mod, nullptr);
  auto Info = disambiguate(*Mod->mainFunction(), *Mod);
  TypeSignature Sig({Type::ofValue(Value::intScalar(64))});

  auto CountOps = [&](bool Ranges, Opcode Op) {
    CompileRequest Req;
    Req.FI = Info.get();
    Req.Sig = Sig;
    Req.Infer.EnableRanges = Ranges;
    auto R = compileFunction(Req);
    EXPECT_TRUE(R.has_value());
    unsigned N = 0;
    for (const Instr &In : R->Code->Code)
      N += In.Op == Op;
    return N;
  };

  // Ranges on: unchecked loads and stores, no checked ones.
  EXPECT_GT(CountOps(true, Opcode::LoadEl), 0u);
  EXPECT_EQ(CountOps(true, Opcode::LoadElChk), 0u);
  EXPECT_GT(CountOps(true, Opcode::StoreEl), 0u);
  // Ranges off: every access is checked.
  EXPECT_EQ(CountOps(false, Opcode::LoadEl), 0u);
  EXPECT_GT(CountOps(false, Opcode::LoadElChk), 0u);
  EXPECT_GT(CountOps(false, Opcode::StoreElChk), 0u);
}

TEST(BackendPerf, SpillEverythingExecutesMoreInstructions) {
  std::string Src = "function s = f(n)\ns = 0;\nfor k = 1:n\n"
                    "s = s + k * 2 - 1;\nend\n";
  EngineOptions Normal;
  Normal.Policy = CompilePolicy::Jit;
  EngineOptions SpillAll = Normal;
  SpillAll.RegAlloc.SpillEverything = true;

  uint64_t InstrNormal, InstrSpill;
  {
    Engine E(Normal);
    E.addSource("f", Src);
    E.callFunction("f", {makeValue(Value::intScalar(1000))}, 1, SourceLoc());
    InstrNormal = E.vmInstructions();
  }
  {
    Engine E(SpillAll);
    E.addSource("f", Src);
    E.callFunction("f", {makeValue(Value::intScalar(1000))}, 1, SourceLoc());
    InstrSpill = E.vmInstructions();
  }
  EXPECT_LT(InstrNormal, InstrSpill);
  EXPECT_GT(static_cast<double>(InstrSpill) / InstrNormal, 1.5);
}

TEST(BackendPerf, OptimizerShrinksLoopWork) {
  std::string Src = "function s = f(n)\ns = 0;\nfor k = 1:n\n"
                    "s = s + k * 3.5 + 2 * 7 + sin(0.5);\nend\n";
  EngineOptions Jit;
  Jit.Policy = CompilePolicy::Jit;
  EngineOptions Opt;
  Opt.Policy = CompilePolicy::Falcon;

  uint64_t InstrJit, InstrOpt;
  {
    Engine E(Jit);
    E.addSource("f", Src);
    E.callFunction("f", {makeValue(Value::intScalar(2000))}, 1, SourceLoc());
    InstrJit = E.vmInstructions();
  }
  {
    Engine E(Opt);
    E.addSource("f", Src);
    E.callFunction("f", {makeValue(Value::intScalar(2000))}, 1, SourceLoc());
    InstrOpt = E.vmInstructions();
  }
  // Constant folding + LICM + unrolling must cut dispatched instructions.
  EXPECT_LT(InstrOpt, InstrJit);
}

TEST(BackendPerf, GenericModeExecutesFarMoreWork) {
  std::string Src = "function s = f(n)\ns = 0;\nfor k = 1:n\n"
                    "s = s + k * k;\nend\n";
  uint64_t InstrJit;
  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    Engine E(O);
    E.addSource("f", Src);
    E.callFunction("f", {makeValue(Value::intScalar(500))}, 1, SourceLoc());
    InstrJit = E.vmInstructions();
  }
  // mcc-style code runs boxed ops; in our VM that is fewer dispatched
  // instructions but each is a heavyweight runtime call. Time it instead:
  // JIT must beat generic by a healthy factor on scalar loops.
  EngineOptions JO;
  JO.Policy = CompilePolicy::Jit;
  Engine EJ(JO);
  EJ.addSource("f", Src);
  EngineOptions GO;
  GO.Policy = CompilePolicy::Mcc;
  Engine EG(GO);
  EG.addSource("f", Src);
  EG.precompileGeneric("f", 1);

  auto Arg = [&] { return std::vector<ValuePtr>{makeValue(Value::intScalar(200000))}; };
  // Warm both.
  EJ.callFunction("f", Arg(), 1, SourceLoc());
  EG.callFunction("f", Arg(), 1, SourceLoc());
  Timer TJ;
  EJ.callFunction("f", Arg(), 1, SourceLoc());
  double JitSec = TJ.seconds();
  Timer TG;
  EG.callFunction("f", Arg(), 1, SourceLoc());
  double GenSec = TG.seconds();
  EXPECT_LT(JitSec * 2, GenSec) << "jit=" << JitSec << " gen=" << GenSec;
  (void)InstrJit;
}

} // namespace
