//===- tests/ValueSerializeTest.cpp - Workspace snapshot format ------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The MJWS workspace snapshot encoding behind session hibernation. Two
// bars, mirroring the code store's (RepoStoreTest):
//
//  * Round trips are bit-identical for every Value class - including
//    empties, complex planes, logical masks, NaN payloads and signed
//    zeros - because a resurrected session must be indistinguishable from
//    one that never left memory.
//
//  * No mutation of the bytes survives the validation ladder: every
//    single-bit flip, every truncation, and arbitrary garbage must be
//    rejected with a SerializeError, never decoded into a torn workspace
//    and never crashing the decoder.
//
//===----------------------------------------------------------------------===//

#include "runtime/ValueSerialize.h"
#include "support/Hashing.h"

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <string>
#include <vector>

using namespace majic;

namespace {

uint64_t bitsOf(double X) {
  uint64_t B;
  std::memcpy(&B, &X, sizeof(B));
  return B;
}

double doubleFromBits(uint64_t B) {
  double X;
  std::memcpy(&X, &B, sizeof(X));
  return X;
}

/// Bit-level equality: NaN payloads and -0.0 must survive, so == is not
/// good enough.
void expectBitIdentical(const Value &A, const Value &B) {
  ASSERT_EQ(A.mclass(), B.mclass());
  if (A.isString()) {
    EXPECT_EQ(A.stringValue(), B.stringValue());
    return;
  }
  ASSERT_EQ(A.rows(), B.rows());
  ASSERT_EQ(A.cols(), B.cols());
  for (size_t I = 0; I != A.numel(); ++I) {
    EXPECT_EQ(bitsOf(A.re(I)), bitsOf(B.re(I))) << "re[" << I << "]";
    if (A.isComplex()) {
      EXPECT_EQ(bitsOf(A.im(I)), bitsOf(B.im(I))) << "im[" << I << "]";
    }
  }
}

Value roundTrip(const Value &V) {
  ser::ByteWriter W;
  ser::writeValue(W, V);
  std::string Bytes = W.take();
  ser::ByteReader R(Bytes);
  Value Out = ser::readValue(R);
  EXPECT_TRUE(R.atEnd()) << "decoder left trailing bytes behind";
  return Out;
}

/// One representative of every shape x class combination the workspace
/// can hold.
std::vector<Value> corpus() {
  std::vector<Value> Vs;
  Vs.push_back(Value::boolScalar(true));
  Vs.push_back(Value::boolScalar(false));
  Value Mask = Value::zeros(2, 3, MClass::Bool); // a logical mask
  Mask.reData()[0] = 1;
  Mask.reData()[3] = 1;
  Mask.reData()[5] = 1;
  Vs.push_back(Mask);
  Vs.push_back(Value::intScalar(42));
  Vs.push_back(Value::intScalar(-7));
  Value Ints = Value::zeros(3, 1, MClass::Int);
  for (size_t I = 0; I != 3; ++I)
    Ints.reData()[I] = double(I) - 1;
  Vs.push_back(Ints);
  Vs.push_back(Value::scalar(3.5));
  Value Hard = Value::zeros(1, 5, MClass::Real);
  Hard.reData()[0] = doubleFromBits(0x7ff8deadbeefcafeULL); // NaN w/ payload
  Hard.reData()[1] = -0.0;
  Hard.reData()[2] = std::numeric_limits<double>::infinity();
  Hard.reData()[3] = -std::numeric_limits<double>::infinity();
  Hard.reData()[4] = std::numeric_limits<double>::denorm_min();
  Vs.push_back(Hard);
  Vs.push_back(Value::complexScalar(1.5, -2.5));
  Value Cplx = Value::zeros(2, 2, MClass::Complex);
  for (size_t I = 0; I != 4; ++I) {
    Cplx.reData()[I] = double(I) * 0.25;
    Cplx.imData()[I] = -double(I);
  }
  Cplx.imData()[3] = doubleFromBits(0xfff8000000000001ULL); // -NaN payload
  Vs.push_back(Cplx);
  Vs.push_back(Value::str("hello"));
  Vs.push_back(Value::str(""));
  Vs.push_back(Value::str(std::string("a\0b", 3))); // NUL-safe
  // Empties of every class: numel 0 but the shape still round-trips.
  Vs.push_back(Value::zeros(0, 0, MClass::Real));
  Vs.push_back(Value::zeros(0, 5, MClass::Real));
  Vs.push_back(Value::zeros(3, 0, MClass::Int));
  Vs.push_back(Value::zeros(0, 0, MClass::Complex));
  Vs.push_back(Value::zeros(0, 4, MClass::Bool));
  return Vs;
}

/// A workspace image exercising both sections of the payload.
ser::WorkspaceImage sampleImage() {
  ser::WorkspaceImage W;
  W.Sources.push_back({"bump", "function y = bump(x)\ny = x + 1;\n"});
  W.Sources.push_back({"twice", "function y = twice(x)\ny = 2 * x;\n"});
  for (Value &V : corpus()) {
    ser::WorkspaceImage::VarDef D;
    D.Name = "v" + std::to_string(W.Vars.size());
    D.V = std::make_shared<Value>(std::move(V));
    W.Vars.push_back(std::move(D));
  }
  return W;
}

//===----------------------------------------------------------------------===//
// Round trips
//===----------------------------------------------------------------------===//

TEST(ValueSerializeTest, EveryClassRoundTripsBitIdentically) {
  for (const Value &V : corpus()) {
    SCOPED_TRACE("class " + std::to_string(int(V.mclass())) + " " +
                 std::to_string(V.rows()) + "x" + std::to_string(V.cols()));
    expectBitIdentical(V, roundTrip(V));
  }
}

TEST(ValueSerializeTest, WorkspaceImageRoundTrips) {
  ser::WorkspaceImage W = sampleImage();
  std::string Bytes = ser::encodeWorkspaceImage(W);
  ser::WorkspaceImage Back = ser::decodeWorkspaceImage(Bytes);

  ASSERT_EQ(Back.Sources.size(), W.Sources.size());
  for (size_t I = 0; I != W.Sources.size(); ++I) {
    EXPECT_EQ(Back.Sources[I].Name, W.Sources[I].Name);
    EXPECT_EQ(Back.Sources[I].Text, W.Sources[I].Text);
  }
  ASSERT_EQ(Back.Vars.size(), W.Vars.size());
  for (size_t I = 0; I != W.Vars.size(); ++I) {
    EXPECT_EQ(Back.Vars[I].Name, W.Vars[I].Name);
    expectBitIdentical(*W.Vars[I].V, *Back.Vars[I].V);
  }

  // Deterministic encoding: the same workspace produces the same bytes.
  EXPECT_EQ(ser::encodeWorkspaceImage(Back), Bytes);
}

TEST(ValueSerializeTest, EmptyWorkspaceRoundTrips) {
  ser::WorkspaceImage W;
  ser::WorkspaceImage Back =
      ser::decodeWorkspaceImage(ser::encodeWorkspaceImage(W));
  EXPECT_TRUE(Back.Sources.empty());
  EXPECT_TRUE(Back.Vars.empty());
}

//===----------------------------------------------------------------------===//
// The validation ladder rejects every mutation
//===----------------------------------------------------------------------===//

TEST(ValueSerializeTest, EverySingleBitFlipIsRejected) {
  std::string Bytes = ser::encodeWorkspaceImage(sampleImage());
  for (size_t I = 0; I != Bytes.size(); ++I) {
    for (int Bit = 0; Bit != 8; ++Bit) {
      std::string Mutated = Bytes;
      Mutated[I] = char(uint8_t(Mutated[I]) ^ uint8_t(1u << Bit));
      EXPECT_THROW(ser::decodeWorkspaceImage(Mutated), ser::SerializeError)
          << "bit " << Bit << " of byte " << I << " slipped through";
    }
  }
}

TEST(ValueSerializeTest, EveryTruncationIsRejected) {
  std::string Bytes = ser::encodeWorkspaceImage(sampleImage());
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    EXPECT_THROW(ser::decodeWorkspaceImage(Bytes.substr(0, Len)),
                 ser::SerializeError)
        << "truncation to " << Len << " bytes slipped through";
  }
  // Appended bytes are trailing garbage, equally rejected.
  EXPECT_THROW(ser::decodeWorkspaceImage(Bytes + '\0'), ser::SerializeError);
}

TEST(ValueSerializeTest, GarbageIsRejected) {
  std::mt19937 Rng(0x4d4a5753u); // deterministic: same sweep every run
  for (int Round = 0; Round != 256; ++Round) {
    std::string Junk(Rng() % 512, '\0');
    for (char &C : Junk)
      C = char(Rng() & 0xff);
    EXPECT_THROW(ser::decodeWorkspaceImage(Junk), ser::SerializeError)
        << "garbage round " << Round;
  }
}

TEST(ValueSerializeTest, VersionSkewIsItsOwnVerdict) {
  std::string Bytes = ser::encodeWorkspaceImage(sampleImage());
  // The version is the second u32 (little-endian), outside the CRC's
  // coverage: patch it and nothing else trips, so the decoder must
  // classify skew specifically - stores delete skewed snapshots silently
  // instead of quarantining them as corrupt.
  Bytes[4] = char(ser::kWorkspaceFormatVersion + 1);
  EXPECT_THROW(ser::decodeWorkspaceImage(Bytes), ser::WorkspaceSkew);
}

//===----------------------------------------------------------------------===//
// Direct attacks on the per-value decoder
//===----------------------------------------------------------------------===//

TEST(ValueSerializeTest, ReadValueRejectsMalformedEncodings) {
  auto Decode = [](std::function<void(ser::ByteWriter &)> Fill) {
    ser::ByteWriter W;
    Fill(W);
    std::string Bytes = W.take();
    ser::ByteReader R(Bytes);
    return ser::readValue(R);
  };

  // Class byte past String.
  EXPECT_THROW(Decode([](ser::ByteWriter &W) { W.u8(5); }),
               ser::SerializeError);
  // Real claiming an imaginary plane.
  EXPECT_THROW(Decode([](ser::ByteWriter &W) {
                 W.u8(uint8_t(MClass::Real));
                 W.u64(1);
                 W.u64(1);
                 W.u8(1);
                 W.f64(0.0);
                 W.f64(0.0);
               }),
               ser::SerializeError);
  // Complex denying its imaginary plane.
  EXPECT_THROW(Decode([](ser::ByteWriter &W) {
                 W.u8(uint8_t(MClass::Complex));
                 W.u64(1);
                 W.u64(1);
                 W.u8(0);
                 W.f64(0.0);
               }),
               ser::SerializeError);
  // Undefined flag bits.
  EXPECT_THROW(Decode([](ser::ByteWriter &W) {
                 W.u8(uint8_t(MClass::Real));
                 W.u64(1);
                 W.u64(1);
                 W.u8(2);
                 W.f64(0.0);
               }),
               ser::SerializeError);
  // rows * cols overflows.
  EXPECT_THROW(Decode([](ser::ByteWriter &W) {
                 W.u8(uint8_t(MClass::Real));
                 W.u64(uint64_t(1) << 33);
                 W.u64(uint64_t(1) << 33);
                 W.u8(0);
               }),
               ser::SerializeError);
  // Data length exceeding the remaining bytes: the decoder must refuse
  // before allocating, not crash after.
  EXPECT_THROW(Decode([](ser::ByteWriter &W) {
                 W.u8(uint8_t(MClass::Real));
                 W.u64(1u << 20);
                 W.u64(1u << 20);
                 W.u8(0);
                 W.f64(1.0);
               }),
               ser::SerializeError);
}

TEST(ValueSerializeTest, WorkspaceRejectsNonIdentifierVariableNames) {
  // A CRC-valid payload whose variable name is not an identifier can only
  // come from a writer bug or an attack; the ladder still refuses it.
  ser::ByteWriter P;
  P.u32(0); // no sources
  P.u32(1); // one var
  P.str("not an identifier");
  ser::writeValue(P, Value::scalar(1.0));
  std::string Payload = P.take();
  ser::ByteWriter H;
  H.u32(ser::kWorkspaceMagic);
  H.u32(ser::kWorkspaceFormatVersion);
  H.u64(Payload.size());
  H.u32(hashing::crc32(Payload));
  std::string Bytes = H.take() + Payload;
  EXPECT_THROW(ser::decodeWorkspaceImage(Bytes), ser::SerializeError);
}

} // namespace
