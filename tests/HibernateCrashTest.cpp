//===- tests/HibernateCrashTest.cpp - Process-kill recovery sweep ----------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The crash-durability contract of session hibernation, tested the only
// honest way: by actually dying. A forked child runs a deterministic
// hibernation scenario with a SIGKILL armed at the Nth crossing of a
// snapshot-write (or snapshot-load) fault site, so across the sweep the
// process is murdered at every interesting instruction boundary of the
// save and resurrect paths - mid-encode, mid-write, between fsync and
// rename, after rename, mid-decode, after the consumed snapshot is
// deleted. After each kill the parent restarts the service on the same
// session directory and asserts the recovery promises:
//
//  * never resurrect a torn workspace: every snapshot still on disk
//    decodes clean and probes bit-identical to an uncrashed session;
//  * no other session's state is lost: only the snapshot in flight at
//    the kill may be missing, and then the session is *gone* (recompute),
//    never silently wrong;
//  * crash debris is swept: no temp files or quarantines survive restart.
//
// The scenario: cap 2, eight sessions created in order, each loaded with
// distinctive state (a scalar, an indexed matrix, a complex, an
// interactive function definition). Sessions 3..8's creations each
// hibernate the LRU idle session, so snapshots 1..6 are written in a
// known order and every kill index maps to a known in-flight save.
//
// fork() + SIGKILL: incompatible with TSan (and pointless under it), so
// this test is excluded from the TSan matrix in ci.yml/check.sh.
//
//===----------------------------------------------------------------------===//

#include "service/SessionManager.h"
#include "service/SnapshotStore.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

using namespace majic;
namespace fs = std::filesystem;

namespace {

constexpr unsigned kCap = 2;       ///< live-session cap in the child
constexpr int kSessions = 8;       ///< sessions the scenario creates
constexpr int kHibernated = 6;     ///< snapshots a clean run leaves behind
constexpr int kSavePoints = 2;     ///< session-snapshot-save points per save
constexpr int kAtomicPoints = 5;   ///< atomic-write-step points per save
constexpr int kLoadPoints = 3;     ///< session-snapshot-load points/resurrect
constexpr int kLoadProbes = 3;     ///< sessions the load-sweep child probes

/// Session \p I's interactive function definition - same name in every
/// session, different body, so a snapshot replayed into the wrong session
/// would be caught by the probe.
std::string defSrc(int I) {
  return "function y = bump(x)\ny = x + " + std::to_string(I) + ";\n";
}

/// Session \p I's distinctive workspace: a scalar, an indexed matrix
/// element, and a complex - one of each serialized shape.
std::string stateSrc(int I) {
  std::string N = std::to_string(I);
  return "a = " + N + " * 3;\nm = zeros(2, 2);\nm(1, 2) = " + N +
         " + 0.5;\nz = sqrt(-1) * " + N + ";";
}

/// Echoes every piece of the state; identical text in every session, so
/// outputs differ exactly as the workspaces do.
const char *kProbeSrc = "p1 = a * 2\n"
                        "p2 = m(1, 2)\n"
                        "p3 = z + 1\n"
                        "p4 = bump(7)";

ServiceOptions childOptions(const fs::path &Dir, unsigned Cap) {
  ServiceOptions O;
  O.Session.Policy = CompilePolicy::InterpretOnly;
  O.Workers = 1; // one worker + sequential submits = deterministic order
  O.SpecThreads = 1;
  O.MaxSessions = Cap;
  O.SessionDir = Dir.string();
  return O;
}

/// The hibernation scenario. Runs in the forked child; exits with a
/// distinct code on any unexpected reply so the parent can tell "scenario
/// broke" from "SIGKILL fired" (the expected death).
void runScenario(const fs::path &Dir) {
  SessionManager M(childOptions(Dir, kCap));
  for (int I = 1; I <= kSessions; ++I) {
    if (M.createSession() != SessionId(I))
      _exit(10);
    if (M.submit(I, defSrc(I)).get().St != Reply::Status::Ok)
      _exit(11);
    if (M.submit(I, stateSrc(I)).get().St != Reply::Status::Ok)
      _exit(12);
  }
  M.shutdown();
}

/// Forks, arms the kill in the child, runs \p Body, and reports how the
/// child died. The parent must have no live threads when this is called
/// (every SessionManager joins its workers at destruction), or the child
/// could inherit a locked allocator.
template <typename Fn>
int runChild(faults::Site S, uint64_t Nth, const Fn &Body) {
  pid_t Pid = fork();
  if (Pid < 0)
    return -1;
  if (Pid == 0) {
    faults::reset();
    faults::armKill(S, Nth);
    Body();
    _exit(0); // survived: the kill point never fired
  }
  int Status = 0;
  waitpid(Pid, &Status, 0);
  return Status;
}

std::set<uint64_t> snapshotsOnDisk(const fs::path &Dir) {
  SnapshotStore St(Dir.string());
  std::vector<uint64_t> Ids = St.scan();
  return std::set<uint64_t>(Ids.begin(), Ids.end());
}

class HibernateCrashTest : public ::testing::Test {
protected:
  void SetUp() override {
    faults::reset();
    const char *Base = std::getenv("MAJIC_CRASH_TEST_DIR");
    Dir = (Base && *Base ? fs::path(Base) : fs::temp_directory_path()) /
          ("majic_crash_" +
           std::string(
               ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(Dir);
    if (Reference.empty())
      computeReferences();
  }
  void TearDown() override {
    faults::reset();
    fs::remove_all(Dir);
  }

  /// What each session's probe prints when nothing ever crashed, from a
  /// service that never hibernates. The bar for every resurrected
  /// session is bit-identity with this.
  void computeReferences() {
    ServiceOptions O;
    O.Session.Policy = CompilePolicy::InterpretOnly;
    O.Workers = 1;
    O.SpecThreads = 1;
    SessionManager M(O);
    for (int I = 1; I <= kSessions; ++I) {
      SessionId Id = M.createSession();
      ASSERT_EQ(Id, SessionId(I));
      ASSERT_EQ(M.submit(Id, defSrc(I)).get().St, Reply::Status::Ok);
      ASSERT_EQ(M.submit(Id, stateSrc(I)).get().St, Reply::Status::Ok);
      Reply R = M.submit(Id, kProbeSrc).get();
      ASSERT_EQ(R.St, Reply::Status::Ok);
      ASSERT_FALSE(R.Output.empty());
      Reference[I] = R.Output;
    }
  }

  /// Restarts the service on the crashed directory and holds it to the
  /// recovery promises. \p Expected is the exact snapshot set the kill
  /// schedule predicts on disk.
  void verifyRecovery(const std::set<uint64_t> &Expected) {
    EXPECT_EQ(snapshotsOnDisk(Dir), Expected);

    SessionManager M(childOptions(Dir, /*Cap=*/kSessions));
    for (int I = 1; I <= kHibernated; ++I) {
      Reply R = M.submit(I, kProbeSrc).get();
      if (Expected.count(I)) {
        // Durable snapshot: the resurrected session must be
        // indistinguishable from one that never left memory.
        EXPECT_EQ(R.St, Reply::Status::Ok) << "session " << I << ": " << R.Output;
        EXPECT_EQ(R.Output, Reference[I]) << "session " << I << " resurrected torn";
      } else {
        // No snapshot: the session must be *gone* - an explicit recompute
        // signal - never a silently wrong workspace.
        EXPECT_EQ(R.St, Reply::Status::SessionGone) << "session " << I;
      }
    }

    // Crash debris never survives a restart: the recovery sweep cleared
    // torn temp files, and atomic writes mean a kill can never produce a
    // corrupt (= quarantinable) snapshot - only a missing one.
    for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
      std::string Name = E.path().filename().string();
      EXPECT_EQ(Name.find(".corrupt"), std::string::npos) << Name;
      EXPECT_EQ(Name.find(".tmp"), std::string::npos) << Name;
    }
  }

  void expectKilled(int Status, uint64_t K) {
    ASSERT_TRUE(WIFSIGNALED(Status))
        << "kill " << K << ": child exited with "
        << (WIFEXITED(Status) ? WEXITSTATUS(Status) : -1)
        << " instead of dying at the armed point";
    ASSERT_EQ(WTERMSIG(Status), SIGKILL) << "kill " << K;
  }

  fs::path Dir;
  static std::map<int, std::string> Reference;
};

std::map<int, std::string> HibernateCrashTest::Reference;

//===----------------------------------------------------------------------===//
// Baseline: the scenario itself, uncrashed
//===----------------------------------------------------------------------===//

TEST_F(HibernateCrashTest, CleanScenarioLeavesSixDurableSnapshots) {
  // In-process (no kill): sessions 1..6 hibernate in order, 7 and 8 stay
  // live, and shutdown leaves the snapshots on disk for the next start.
  {
    SessionManager M(childOptions(Dir, kCap));
    for (int I = 1; I <= kSessions; ++I) {
      ASSERT_EQ(M.createSession(), SessionId(I));
      ASSERT_EQ(M.submit(I, defSrc(I)).get().St, Reply::Status::Ok);
      ASSERT_EQ(M.submit(I, stateSrc(I)).get().St, Reply::Status::Ok);
    }
    EXPECT_EQ(M.liveSessions(), size_t(kCap));
    EXPECT_EQ(M.hibernatedSessions(), size_t(kHibernated));
  }
  verifyRecovery({1, 2, 3, 4, 5, 6});
}

//===----------------------------------------------------------------------===//
// The kill sweeps
//===----------------------------------------------------------------------===//

// Sweep 1: SIGKILL at every session-snapshot-save crossing (2 per save,
// 6 saves: after the workspace is encoded, and after the atomic write
// completed but before the service records the hibernation).
TEST_F(HibernateCrashTest, KillSweepOverSnapshotSavePoints) {
  for (uint64_t K = 1; K <= uint64_t(kHibernated * kSavePoints); ++K) {
    SCOPED_TRACE("session-snapshot-save kill:" + std::to_string(K));
    fs::remove_all(Dir);
    int Status = runChild(faults::Site::SessionSnapshotSave, K,
                          [this] { runScenario(Dir); });
    expectKilled(Status, K);

    // The kill lands in save j; the file exists iff the kill point was
    // the one *after* the atomic write.
    uint64_t J = (K + kSavePoints - 1) / kSavePoints;
    std::set<uint64_t> Expected;
    for (uint64_t I = 1; I < J; ++I)
      Expected.insert(I);
    if (K % kSavePoints == 0)
      Expected.insert(J);
    verifyRecovery(Expected);
  }
}

// Sweep 2: SIGKILL at every atomic-write-step crossing (5 per save: after
// open, after each half of the payload, after fsync, after rename), i.e.
// at every distinct on-disk state a torn write can leave behind.
TEST_F(HibernateCrashTest, KillSweepOverAtomicWriteSteps) {
  for (uint64_t K = 1; K <= uint64_t(kHibernated * kAtomicPoints); ++K) {
    SCOPED_TRACE("atomic-write-step kill:" + std::to_string(K));
    fs::remove_all(Dir);
    int Status = runChild(faults::Site::AtomicWriteStep, K,
                          [this] { runScenario(Dir); });
    expectKilled(Status, K);

    // Steps 1..4 die before the rename: only a temp file, no snapshot.
    // Step 5 dies after it: the snapshot is durably in place.
    uint64_t J = (K + kAtomicPoints - 1) / kAtomicPoints;
    std::set<uint64_t> Expected;
    for (uint64_t I = 1; I < J; ++I)
      Expected.insert(I);
    if (K % kAtomicPoints == 0)
      Expected.insert(J);
    verifyRecovery(Expected);
  }
}

// Sweep 3: SIGKILL at every session-snapshot-load crossing of a resurrect
// (3 per resurrect: after the raw read, after the decode verdict, after
// the consumed snapshot is deleted). The child starts on a pre-built
// directory of six snapshots and probes three sessions.
TEST_F(HibernateCrashTest, KillSweepOverResurrectLoadPoints) {
  for (uint64_t K = 1; K <= uint64_t(kLoadProbes * kLoadPoints); ++K) {
    SCOPED_TRACE("session-snapshot-load kill:" + std::to_string(K));
    fs::remove_all(Dir);
    runScenario(Dir); // in-process, no kill: builds snapshots 1..6

    int Status = runChild(faults::Site::SessionSnapshotLoad, K, [this] {
      SessionManager M(childOptions(Dir, /*Cap=*/kSessions));
      for (int I = 1; I <= kLoadProbes; ++I)
        if (M.submit(I, kProbeSrc).get().St != Reply::Status::Ok)
          _exit(13);
      _exit(0);
    });
    expectKilled(Status, K);

    // The kill lands in resurrect s. Sessions probed before s completed
    // their resurrects - snapshot consumed, state live-and-lost with the
    // kill, session explicitly gone (that is hibernation's contract: it
    // durably parks *idle* sessions, it is not a checkpoint of live
    // ones). Session s's snapshot survives unless the kill point was the
    // one after the delete. Sessions past the probes are untouched.
    uint64_t S = (K + kLoadPoints - 1) / kLoadPoints;
    std::set<uint64_t> Expected;
    if (K % kLoadPoints != 0)
      Expected.insert(S);
    for (uint64_t I = S + 1; I <= kHibernated; ++I)
      Expected.insert(I);
    verifyRecovery(Expected);
  }
}

// The three sweeps above cover 12 + 30 + 9 = 51 distinct kill points,
// comfortably past the 40 the acceptance bar demands; this guard keeps
// the arithmetic honest if the per-site point counts ever change.
TEST_F(HibernateCrashTest, SweepCoversAtLeastFortyKillPoints) {
  EXPECT_GE(kHibernated * kSavePoints + kHibernated * kAtomicPoints +
                kLoadProbes * kLoadPoints,
            40);
}

} // namespace
