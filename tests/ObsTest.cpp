//===- tests/ObsTest.cpp - Observability subsystem tests -------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The observability subsystem end to end: metrics registry correctness
// under concurrent recording, histogram bucketing edge cases, trace-ring
// wraparound, Chrome-trace JSON well-formedness (parsed back with a
// minimal JSON reader), per-function profiles after a scripted session,
// and the disabled-mode zero-event guarantee.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "obs/Metrics.h"
#include "obs/Profile.h"
#include "obs/Trace.h"

#include <gtest/gtest.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace majic;

namespace {

//===----------------------------------------------------------------------===//
// Minimal JSON reader: validates well-formedness, the property the Chrome
// trace and metrics dumps must uphold for chrome://tracing / Perfetto and
// `python3 -m json.tool` to load them. Accepts exactly one JSON value.
//===----------------------------------------------------------------------===//

class JsonValidator {
public:
  explicit JsonValidator(const std::string &S) : S(S) {}

  bool valid() {
    skipWs();
    if (!value())
      return false;
    skipWs();
    return P == S.size();
  }

private:
  void skipWs() {
    while (P < S.size() && std::isspace(static_cast<unsigned char>(S[P])))
      ++P;
  }
  bool lit(const char *L) {
    size_t N = std::strlen(L);
    if (S.compare(P, N, L) != 0)
      return false;
    P += N;
    return true;
  }
  bool string() {
    if (P >= S.size() || S[P] != '"')
      return false;
    ++P;
    while (P < S.size()) {
      char C = S[P];
      if (C == '"') {
        ++P;
        return true;
      }
      if (C == '\\') {
        ++P;
        if (P >= S.size())
          return false;
        char E = S[P];
        if (E == 'u') {
          if (P + 4 >= S.size())
            return false;
          for (int I = 1; I <= 4; ++I)
            if (!std::isxdigit(static_cast<unsigned char>(S[P + I])))
              return false;
          P += 4;
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return false;
        }
      } else if (static_cast<unsigned char>(C) < 0x20) {
        return false; // raw control character: invalid JSON
      }
      ++P;
    }
    return false;
  }
  bool number() {
    size_t Start = P;
    if (P < S.size() && S[P] == '-')
      ++P;
    size_t Digits = P;
    while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
      ++P;
    if (P == Digits)
      return false;
    if (P < S.size() && S[P] == '.') {
      ++P;
      size_t Frac = P;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
      if (P == Frac)
        return false;
    }
    if (P < S.size() && (S[P] == 'e' || S[P] == 'E')) {
      ++P;
      if (P < S.size() && (S[P] == '+' || S[P] == '-'))
        ++P;
      size_t Exp = P;
      while (P < S.size() && std::isdigit(static_cast<unsigned char>(S[P])))
        ++P;
      if (P == Exp)
        return false;
    }
    return P > Start;
  }
  bool object() {
    ++P; // '{'
    skipWs();
    if (P < S.size() && S[P] == '}') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (P >= S.size() || S[P] != ':')
        return false;
      ++P;
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (P < S.size() && S[P] == ',') {
        ++P;
        continue;
      }
      if (P < S.size() && S[P] == '}') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool array() {
    ++P; // '['
    skipWs();
    if (P < S.size() && S[P] == ']') {
      ++P;
      return true;
    }
    while (true) {
      skipWs();
      if (!value())
        return false;
      skipWs();
      if (P < S.size() && S[P] == ',') {
        ++P;
        continue;
      }
      if (P < S.size() && S[P] == ']') {
        ++P;
        return true;
      }
      return false;
    }
  }
  bool value() {
    if (P >= S.size())
      return false;
    switch (S[P]) {
    case '{':
      return object();
    case '[':
      return array();
    case '"':
      return string();
    case 't':
      return lit("true");
    case 'f':
      return lit("false");
    case 'n':
      return lit("null");
    default:
      return number();
    }
  }

  const std::string &S;
  size_t P = 0;
};

bool jsonValid(const std::string &S) { return JsonValidator(S).valid(); }

size_t countOf(const std::string &Hay, const std::string &Needle) {
  size_t N = 0;
  for (size_t P = Hay.find(Needle); P != std::string::npos;
       P = Hay.find(Needle, P + Needle.size()))
    ++N;
  return N;
}

/// RAII guard: every trace-touching test leaves the process-global trace
/// state the way it found it (disabled, default capacity, empty rings), so
/// test order cannot matter.
struct TraceSandbox {
  explicit TraceSandbox(size_t Capacity = 0) {
    obs::setTraceEnabled(false);
    obs::traceReset(Capacity ? Capacity : 32768);
  }
  ~TraceSandbox() {
    obs::setTraceEnabled(false);
    obs::traceReset(32768);
  }
};

ValuePtr intArg(long V) { return makeValue(Value::intScalar(V)); }

uint64_t counterOf(const obs::MetricsSnapshot &S, const std::string &Name) {
  for (const auto &C : S.Counters)
    if (C.first == Name)
      return C.second;
  ADD_FAILURE() << "counter not in snapshot: " << Name;
  return 0;
}

bool hasGauge(const obs::MetricsSnapshot &S, const std::string &Name) {
  for (const auto &G : S.Gauges)
    if (G.first == Name)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// Metrics registry
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterGaugeBasics) {
  obs::MetricsRegistry R;
  obs::Counter &C = R.counter("c");
  C.inc();
  C.inc(4);
  EXPECT_EQ(C.value(), 5u);
  // Get-or-create returns the same instrument.
  EXPECT_EQ(&R.counter("c"), &C);

  obs::Gauge &G = R.gauge("g");
  G.set(7);
  G.add(-3);
  EXPECT_EQ(G.value(), 4);

  obs::Counter External;
  External.inc(42);
  R.registerCounter("ext", External);
  obs::MetricsSnapshot S = R.snapshot();
  ASSERT_EQ(S.Counters.size(), 2u);
  // Sorted by name: "c" before "ext".
  EXPECT_EQ(S.Counters[0].first, "c");
  EXPECT_EQ(S.Counters[0].second, 5u);
  EXPECT_EQ(S.Counters[1].first, "ext");
  EXPECT_EQ(S.Counters[1].second, 42u);
  // External updates are visible through the registration.
  External.inc();
  EXPECT_EQ(R.snapshot().Counters[1].second, 43u);
}

TEST(Metrics, ConcurrentIncrements) {
  obs::MetricsRegistry R;
  obs::Counter &C = R.counter("hits");
  obs::Gauge &G = R.gauge("depth");
  obs::Histogram &H = R.histogram("lat");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != kThreads; ++T)
    Ts.emplace_back([&C, &G, &H] {
      for (int I = 0; I != kPerThread; ++I) {
        C.inc();
        G.add(1);
        G.add(-1);
        H.observe(1e-6 * (I % 64));
      }
    });
  // Snapshots race the writers by design; they must stay well-formed.
  for (int I = 0; I != 50; ++I)
    (void)R.snapshot();
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(C.value(), uint64_t(kThreads) * kPerThread);
  EXPECT_EQ(G.value(), 0);
  EXPECT_EQ(H.count(), uint64_t(kThreads) * kPerThread);
  uint64_t BucketSum = 0;
  for (unsigned I = 0; I != obs::Histogram::kNumBuckets; ++I)
    BucketSum += H.bucketCount(I);
  EXPECT_EQ(BucketSum, H.count());
}

TEST(Metrics, HistogramBucketEdges) {
  using H = obs::Histogram;
  // Bucket 0: sub-microsecond. Bucket I: [2^(I-1), 2^I) us. Last bucket:
  // everything at or above 2^24 us.
  EXPECT_EQ(H::bucketIndexUs(0), 0u);
  EXPECT_EQ(H::bucketIndexUs(1), 1u);
  EXPECT_EQ(H::bucketIndexUs(2), 2u);
  EXPECT_EQ(H::bucketIndexUs(3), 2u);
  EXPECT_EQ(H::bucketIndexUs(4), 3u);
  EXPECT_EQ(H::bucketIndexUs((uint64_t(1) << 23) - 1), 23u);
  EXPECT_EQ(H::bucketIndexUs(uint64_t(1) << 23), 24u);
  EXPECT_EQ(H::bucketIndexUs(uint64_t(1) << 24), H::kNumBuckets - 1);
  EXPECT_EQ(H::bucketIndexUs(UINT64_MAX), H::kNumBuckets - 1);
  EXPECT_EQ(H::bucketFloorUs(0), 0u);
  EXPECT_EQ(H::bucketFloorUs(1), 1u);
  EXPECT_EQ(H::bucketFloorUs(2), 2u);
  EXPECT_EQ(H::bucketFloorUs(3), 4u);
  EXPECT_EQ(H::bucketFloorUs(H::kNumBuckets - 1), uint64_t(1) << 24);
  // Floors are strictly increasing and each floor maps into its own bucket.
  for (unsigned I = 0; I + 1 != H::kNumBuckets; ++I)
    EXPECT_LT(H::bucketFloorUs(I), H::bucketFloorUs(I + 1));
  for (unsigned I = 0; I != H::kNumBuckets; ++I)
    EXPECT_EQ(H::bucketIndexUs(H::bucketFloorUs(I)), I);

  obs::Histogram Hist;
  Hist.observe(0);      // bucket 0
  Hist.observe(0.4e-6); // 400 ns -> bucket 0
  Hist.observe(1e-6);   // exactly 1 us -> bucket 1
  Hist.observe(3e-6);   // bucket 2
  Hist.observe(-5.0);   // negative: clamped to 0 -> bucket 0
  Hist.observe(1e9);    // far beyond the ladder -> last bucket, saturating
  EXPECT_EQ(Hist.count(), 6u);
  EXPECT_EQ(Hist.bucketCount(0), 3u);
  EXPECT_EQ(Hist.bucketCount(1), 1u);
  EXPECT_EQ(Hist.bucketCount(2), 1u);
  EXPECT_EQ(Hist.bucketCount(obs::Histogram::kNumBuckets - 1), 1u);
  EXPECT_DOUBLE_EQ(Hist.minSeconds(), 0);
  EXPECT_GT(Hist.maxSeconds(), 1e8); // saturated, not wrapped
}

TEST(Metrics, JsonWellFormed) {
  obs::MetricsRegistry R;
  // A name needing escapes must not break the dump.
  R.counter("weird\"name\\with\tescapes").inc();
  R.gauge("g").set(-12);
  R.histogram("h").observe(2.5e-3);
  std::string J = R.json();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"counters\""), std::string::npos);
  EXPECT_NE(J.find("\"gauges\""), std::string::npos);
  EXPECT_NE(J.find("\"histograms\""), std::string::npos);
  EXPECT_NE(J.find("floor_us"), std::string::npos);
  // Empty registry: still one valid document.
  obs::MetricsRegistry Empty;
  EXPECT_TRUE(jsonValid(Empty.json())) << Empty.json();
}

//===----------------------------------------------------------------------===//
// Trace ring
//===----------------------------------------------------------------------===//

TEST(Trace, DisabledModeRecordsNothing) {
  TraceSandbox Sandbox;
  ASSERT_FALSE(obs::traceEnabled());
  {
    obs::TraceScope Span("should.not.appear", "test");
    obs::traceInstant("also.not", "test", "detail");
  }
  EXPECT_EQ(obs::traceEventsRecorded(), 0u);
  EXPECT_EQ(obs::traceEventsDropped(), 0u);
  std::string J = obs::traceJson();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_EQ(J.find("should.not.appear"), std::string::npos);
}

TEST(Trace, RingWraparoundKeepsNewestAndCounts) {
  constexpr size_t kCapacity = 64;
  constexpr size_t kEvents = 200;
  TraceSandbox Sandbox(kCapacity);
  obs::setTraceEnabled(true);
  for (size_t I = 0; I != kEvents; ++I)
    obs::traceInstant("tick", "test", std::to_string(I));
  obs::setTraceEnabled(false);

  EXPECT_EQ(obs::traceEventsRecorded(), kEvents);
  EXPECT_EQ(obs::traceEventsDropped(), kEvents - kCapacity);
  std::string J = obs::traceJson();
  EXPECT_TRUE(jsonValid(J)) << J;
  // Exactly the ring capacity survives, and it is the newest events: the
  // last one recorded is present, the first (overwritten) one is gone.
  EXPECT_EQ(countOf(J, "\"name\": \"tick\""), kCapacity);
  EXPECT_NE(J.find("\"detail\": \"" + std::to_string(kEvents - 1) + "\""),
            std::string::npos);
  EXPECT_EQ(J.find("\"detail\": \"0\""), std::string::npos);
  EXPECT_NE(J.find("\"dropped_events\": " +
                   std::to_string(kEvents - kCapacity)),
            std::string::npos);
}

TEST(Trace, ChromeJsonShapeAndEscaping) {
  TraceSandbox Sandbox;
  obs::setTraceEnabled(true);
  {
    obs::TraceScope Outer("outer", "test", "fn\"quoted\\path");
    obs::TraceScope Inner("inner", "test");
    obs::traceInstant("mark", "test");
  }
  // A second thread records into its own ring and shows up under its own
  // tid in the merged export.
  std::thread([] { obs::traceInstant("worker.mark", "test"); }).join();
  obs::setTraceEnabled(false);

  std::string J = obs::traceJson();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"traceEvents\""), std::string::npos);
  // Spans are complete events with a duration; instants carry a scope.
  EXPECT_NE(J.find("\"name\": \"outer\", \"cat\": \"test\", \"ph\": \"X\""),
            std::string::npos);
  EXPECT_NE(J.find("\"name\": \"inner\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(J.find("\"s\": \"t\""), std::string::npos);
  EXPECT_NE(J.find("\"dur\": "), std::string::npos);
  // The quote and backslash in the detail came out escaped.
  EXPECT_NE(J.find("fn\\\"quoted\\\\path"), std::string::npos);
  // Two distinct thread ids (tids are process-global and monotonically
  // assigned, so only distinctness is stable across test orderings).
  std::set<std::string> Tids;
  for (size_t P = J.find("\"tid\": "); P != std::string::npos;
       P = J.find("\"tid\": ", P + 1)) {
    size_t Start = P + std::strlen("\"tid\": ");
    size_t End = Start;
    while (End < J.size() && std::isdigit(static_cast<unsigned char>(J[End])))
      ++End;
    Tids.insert(J.substr(Start, End - Start));
  }
  EXPECT_EQ(Tids.size(), 2u);
}

TEST(Trace, ScopeArmedBeforeDisableStillRecords) {
  TraceSandbox Sandbox;
  obs::setTraceEnabled(true);
  {
    obs::TraceScope Span("late.span", "test");
    obs::setTraceEnabled(false); // span already armed: still records
  }
  EXPECT_EQ(obs::traceEventsRecorded(), 1u);
  EXPECT_NE(obs::traceJson().find("late.span"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Per-function profiles
//===----------------------------------------------------------------------===//

TEST(Profiles, RecordAndSnapshot) {
  obs::FunctionProfiles P;
  P.recordInvocation("f", "(double 1x1)");
  P.recordInvocation("f", "(double 1x1)");
  P.recordInvocation("f", "(int 1x1)");
  P.recordVmRun("f", 0.25);
  P.recordInterpRun("f", 0.5);
  P.recordCompile("f", 1.5);
  P.recordWarmAdoption("f");
  P.recordDeopt("f");
  P.recordInvocation("g", "(untyped)");

  obs::FunctionProfile F = P.profile("f");
  EXPECT_EQ(F.Invocations, 3u);
  EXPECT_EQ(F.VmRuns, 1u);
  EXPECT_EQ(F.InterpRuns, 1u);
  EXPECT_DOUBLE_EQ(F.VmSeconds, 0.25);
  EXPECT_DOUBLE_EQ(F.InterpSeconds, 0.5);
  EXPECT_EQ(F.Compiles, 1u);
  EXPECT_DOUBLE_EQ(F.CompileSeconds, 1.5);
  EXPECT_EQ(F.WarmStartAdoptions, 1u);
  EXPECT_EQ(F.Deopts, 1u);
  // Signatures sorted most-called first, counts summing to Invocations.
  ASSERT_EQ(F.ArgSignatures.size(), 2u);
  EXPECT_EQ(F.ArgSignatures[0].first, "(double 1x1)");
  EXPECT_EQ(F.ArgSignatures[0].second, 2u);
  EXPECT_EQ(F.ArgSignatures[1].second, 1u);

  // Unknown function: zeroed profile, not a crash.
  EXPECT_EQ(P.profile("nope").Invocations, 0u);

  // snapshot(): most-invoked first; json(): one valid document.
  std::vector<obs::FunctionProfile> All = P.snapshot();
  ASSERT_EQ(All.size(), 2u);
  EXPECT_EQ(All[0].Name, "f");
  EXPECT_TRUE(jsonValid(P.json())) << P.json();
  EXPECT_EQ(P.size(), 2u);
  P.clear();
  EXPECT_EQ(P.size(), 0u);
}

// Regression: the per-function signature map is capped. A function called
// with an unbounded variety of signatures (e.g. cell-driven dispatch in a
// long session) must not grow the profile without bound; the overflow is
// counted, and invocation totals stay exact.
TEST(Profiles, SignatureCapAndOverflowCounter) {
  obs::FunctionProfiles P;
  const size_t K = obs::FunctionProfiles::kMaxSignatures;
  const size_t Total = K + 24;
  for (size_t I = 0; I != Total; ++I)
    P.recordInvocation("f", "(double 1x" + std::to_string(I + 1) + ")");

  obs::FunctionProfile F = P.profile("f");
  EXPECT_EQ(F.Invocations, Total);
  // Exactly K distinct signatures retained; the rest fold into the
  // overflow counter, so retained + overflow still equals Invocations.
  EXPECT_EQ(F.ArgSignatures.size(), K);
  EXPECT_EQ(F.OtherSignatures, Total - K);
  uint64_t Retained = 0;
  for (const auto &[Sig, Count] : F.ArgSignatures)
    Retained += Count;
  EXPECT_EQ(Retained + F.OtherSignatures, F.Invocations);

  // Re-observing a retained signature still counts against it, not the
  // overflow bucket.
  P.recordInvocation("f", "(double 1x1)");
  F = P.profile("f");
  EXPECT_EQ(F.ArgSignatures[0].first, "(double 1x1)");
  EXPECT_EQ(F.ArgSignatures[0].second, 2u);
  EXPECT_EQ(F.OtherSignatures, Total - K);

  // The overflow bucket surfaces in the JSON dump.
  EXPECT_TRUE(jsonValid(P.json())) << P.json();
  EXPECT_NE(P.json().find("\"other_signatures\""), std::string::npos);
}

// The recording hot path is sharded by function name: concurrent
// recorders on different (and same) functions must neither lose counts
// nor race (TSan covers the latter when enabled).
TEST(Profiles, ConcurrentShardedRecording) {
  obs::FunctionProfiles P;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> Ts;
  for (int T = 0; T != kThreads; ++T)
    Ts.emplace_back([&P, T] {
      std::string Own = "fn" + std::to_string(T);
      for (int I = 0; I != kPerThread; ++I) {
        P.recordInvocation(Own, "(double 1x1)");
        P.recordInvocation("shared", "(int 1x1)");
      }
    });
  for (std::thread &T : Ts)
    T.join();

  EXPECT_EQ(P.profile("shared").Invocations,
            static_cast<uint64_t>(kThreads) * kPerThread);
  for (int T = 0; T != kThreads; ++T)
    EXPECT_EQ(P.profile("fn" + std::to_string(T)).Invocations,
              static_cast<uint64_t>(kPerThread));
  EXPECT_EQ(P.invocations("shared"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// Warm-start merging: persisted totals land under the same entry as live
// recording, and persisted signature counts seed the ranking.
TEST(Profiles, MergePersistedCounts) {
  obs::FunctionProfiles P;
  P.mergePersisted("f", 10, 3);
  P.mergeSignatureCount("f", "(double 1x1)", 7);
  P.mergeSignatureCount("f", "(int 1x1)", 2);
  P.recordInvocation("f", "(int 1x1)");

  obs::FunctionProfile F = P.profile("f");
  EXPECT_EQ(F.Invocations, 11u);
  EXPECT_EQ(F.OtherSignatures, 3u);
  ASSERT_EQ(F.ArgSignatures.size(), 2u);
  EXPECT_EQ(F.ArgSignatures[0].first, "(double 1x1)");
  EXPECT_EQ(F.ArgSignatures[0].second, 7u);
  EXPECT_EQ(F.ArgSignatures[1].second, 3u);
  EXPECT_EQ(P.invocations("f"), 11u);
  EXPECT_EQ(P.invocations("never-run"), 0u);
}

//===----------------------------------------------------------------------===//
// Engine integration
//===----------------------------------------------------------------------===//

const char *kAddOne = "function y = addone(x)\n"
                      "y = x + 1;\n";

TEST(EngineObs, ProfilesAfterScriptedSession) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 0;
  Engine E(O);
  ASSERT_TRUE(E.addSource("addone", kAddOne));

  for (int I = 0; I != 3; ++I) {
    auto R = E.callFunction("addone", {intArg(41)}, 1, SourceLoc());
    ASSERT_EQ(R.size(), 1u);
    EXPECT_DOUBLE_EQ(R[0]->scalarValue(), 42);
  }
  // A scripted call goes through the same invocation path, one level down.
  E.runScript("r = addone(7);");
  ASSERT_NE(E.workspaceVar("r"), nullptr);
  EXPECT_DOUBLE_EQ(E.workspaceVar("r")->scalarValue(), 8);

  obs::FunctionProfile F = E.profile("addone");
  EXPECT_EQ(F.Invocations, 4u);
  // Only the three top-level calls are VM-timed; the script's callee runs
  // at depth 2 and charges its time to the script.
  EXPECT_EQ(F.VmRuns, 3u);
  EXPECT_GE(F.Compiles, 1u);
  EXPECT_GE(F.CompileSeconds, 0.0);
  EXPECT_EQ(F.Deopts, 0u);
  uint64_t SigSum = 0;
  for (const auto &Sig : F.ArgSignatures)
    SigSum += Sig.second;
  EXPECT_EQ(SigSum, F.Invocations);
  ASSERT_FALSE(F.ArgSignatures.empty());

  // profiles() includes the function.
  bool Found = false;
  for (const obs::FunctionProfile &P : E.profiles())
    Found |= P.Name == "addone";
  EXPECT_TRUE(Found);
}

TEST(EngineObs, InterpretOnlyProfileAndFallbackCounter) {
  EngineOptions O;
  O.Policy = CompilePolicy::InterpretOnly;
  O.BackgroundCompileThreads = 0;
  Engine E(O);
  ASSERT_TRUE(E.addSource("addone", kAddOne));
  auto R = E.callFunction("addone", {intArg(1)}, 1, SourceLoc());
  ASSERT_EQ(R.size(), 1u);

  obs::FunctionProfile F = E.profile("addone");
  EXPECT_EQ(F.Invocations, 1u);
  EXPECT_EQ(F.InterpRuns, 1u);
  EXPECT_EQ(F.VmRuns, 0u);
  EXPECT_EQ(F.Compiles, 0u);
  ASSERT_EQ(F.ArgSignatures.size(), 1u);
  EXPECT_EQ(F.ArgSignatures[0].first, "(untyped)");

  // The registry reads the same counter the legacy accessor does (the
  // InterpretOnly policy itself is not a "fallback"; the counter tracks
  // invocations that wanted compiled code and could not get it).
  obs::MetricsSnapshot S = E.sampleMetrics();
  EXPECT_EQ(counterOf(S, "engine.interp_fallbacks"),
            E.interpreterFallbacks());
}

TEST(EngineObs, SnapshotMatchesAccessorsAndCoversSubsystems) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 1;
  Engine E(O);
  ASSERT_TRUE(E.addSource("addone", kAddOne));
  E.speculateAsync("addone");
  E.drainCompiles();
  for (int I = 0; I != 3; ++I)
    E.callFunction("addone", {intArg(I)}, 1, SourceLoc());

  obs::MetricsSnapshot S = E.sampleMetrics();
  // Migrated counters read the same through the registry and the legacy
  // accessors.
  EXPECT_EQ(counterOf(S, "repo.lookup.hits"), E.repository().lookupHits());
  EXPECT_EQ(counterOf(S, "engine.jit_compiles"), E.jitCompiles());
  EXPECT_EQ(counterOf(S, "spec.queued"), E.speculationStats().Queued);
  EXPECT_GE(counterOf(S, "spec.queued"), 1u);
  EXPECT_GE(counterOf(S, "repo.lookup.hits"), 1u);
  // The speculation pool's instruments saw the background compile. The
  // worker bumps "finished" just after the task body signals
  // drainCompiles, so give that last store a moment to land.
  EXPECT_GE(counterOf(S, "pool.spec.enqueued"), 1u);
  for (int Spin = 0; Spin != 2000; ++Spin) {
    S = E.sampleMetrics();
    if (counterOf(S, "pool.spec.finished") ==
        counterOf(S, "pool.spec.enqueued"))
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counterOf(S, "pool.spec.enqueued"),
            counterOf(S, "pool.spec.finished"));
  // Sampled gauges cover the compute pool, store and quarantine.
  EXPECT_TRUE(hasGauge(S, "pool.compute.threads"));
  EXPECT_TRUE(hasGauge(S, "engine.quarantined"));
  EXPECT_TRUE(hasGauge(S, "repo.objects"));
  // Compile-phase histograms populated by the compile.
  bool SawCompileHist = false;
  for (const obs::HistogramSnapshot &H : S.Histograms)
    if (H.Name == "compile.seconds") {
      SawCompileHist = true;
      EXPECT_GE(H.Count, 1u);
    }
  EXPECT_TRUE(SawCompileHist);

  // Both renderings include the per-function profiles and stay parseable.
  std::string Report = E.statsReport();
  EXPECT_NE(Report.find("addone"), std::string::npos);
  EXPECT_NE(Report.find("compile.seconds"), std::string::npos);
  std::string J = E.metricsJson();
  EXPECT_TRUE(jsonValid(J)) << J;
  EXPECT_NE(J.find("\"profiles\""), std::string::npos);
  EXPECT_NE(J.find("spec.queued"), std::string::npos);
}

TEST(EngineObs, DumpsTraceAndMetricsAtDestruction) {
  namespace fs = std::filesystem;
  TraceSandbox Sandbox;
  const fs::path Dir = fs::temp_directory_path() / "majic_obs_test";
  fs::create_directories(Dir);
  const fs::path TracePath = Dir / "trace.json";
  const fs::path MetricsPath = Dir / "metrics.json";
  fs::remove(TracePath);
  fs::remove(MetricsPath);

  {
    EngineOptions O;
    O.Policy = CompilePolicy::Jit;
    O.BackgroundCompileThreads = 0;
    O.TracePath = TracePath.string();
    O.MetricsPath = MetricsPath.string();
    Engine E(O);
    EXPECT_TRUE(obs::traceEnabled());
    ASSERT_TRUE(E.addSource("addone", kAddOne));
    E.callFunction("addone", {intArg(1)}, 1, SourceLoc());
    E.runScript("s = addone(2);");
  }
  obs::setTraceEnabled(false);

  ASSERT_TRUE(fs::exists(TracePath));
  ASSERT_TRUE(fs::exists(MetricsPath));
  std::stringstream TraceBuf, MetricsBuf;
  TraceBuf << std::ifstream(TracePath).rdbuf();
  MetricsBuf << std::ifstream(MetricsPath).rdbuf();
  std::string Trace = TraceBuf.str();
  std::string Metrics = MetricsBuf.str();

  EXPECT_TRUE(jsonValid(Trace)) << Trace.substr(0, 400);
  EXPECT_TRUE(jsonValid(Metrics)) << Metrics.substr(0, 400);
  // The session timeline covers every compile phase plus execution.
  for (const char *Name :
       {"parse", "infer", "codegen", "regalloc", "compile", "vm.run",
        "script", "addSource"})
    EXPECT_NE(Trace.find("\"name\": \"" + std::string(Name) + "\""),
              std::string::npos)
        << "missing span: " << Name;
  // The metrics dump carries the registry and the profiles.
  EXPECT_NE(Metrics.find("\"metrics\""), std::string::npos);
  EXPECT_NE(Metrics.find("\"profiles\""), std::string::npos);
  EXPECT_NE(Metrics.find("compile.seconds"), std::string::npos);
  EXPECT_NE(Metrics.find("addone"), std::string::npos);

  fs::remove_all(Dir);
}

} // namespace
