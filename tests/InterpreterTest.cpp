//===- tests/InterpreterTest.cpp - Tree-walking interpreter -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace majic;
using namespace majic::test;

TEST(Interp, ScalarArithmetic) {
  EXPECT_DOUBLE_EQ(scriptResult("x = 2 + 3 * 4;", "x"), 14);
  EXPECT_DOUBLE_EQ(scriptResult("x = (2 + 3) * 4;", "x"), 20);
  EXPECT_DOUBLE_EQ(scriptResult("x = 2^3^2;", "x"), 64); // left-assoc
  EXPECT_DOUBLE_EQ(scriptResult("x = -2^2;", "x"), -4);
  EXPECT_DOUBLE_EQ(scriptResult("x = 10 / 4;", "x"), 2.5);
  EXPECT_DOUBLE_EQ(scriptResult("x = 2 \\ 10;", "x"), 5);
}

TEST(Interp, IfElse) {
  EXPECT_DOUBLE_EQ(
      scriptResult("a = 5;\nif a > 3\nx = 1;\nelse\nx = 2;\nend\n", "x"), 1);
  EXPECT_DOUBLE_EQ(
      scriptResult("a = 1;\nif a > 3\nx = 1;\nelseif a > 0\nx = 2;\nelse\nx "
                   "= 3;\nend\n",
                   "x"),
      2);
}

TEST(Interp, WhileLoop) {
  EXPECT_DOUBLE_EQ(
      scriptResult("x = 0;\nk = 0;\nwhile k < 10\nk = k + 1;\nx = x + k;\nend\n",
                   "x"),
      55);
}

TEST(Interp, ForLoopOverRange) {
  EXPECT_DOUBLE_EQ(
      scriptResult("s = 0;\nfor k = 1:100\ns = s + k;\nend\n", "s"), 5050);
  EXPECT_DOUBLE_EQ(
      scriptResult("s = 0;\nfor k = 10:-2:1\ns = s + k;\nend\n", "s"),
      10 + 8 + 6 + 4 + 2);
  // Empty range: body never runs.
  EXPECT_DOUBLE_EQ(scriptResult("s = 5;\nfor k = 3:2\ns = 0;\nend\n", "s"), 5);
}

TEST(Interp, BreakAndContinue) {
  EXPECT_DOUBLE_EQ(scriptResult("s = 0;\nfor k = 1:10\nif k > 3\nbreak;\nend\n"
                                "s = s + k;\nend\n",
                                "s"),
                   6);
  EXPECT_DOUBLE_EQ(scriptResult("s = 0;\nfor k = 1:4\nif k == 2\ncontinue;\n"
                                "end\ns = s + k;\nend\n",
                                "s"),
                   1 + 3 + 4);
}

TEST(Interp, MatrixLiteralAndIndexing) {
  EXPECT_DOUBLE_EQ(scriptResult("A = [1 2; 3 4];\nx = A(2, 1);", "x"), 3);
  EXPECT_DOUBLE_EQ(scriptResult("A = [1 2; 3 4];\nx = A(3);", "x"), 2);
  EXPECT_DOUBLE_EQ(scriptResult("A = [1 2 3];\nx = A(end);", "x"), 3);
  EXPECT_DOUBLE_EQ(scriptResult("A = [1 2 3 4];\nx = sum(A(2:end));", "x"), 9);
  EXPECT_DOUBLE_EQ(scriptResult("A = [1 2; 3 4];\nx = sum(A(:, 2));", "x"), 6);
}

TEST(Interp, ArrayGrowthOnAssign) {
  EXPECT_DOUBLE_EQ(scriptResult("x = 0;\nx(5) = 7;\ny = numel(x);", "y"), 5);
  EXPECT_DOUBLE_EQ(
      scriptResult("A = [1 2; 3 4];\nA(3, 3) = 9;\ny = A(3, 3) + A(1, 1);",
                   "y"),
      10);
  // Auto-vivification of an unseen variable through indexed assignment.
  EXPECT_DOUBLE_EQ(scriptResult("z(3) = 5;\ny = numel(z);", "y"), 3);
}

TEST(Interp, CallByValueSemantics) {
  // The callee mutates its copy; the caller's variable is untouched.
  std::string Src = "function r = main()\n"
                    "a = [1 2 3];\n"
                    "b = touch(a);\n"
                    "r = a(1) + b;\n"
                    "function r = touch(v)\n"
                    "v(1) = 100;\n"
                    "r = v(1);\n";
  TestProgram P(Src);
  ASSERT_TRUE(P.ok());
  auto Rs = P.run({}, 1);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_DOUBLE_EQ(Rs[0]->scalarValue(), 101);
}

TEST(Interp, RecursionFibonacci) {
  std::string Src = "function f = fib(n)\n"
                    "if n <= 1\n"
                    "f = n;\n"
                    "else\n"
                    "f = fib(n - 1) + fib(n - 2);\n"
                    "end\n";
  TestProgram P(Src);
  ASSERT_TRUE(P.ok());
  auto Rs = P.run({makeScalar(10)}, 1);
  EXPECT_DOUBLE_EQ(Rs[0]->scalarValue(), 55);
}

TEST(Interp, MultipleOutputs) {
  std::string Src = "function [a, b] = swap(x, y)\na = y;\nb = x;\n";
  TestProgram P(Src);
  ASSERT_TRUE(P.ok());
  auto Rs = P.run({makeScalar(1), makeScalar(2)}, 2);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_DOUBLE_EQ(Rs[0]->scalarValue(), 2);
  EXPECT_DOUBLE_EQ(Rs[1]->scalarValue(), 1);
}

TEST(Interp, MultiAssignFromBuiltin) {
  EXPECT_DOUBLE_EQ(
      scriptResult("A = zeros(3, 4);\n[m, n] = size(A);\nx = m * 10 + n;",
                   "x"),
      34);
}

TEST(Interp, EarlyReturn) {
  std::string Src = "function r = f(x)\nr = 1;\nif x > 0\nreturn;\nend\nr = 2;\n";
  TestProgram P(Src);
  ASSERT_TRUE(P.ok());
  EXPECT_DOUBLE_EQ(P.run({makeScalar(5)}, 1)[0]->scalarValue(), 1);
}

TEST(Interp, AmbiguousIResolvesAtRuntime) {
  // Figure 2 left: first iteration reads the builtin i = sqrt(-1), later
  // iterations read the variable.
  std::string Src = "k = 0;\n"
                    "while k < 2\n"
                    "z = i;\n"
                    "i = z + 1;\n"
                    "k = k + 1;\n"
                    "end\n";
  TestProgram P(Src);
  ASSERT_TRUE(P.ok());
  P.run();
  ValuePtr Z = P.scriptVar("z");
  ASSERT_TRUE(Z != nullptr);
  // Second iteration: z = (i_builtin + 1) = 1 + 1i.
  EXPECT_TRUE(Z->isComplex());
  EXPECT_DOUBLE_EQ(Z->re(0), 1);
  EXPECT_DOUBLE_EQ(Z->im(0), 1);
}

TEST(Interp, Figure2RightGuardedUse) {
  std::string Src = "x = 0;\n"
                    "for p = 1:3\n"
                    "if p >= 2\nx = y;\nend\n"
                    "y = p;\n"
                    "end\n";
  EXPECT_DOUBLE_EQ(scriptResult(Src, "x"), 2); // y from the previous iter
}

TEST(Interp, UndefinedVariableThrows) {
  TestProgram P("x = doesnotexist + 1;");
  ASSERT_TRUE(P.ok());
  EXPECT_THROW(P.run(), MatlabError);
}

TEST(Interp, ShortCircuitAvoidsEvaluation) {
  // The RHS would throw (undefined variable) if evaluated.
  EXPECT_DOUBLE_EQ(
      scriptResult("a = 0;\nif a > 0 && nosuchvar(1) > 0\nx = 1;\nelse\nx = "
                   "2;\nend\n",
                   "x"),
      2);
}

TEST(Interp, StringsAndDisp) {
  EXPECT_EQ(scriptOutput("disp('hello world');"), "hello world\n");
  EXPECT_EQ(scriptOutput("fprintf('%d-%d\\n', 3, 4);"), "3-4\n");
}

TEST(Interp, DisplayUnsuppressed) {
  std::string Out = scriptOutput("x = 41 + 1\n");
  EXPECT_NE(Out.find("x ="), std::string::npos);
  EXPECT_NE(Out.find("42"), std::string::npos);
}

TEST(Interp, ComplexScalarLoop) {
  // A mini mandelbrot step: z = z^2 + c iterated.
  std::string Src = "c = 0.1 + 0.2i;\nz = 0;\nfor k = 1:5\nz = z * z + c;\nend\n"
                    "m = abs(z);";
  double M = scriptResult(Src, "m");
  EXPECT_GT(M, 0.0);
  EXPECT_LT(M, 1.0);
}

TEST(Interp, ClearRemovesVariables) {
  TestProgram P("x = 1;\nclear\ny = 2;");
  ASSERT_TRUE(P.ok());
  P.run();
  EXPECT_EQ(P.scriptVar("x"), nullptr);
  ASSERT_NE(P.scriptVar("y"), nullptr);
}

TEST(Interp, TransposeInExpression) {
  EXPECT_DOUBLE_EQ(scriptResult("v = [1 2 3];\nx = v * v';", "x"), 14);
}

TEST(Interp, NestedFunctionCalls) {
  std::string Src = "function r = main(n)\n"
                    "r = double_(inc(n));\n"
                    "function r = inc(x)\nr = x + 1;\n"
                    "function r = double_(x)\nr = x * 2;\n";
  TestProgram P(Src);
  ASSERT_TRUE(P.ok());
  EXPECT_DOUBLE_EQ(P.run({makeScalar(4)}, 1)[0]->scalarValue(), 10);
}

TEST(Interp, LogicalIndexingReadWrite) {
  EXPECT_DOUBLE_EQ(
      scriptResult("v = [1 -2 3 -4];\nv(v < 0) = 0;\nx = sum(v);", "x"), 4);
}

TEST(Interp, RangeWithFractionalStep) {
  EXPECT_DOUBLE_EQ(scriptResult("x = sum(0:0.5:2);", "x"), 5.0);
}

TEST(Interp, ErrorBuiltinAborts) {
  TestProgram P("error('custom failure');");
  ASSERT_TRUE(P.ok());
  try {
    P.run();
    FAIL() << "expected MatlabError";
  } catch (const MatlabError &E) {
    EXPECT_EQ(E.message(), "custom failure");
  }
}
