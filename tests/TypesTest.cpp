//===- tests/TypesTest.cpp - Type lattice laws ---------------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Property-style tests of the Section 2.2 lattices: partial-order laws,
// join laws, and the signature safety/distance relations.
//
//===----------------------------------------------------------------------===//

#include "types/Signature.h"
#include "types/Type.h"

#include <gtest/gtest.h>

using namespace majic;

namespace {

const IntrinsicType AllIntrinsics[] = {
    IntrinsicType::Bottom, IntrinsicType::Bool,   IntrinsicType::Int,
    IntrinsicType::Real,   IntrinsicType::Complex, IntrinsicType::String,
    IntrinsicType::Top};

/// A small but structurally diverse universe of types for property sweeps.
std::vector<Type> typeUniverse() {
  std::vector<Type> U;
  U.push_back(Type::bottom());
  U.push_back(Type::top());
  U.push_back(Type::scalar(IntrinsicType::Int, Range::constant(3)));
  U.push_back(Type::scalar(IntrinsicType::Int, Range::interval(1, 10)));
  U.push_back(Type::scalar(IntrinsicType::Real, Range::interval(-2, 5)));
  U.push_back(Type::scalar(IntrinsicType::Complex));
  U.push_back(Type::scalar(IntrinsicType::Bool, Range::interval(0, 1)));
  U.push_back(Type::matrix(IntrinsicType::Real));
  U.push_back(Type::matrix(IntrinsicType::Complex));
  U.push_back(Type::exactMatrix(IntrinsicType::Real, 3, 3));
  U.push_back(Type::exactMatrix(IntrinsicType::Int, 1, 5,
                                Range::interval(0, 100)));
  U.push_back(Type(IntrinsicType::Real, ShapeBound{2, 2}, ShapeBound{10, 10},
                   Range::interval(0, 1)));
  U.push_back(Type(IntrinsicType::String, ShapeBound{1, 1},
                   ShapeBound{1, ShapeBound::kUnknownDim}, Range::top()));
  return U;
}

//===----------------------------------------------------------------------===//
// Intrinsic lattice Li
//===----------------------------------------------------------------------===//

TEST(IntrinsicLattice, ChainOrder) {
  // bot <= bool <= int <= real <= cplx <= top.
  EXPECT_TRUE(intrinsicLE(IntrinsicType::Bottom, IntrinsicType::Bool));
  EXPECT_TRUE(intrinsicLE(IntrinsicType::Bool, IntrinsicType::Int));
  EXPECT_TRUE(intrinsicLE(IntrinsicType::Int, IntrinsicType::Real));
  EXPECT_TRUE(intrinsicLE(IntrinsicType::Real, IntrinsicType::Complex));
  EXPECT_TRUE(intrinsicLE(IntrinsicType::Complex, IntrinsicType::Top));
  // bot <= strg <= top, incomparable with the numeric chain.
  EXPECT_TRUE(intrinsicLE(IntrinsicType::Bottom, IntrinsicType::String));
  EXPECT_TRUE(intrinsicLE(IntrinsicType::String, IntrinsicType::Top));
  EXPECT_FALSE(intrinsicLE(IntrinsicType::String, IntrinsicType::Complex));
  EXPECT_FALSE(intrinsicLE(IntrinsicType::Real, IntrinsicType::String));
}

TEST(IntrinsicLattice, PartialOrderLaws) {
  for (IntrinsicType A : AllIntrinsics) {
    EXPECT_TRUE(intrinsicLE(A, A)); // reflexive
    for (IntrinsicType B : AllIntrinsics) {
      if (intrinsicLE(A, B) && intrinsicLE(B, A))
        EXPECT_EQ(A, B); // antisymmetric
      for (IntrinsicType C : AllIntrinsics)
        if (intrinsicLE(A, B) && intrinsicLE(B, C))
          EXPECT_TRUE(intrinsicLE(A, C)); // transitive
    }
  }
}

TEST(IntrinsicLattice, JoinIsLeastUpperBound) {
  for (IntrinsicType A : AllIntrinsics) {
    for (IntrinsicType B : AllIntrinsics) {
      IntrinsicType J = intrinsicJoin(A, B);
      EXPECT_TRUE(intrinsicLE(A, J));
      EXPECT_TRUE(intrinsicLE(B, J));
      EXPECT_EQ(J, intrinsicJoin(B, A)); // commutative
      // Least: any other upper bound is above J.
      for (IntrinsicType U : AllIntrinsics)
        if (intrinsicLE(A, U) && intrinsicLE(B, U))
          EXPECT_TRUE(intrinsicLE(J, U));
    }
  }
}

TEST(IntrinsicLattice, StringJoinNumericIsTop) {
  EXPECT_EQ(intrinsicJoin(IntrinsicType::String, IntrinsicType::Real),
            IntrinsicType::Top);
}

//===----------------------------------------------------------------------===//
// Range lattice Ll
//===----------------------------------------------------------------------===//

TEST(RangeLattice, BottomAndTop) {
  EXPECT_TRUE(Range::bottom().isBottom());
  EXPECT_TRUE(Range::top().isTop());
  EXPECT_TRUE(Range::bottom().le(Range::constant(5)));
  EXPECT_TRUE(Range::constant(5).le(Range::top()));
  EXPECT_FALSE(Range::top().le(Range::constant(5)));
}

TEST(RangeLattice, OrderIsInclusion) {
  EXPECT_TRUE(Range::interval(2, 3).le(Range::interval(1, 4)));
  EXPECT_FALSE(Range::interval(0, 3).le(Range::interval(1, 4)));
}

TEST(RangeLattice, JoinIsHull) {
  Range J = Range::interval(1, 2).join(Range::interval(5, 6));
  EXPECT_DOUBLE_EQ(J.Lo, 1);
  EXPECT_DOUBLE_EQ(J.Hi, 6);
  EXPECT_TRUE(Range::bottom().join(Range::constant(3)).isConstant());
}

TEST(RangeLattice, IntervalArithmetic) {
  Range A = Range::interval(1, 3), B = Range::interval(-2, 4);
  Range Sum = A.add(B);
  EXPECT_DOUBLE_EQ(Sum.Lo, -1);
  EXPECT_DOUBLE_EQ(Sum.Hi, 7);
  Range Diff = A.sub(B);
  EXPECT_DOUBLE_EQ(Diff.Lo, -3);
  EXPECT_DOUBLE_EQ(Diff.Hi, 5);
  Range Prod = A.mul(B);
  EXPECT_DOUBLE_EQ(Prod.Lo, -6);
  EXPECT_DOUBLE_EQ(Prod.Hi, 12);
  // Division through zero is unbounded.
  EXPECT_TRUE(A.div(Range::interval(-1, 1)).isTop());
  Range Quot = A.div(Range::interval(2, 2));
  EXPECT_DOUBLE_EQ(Quot.Lo, 0.5);
  EXPECT_DOUBLE_EQ(Quot.Hi, 1.5);
}

TEST(RangeLattice, IntervalArithmeticIsSound) {
  // Sampled soundness: for xs in A, ys in B, x op y lies in A.op(B).
  Range A = Range::interval(-3, 2), B = Range::interval(0.5, 4);
  for (double X : {-3.0, -1.0, 0.0, 2.0}) {
    for (double Y : {0.5, 1.0, 4.0}) {
      EXPECT_TRUE(Range::constant(X + Y).le(A.add(B)));
      EXPECT_TRUE(Range::constant(X - Y).le(A.sub(B)));
      EXPECT_TRUE(Range::constant(X * Y).le(A.mul(B)));
      EXPECT_TRUE(Range::constant(X / Y).le(A.div(B)));
    }
  }
}

TEST(RangeLattice, PowConstEvenIsNonNegative) {
  Range R = Range::interval(-3, 2).powConst(2);
  EXPECT_DOUBLE_EQ(R.Lo, 0);
  EXPECT_DOUBLE_EQ(R.Hi, 9);
  Range Odd = Range::interval(-2, 3).powConst(3);
  EXPECT_DOUBLE_EQ(Odd.Lo, -8);
  EXPECT_DOUBLE_EQ(Odd.Hi, 27);
}

TEST(RangeLattice, AbsRange) {
  Range R = Range::interval(-3, 2).absRange();
  EXPECT_DOUBLE_EQ(R.Lo, 0);
  EXPECT_DOUBLE_EQ(R.Hi, 3);
  Range Pos = Range::interval(1, 2).absRange();
  EXPECT_DOUBLE_EQ(Pos.Lo, 1);
}

//===----------------------------------------------------------------------===//
// Shape lattice Ls
//===----------------------------------------------------------------------===//

TEST(ShapeLattice, ComponentwiseOrder) {
  EXPECT_TRUE(ShapeBound::exact(2, 3).le(ShapeBound::exact(2, 5)));
  EXPECT_FALSE(ShapeBound::exact(3, 3).le(ShapeBound::exact(2, 5)));
  EXPECT_TRUE(ShapeBound::bottom().le(ShapeBound::top()));
  EXPECT_TRUE(ShapeBound::exact(7, 9).le(ShapeBound::top()));
}

TEST(ShapeLattice, Joins) {
  ShapeBound A = ShapeBound::exact(2, 5), B = ShapeBound::exact(4, 3);
  ShapeBound Up = A.joinUpper(B);
  EXPECT_EQ(Up.Rows, 4u);
  EXPECT_EQ(Up.Cols, 5u);
  ShapeBound Down = A.joinLower(B);
  EXPECT_EQ(Down.Rows, 2u);
  EXPECT_EQ(Down.Cols, 3u);
}

//===----------------------------------------------------------------------===//
// The product lattice T
//===----------------------------------------------------------------------===//

TEST(TypeLattice, PartialOrderLaws) {
  auto U = typeUniverse();
  for (const Type &A : U) {
    EXPECT_TRUE(A.le(A));
    for (const Type &B : U) {
      for (const Type &C : U)
        if (A.le(B) && B.le(C))
          EXPECT_TRUE(A.le(C)) << A.str() << " / " << B.str() << " / "
                               << C.str();
    }
  }
}

TEST(TypeLattice, JoinLaws) {
  auto U = typeUniverse();
  for (const Type &A : U) {
    EXPECT_EQ(A.join(A), A); // idempotent
    for (const Type &B : U) {
      Type J = A.join(B);
      EXPECT_EQ(J, B.join(A)) << A.str() << " v " << B.str(); // commutative
      EXPECT_TRUE(A.le(J));
      EXPECT_TRUE(B.le(J));
      for (const Type &C : U) {
        // Associative.
        EXPECT_EQ(A.join(B).join(C), A.join(B.join(C)));
      }
    }
  }
}

TEST(TypeLattice, BottomIsIdentityTopAbsorbs) {
  auto U = typeUniverse();
  for (const Type &A : U) {
    EXPECT_EQ(Type::bottom().join(A), A);
    EXPECT_TRUE(A.le(Type::top()));
  }
}

TEST(TypeLattice, ConstantsAndExactShapes) {
  Type C = Type::constant(5);
  ASSERT_TRUE(C.constantValue().has_value());
  EXPECT_DOUBLE_EQ(*C.constantValue(), 5);
  EXPECT_EQ(C.intrinsic(), IntrinsicType::Int);
  EXPECT_FALSE(Type::constant(2.5).intrinsic() == IntrinsicType::Int);

  Type M = Type::exactMatrix(IntrinsicType::Real, 3, 4);
  ASSERT_TRUE(M.exactShape().has_value());
  EXPECT_EQ(M.exactShape()->Rows, 3u);
  EXPECT_FALSE(Type::matrix(IntrinsicType::Real).exactShape().has_value());
}

TEST(TypeLattice, OfValueMatchesRuntime) {
  Type S = Type::ofValue(Value::scalar(2.5));
  EXPECT_EQ(S.intrinsic(), IntrinsicType::Real);
  EXPECT_TRUE(S.isScalar());
  EXPECT_TRUE(S.range().isConstant());

  Type I = Type::ofValue(Value::intScalar(7));
  EXPECT_EQ(I.intrinsic(), IntrinsicType::Int);

  Type M = Type::ofValue(Value::zeros(3, 4));
  EXPECT_EQ(M.exactShape()->Rows, 3u);
  EXPECT_TRUE(M.range().isTop()); // matrices carry no element range

  Type C = Type::ofValue(Value::complexScalar(1, 2));
  EXPECT_EQ(C.intrinsic(), IntrinsicType::Complex);

  Type Str = Type::ofValue(Value::str("ab"));
  EXPECT_EQ(Str.intrinsic(), IntrinsicType::String);
}

//===----------------------------------------------------------------------===//
// Type signatures (Section 2.2.1)
//===----------------------------------------------------------------------===//

TEST(Signature, SafetyIsSubtyping) {
  // An int-scalar invocation runs code compiled for real scalars, never the
  // reverse.
  TypeSignature IntSig({Type::scalar(IntrinsicType::Int, Range::constant(3))});
  TypeSignature RealSig({Type::scalar(IntrinsicType::Real)});
  TypeSignature TopSig = TypeSignature::generic(1);
  EXPECT_TRUE(IntSig.safeFor(RealSig));
  EXPECT_FALSE(RealSig.safeFor(IntSig));
  EXPECT_TRUE(RealSig.safeFor(TopSig));
  EXPECT_TRUE(IntSig.safeFor(TopSig));
  EXPECT_FALSE(TopSig.safeFor(IntSig));
}

TEST(Signature, ArityMismatchNeverSafe) {
  TypeSignature One({Type::top()});
  TypeSignature Two({Type::top(), Type::top()});
  EXPECT_FALSE(One.safeFor(Two));
}

TEST(Signature, MatrixShapeSafety) {
  TypeSignature Actual({Type::exactMatrix(IntrinsicType::Real, 3, 3)});
  TypeSignature Exact3({Type::exactMatrix(IntrinsicType::Real, 3, 3)});
  TypeSignature AnyReal({Type::matrix(IntrinsicType::Real)});
  TypeSignature Exact4({Type::exactMatrix(IntrinsicType::Real, 4, 4)});
  EXPECT_TRUE(Actual.safeFor(Exact3));
  EXPECT_TRUE(Actual.safeFor(AnyReal));
  EXPECT_FALSE(Actual.safeFor(Exact4));
}

TEST(Signature, DistancePrefersTighterMatch) {
  // The locator's Manhattan heuristic: tighter signatures are closer.
  TypeSignature Actual({Type::scalar(IntrinsicType::Int, Range::constant(3))});
  TypeSignature ExactMatch(
      {Type::scalar(IntrinsicType::Int, Range::constant(3))});
  TypeSignature IntAny({Type::scalar(IntrinsicType::Int)});
  TypeSignature RealAny({Type::scalar(IntrinsicType::Real)});
  TypeSignature Generic = TypeSignature::generic(1);

  double D0 = Actual.distance(ExactMatch);
  double D1 = Actual.distance(IntAny);
  double D2 = Actual.distance(RealAny);
  double D3 = Actual.distance(Generic);
  EXPECT_EQ(D0, 0);
  EXPECT_LT(D0, D1);
  EXPECT_LT(D1, D2);
  EXPECT_LT(D2, D3);
}

TEST(Signature, OfValuesRoundTrip) {
  std::vector<ValuePtr> Args = {makeScalar(2.5), makeValue(Value::zeros(2, 3))};
  TypeSignature Sig = TypeSignature::ofValues(Args);
  ASSERT_EQ(Sig.size(), 2u);
  EXPECT_TRUE(Sig[0].isScalar());
  EXPECT_EQ(Sig[1].exactShape()->Cols, 3u);
  // An invocation is always safe for its own signature.
  EXPECT_TRUE(Sig.safeFor(Sig));
}

} // namespace
