//===- tests/ValueTest.cpp - Value and resize semantics -----------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "runtime/Value.h"

#include <gtest/gtest.h>

using namespace majic;

TEST(Value, ScalarFactories) {
  Value V = Value::scalar(3.5);
  EXPECT_TRUE(V.isScalar());
  EXPECT_EQ(V.mclass(), MClass::Real);
  EXPECT_DOUBLE_EQ(V.scalarValue(), 3.5);

  Value I = Value::intScalar(4);
  EXPECT_EQ(I.mclass(), MClass::Int);

  Value B = Value::boolScalar(true);
  EXPECT_EQ(B.mclass(), MClass::Bool);
  EXPECT_DOUBLE_EQ(B.scalarValue(), 1.0);

  Value C = Value::complexScalar(1, -2);
  EXPECT_TRUE(C.isComplex());
  EXPECT_DOUBLE_EQ(C.re(0), 1.0);
  EXPECT_DOUBLE_EQ(C.im(0), -2.0);
}

TEST(Value, EmptyMatrix) {
  Value V;
  EXPECT_TRUE(V.isEmpty());
  EXPECT_EQ(V.rows(), 0u);
  EXPECT_EQ(V.cols(), 0u);
  EXPECT_FALSE(V.isTrue());
}

TEST(Value, ZerosLayoutIsColumnMajor) {
  Value V = Value::zeros(2, 3);
  V.reRef(0) = 11; // (0,0)
  V.reRef(1) = 21; // (1,0)
  V.reRef(2) = 12; // (0,1)
  EXPECT_DOUBLE_EQ(V.at(0, 0), 11);
  EXPECT_DOUBLE_EQ(V.at(1, 0), 21);
  EXPECT_DOUBLE_EQ(V.at(0, 1), 12);
}

TEST(Value, RangeBasics) {
  Value R = Value::range(1, 1, 5);
  ASSERT_EQ(R.numel(), 5u);
  EXPECT_EQ(R.rows(), 1u);
  EXPECT_EQ(R.mclass(), MClass::Int);
  EXPECT_DOUBLE_EQ(R.re(4), 5);

  Value Down = Value::range(5, -2, 0);
  ASSERT_EQ(Down.numel(), 3u); // 5 3 1
  EXPECT_DOUBLE_EQ(Down.re(2), 1);

  Value Empty = Value::range(3, 1, 2);
  EXPECT_TRUE(Empty.isEmpty());
  EXPECT_EQ(Empty.rows(), 1u);

  Value Frac = Value::range(0, 0.25, 1);
  EXPECT_EQ(Frac.numel(), 5u);
  EXPECT_EQ(Frac.mclass(), MClass::Real);
}

TEST(Value, GrowVectorPreservesAndZeroFills) {
  Value V = Value::zeros(1, 2);
  V.reRef(0) = 7;
  V.reRef(1) = 8;
  V.growTo(1, 5);
  ASSERT_EQ(V.cols(), 5u);
  EXPECT_DOUBLE_EQ(V.re(0), 7);
  EXPECT_DOUBLE_EQ(V.re(1), 8);
  EXPECT_DOUBLE_EQ(V.re(4), 0);
}

TEST(Value, GrowMatrixRestrides) {
  Value V = Value::zeros(2, 2);
  V.reRef(0) = 1;
  V.reRef(1) = 2;
  V.reRef(2) = 3;
  V.reRef(3) = 4; // [1 3; 2 4]
  V.growTo(3, 3);
  EXPECT_DOUBLE_EQ(V.at(0, 0), 1);
  EXPECT_DOUBLE_EQ(V.at(1, 0), 2);
  EXPECT_DOUBLE_EQ(V.at(0, 1), 3);
  EXPECT_DOUBLE_EQ(V.at(1, 1), 4);
  EXPECT_DOUBLE_EQ(V.at(2, 2), 0);
}

TEST(Value, OversizingIsInvisibleButPresent) {
  // Section 2.6.1: resized arrays get ~10% slack, but size queries must
  // never observe it.
  Value V = Value::zeros(100, 1);
  V.growTo(200, 1);
  EXPECT_EQ(V.rows(), 200u);
  EXPECT_EQ(V.numel(), 200u);
  EXPECT_GE(V.capacityElems(), 220u); // 200 + 10% + 4
}

TEST(Value, RepeatedVectorGrowthAmortizes) {
  Value V = Value::zeros(1, 1);
  V.growTo(1, 1000);
  size_t CapAfterBigGrow = V.capacityElems();
  // Growing within the oversized capacity must not reallocate.
  V.growTo(1, 1050);
  EXPECT_EQ(V.capacityElems(), CapAfterBigGrow);
}

TEST(Value, ComplexPromotionAndDemotion) {
  Value V = Value::scalar(2);
  V.makeComplex();
  EXPECT_TRUE(V.isComplex());
  EXPECT_DOUBLE_EQ(V.im(0), 0.0);
  EXPECT_TRUE(V.demoteComplexIfReal());
  EXPECT_FALSE(V.isComplex());

  Value C = Value::complexScalar(1, 2);
  EXPECT_FALSE(C.demoteComplexIfReal());
}

TEST(Value, TruthinessMatchesMatlab) {
  EXPECT_TRUE(Value::scalar(2).isTrue());
  EXPECT_FALSE(Value::scalar(0).isTrue());
  Value V = Value::zeros(1, 3);
  V.reRef(0) = V.reRef(1) = V.reRef(2) = 1;
  EXPECT_TRUE(V.isTrue());
  V.reRef(1) = 0;
  EXPECT_FALSE(V.isTrue()); // all elements must be nonzero
}

TEST(Value, StringBasics) {
  Value S = Value::str("hello");
  EXPECT_TRUE(S.isString());
  EXPECT_EQ(S.rows(), 1u);
  EXPECT_EQ(S.cols(), 5u);
  EXPECT_TRUE(S.isTrue());
  Value Empty = Value::str("");
  EXPECT_TRUE(Empty.isEmpty());
}

TEST(Value, CopyOnWriteMakeUnique) {
  ValuePtr A = makeScalar(1.0);
  ValuePtr B = A;
  Value &MA = makeUnique(A);
  MA.reRef(0) = 42;
  EXPECT_DOUBLE_EQ(A->re(0), 42);
  EXPECT_DOUBLE_EQ(B->re(0), 1.0); // B untouched: copy happened
  // Uniquely owned: no copy.
  Value *Before = A.get();
  makeUnique(A);
  EXPECT_EQ(A.get(), Before);
}

TEST(Value, ScalarValueThrowsOnMatrix) {
  Value V = Value::zeros(2, 2);
  EXPECT_THROW(V.scalarValue(), MatlabError);
}
