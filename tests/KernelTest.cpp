//===- tests/KernelTest.cpp - Dense kernel layer -----------------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The blocked/threaded kernel layer (ISSUE 2): oracle tests of the blocked
// dgemm/dgemv/zgemm against naive references compiled in this TU (default
// flags, so no FMA contraction sneaks into the oracle), bit-identical
// determinism across ComputeThreads settings, and the parallelFor
// primitive itself. Run under -DMAJIC_SANITIZE=thread to certify the
// parallel paths.
//
//===----------------------------------------------------------------------===//

#include "runtime/Blas.h"
#include "runtime/Builtins.h"
#include "runtime/Context.h"
#include "runtime/Ops.h"
#include "support/Parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <complex>
#include <cstdlib>
#include <cstring>
#include <random>
#include <vector>

using namespace majic;

namespace {

// Shrink the gemm blocks for this binary (read once, before any kernel
// call): oracle shapes in the tens cross MC/KC/NC boundaries, exercising
// the packed edge tiles and the multi-panel threaded path without
// hundreds-sized matrices.
const bool BlockEnvInit = [] {
  setenv("MAJIC_GEMM_MC", "32", /*overwrite=*/0);
  setenv("MAJIC_GEMM_KC", "64", 0);
  setenv("MAJIC_GEMM_NC", "24", 0);
  return true;
}();

//===----------------------------------------------------------------------===//
// Naive references (this TU = default flags: every multiply and add rounds
// separately, the honest oracle for a 1e-12 relative comparison)
//===----------------------------------------------------------------------===//

void refGemm(size_t M, size_t N, size_t K, double Alpha, const double *A,
             const double *B, double Beta, double *C) {
  for (size_t J = 0; J != N; ++J)
    for (size_t I = 0; I != M; ++I) {
      double Sum = 0;
      for (size_t P = 0; P != K; ++P)
        Sum += A[P * M + I] * B[J * K + P];
      double Base = Beta == 0.0 ? 0.0 : Beta * C[J * M + I];
      C[J * M + I] = Base + Alpha * Sum;
    }
}

void refGemv(size_t M, size_t N, double Alpha, const double *A,
             const double *X, double Beta, double *Y) {
  for (size_t I = 0; I != M; ++I) {
    double Sum = 0;
    for (size_t J = 0; J != N; ++J)
      Sum += A[J * M + I] * X[J];
    Y[I] = (Beta == 0.0 ? 0.0 : Beta * Y[I]) + Alpha * Sum;
  }
}

std::vector<double> randomVec(size_t N, std::mt19937_64 &Rng) {
  std::uniform_real_distribution<double> D(-2.0, 2.0);
  std::vector<double> V(N);
  for (double &X : V)
    X = D(Rng);
  return V;
}

/// Largest mismatch relative to the accumulation scale. \p Scale should be
/// the number of accumulated terms (times the operand magnitude): a K-term
/// dot product carries O(K*eps) forward error, and when Beta*C + Alpha*Sum
/// nearly cancels, the error must be judged against that scale rather than
/// the (tiny) result.
double maxRelDiff(const std::vector<double> &A, const std::vector<double> &B,
                  double Scale = 1.0) {
  EXPECT_EQ(A.size(), B.size());
  double Max = 0;
  for (size_t I = 0; I != A.size(); ++I) {
    double Den = std::max({std::fabs(A[I]), std::fabs(B[I]), Scale, 1e-30});
    Max = std::max(Max, std::fabs(A[I] - B[I]) / Den);
  }
  return Max;
}

//===----------------------------------------------------------------------===//
// dgemm / dgemv oracle
//===----------------------------------------------------------------------===//

TEST(Dgemm, OracleOverShapesAndScalars) {
  // 0/1 dims, primes, and sizes beyond the (shrunken) MC/KC/NC blocks.
  const size_t Dims[][3] = {
      {0, 0, 0},  {0, 3, 2},   {3, 0, 2},   {3, 2, 0},   {1, 1, 1},
      {1, 7, 5},  {7, 1, 5},   {5, 4, 1},   {2, 2, 2},   {13, 11, 7},
      {17, 3, 29}, {31, 37, 5}, {33, 25, 65}, {67, 26, 70}, {40, 49, 128},
  };
  const double Alphas[] = {0.0, 1.0, -1.0, 0.5};
  const double Betas[] = {0.0, 1.0, 0.7};
  std::mt19937_64 Rng(0xC0FFEE);
  for (const auto &D : Dims) {
    size_t M = D[0], N = D[1], K = D[2];
    std::vector<double> A = randomVec(M * K, Rng);
    std::vector<double> B = randomVec(K * N, Rng);
    std::vector<double> CInit = randomVec(M * N, Rng);
    for (double Alpha : Alphas)
      for (double Beta : Betas) {
        std::vector<double> Got = CInit, Want = CInit;
        blas::dgemm(M, N, K, Alpha, A.data(), B.data(), Beta, Got.data());
        refGemm(M, N, K, Alpha, A.data(), B.data(), Beta, Want.data());
        EXPECT_LE(maxRelDiff(Got, Want, static_cast<double>(K) + 1.0), 1e-12)
            << M << "x" << N << "x" << K << " alpha=" << Alpha
            << " beta=" << Beta;
      }
  }
}

TEST(Dgemm, RandomizedShapes) {
  std::mt19937_64 Rng(42);
  std::uniform_int_distribution<size_t> Dim(0, 90);
  for (int Round = 0; Round != 25; ++Round) {
    size_t M = Dim(Rng), N = Dim(Rng), K = Dim(Rng);
    std::vector<double> A = randomVec(M * K, Rng);
    std::vector<double> B = randomVec(K * N, Rng);
    std::vector<double> Got(M * N, 0.5), Want(M * N, 0.5);
    blas::dgemm(M, N, K, 1.0, A.data(), B.data(), 0.0, Got.data());
    refGemm(M, N, K, 1.0, A.data(), B.data(), 0.0, Want.data());
    EXPECT_LE(maxRelDiff(Got, Want, static_cast<double>(K) + 1.0), 1e-12)
        << "round " << Round << ": " << M << "x" << N << "x" << K;
  }
}

TEST(Dgemv, OracleOverShapesAndScalars) {
  // Spans the small->fast cutoff (M*N = 16384) and the parallel row split.
  const size_t Dims[][2] = {{0, 5},   {1, 1},    {7, 13},   {113, 97},
                            {128, 128}, {257, 129}, {2111, 17}, {37, 1000}};
  const double Alphas[] = {0.0, 1.0, -1.0, 0.5};
  const double Betas[] = {0.0, 1.0, 0.7};
  std::mt19937_64 Rng(0xBEEF);
  for (const auto &D : Dims) {
    size_t M = D[0], N = D[1];
    std::vector<double> A = randomVec(M * N, Rng);
    std::vector<double> X = randomVec(N, Rng);
    std::vector<double> YInit = randomVec(M, Rng);
    for (double Alpha : Alphas)
      for (double Beta : Betas) {
        std::vector<double> Got = YInit, Want = YInit;
        blas::dgemv(M, N, Alpha, A.data(), X.data(), Beta, Got.data());
        refGemv(M, N, Alpha, A.data(), X.data(), Beta, Want.data());
        EXPECT_LE(maxRelDiff(Got, Want, static_cast<double>(N) + 1.0), 1e-12)
            << M << "x" << N << " alpha=" << Alpha << " beta=" << Beta;
      }
  }
}

TEST(Dgemm, SingleColumnMatchesDgemv) {
  // The VM's fused Gemv op calls dgemv directly while the interpreter goes
  // through dgemm; the delegation must make them bit-identical.
  std::mt19937_64 Rng(7);
  size_t M = 211, K = 113;
  std::vector<double> A = randomVec(M * K, Rng);
  std::vector<double> X = randomVec(K, Rng);
  std::vector<double> ViaGemm(M, 0.0), ViaGemv(M, 0.0);
  blas::dgemm(M, 1, K, 1.0, A.data(), X.data(), 0.0, ViaGemm.data());
  blas::dgemv(M, K, 1.0, A.data(), X.data(), 0.0, ViaGemv.data());
  EXPECT_EQ(0, std::memcmp(ViaGemm.data(), ViaGemv.data(),
                           M * sizeof(double)));
}

//===----------------------------------------------------------------------===//
// zgemm oracle
//===----------------------------------------------------------------------===//

TEST(Zgemm, OracleIncludingRealComplexMixes) {
  using Cplx = std::complex<double>;
  std::mt19937_64 Rng(0xABCD);
  size_t M = 29, N = 31, K = 27;
  std::vector<double> ARe = randomVec(M * K, Rng), AIm = randomVec(M * K, Rng);
  std::vector<double> BRe = randomVec(K * N, Rng), BIm = randomVec(K * N, Rng);
  // All four real/complex operand combinations.
  for (int Mix = 0; Mix != 4; ++Mix) {
    const double *AI = (Mix & 1) ? AIm.data() : nullptr;
    const double *BI = (Mix & 2) ? BIm.data() : nullptr;
    std::vector<double> CRe(M * N), CIm(M * N);
    blas::zgemm(M, N, K, ARe.data(), AI, BRe.data(), BI, CRe.data(),
                CIm.data());
    for (size_t J = 0; J != N; ++J)
      for (size_t I = 0; I != M; ++I) {
        Cplx Sum = 0;
        for (size_t P = 0; P != K; ++P) {
          Cplx Av(ARe[P * M + I], AI ? AIm[P * M + I] : 0.0);
          Cplx Bv(BRe[J * K + P], BI ? BIm[J * K + P] : 0.0);
          Sum += Av * Bv;
        }
        double Den = std::max(std::abs(Sum), 1e-30);
        EXPECT_LE(std::abs(Cplx(CRe[J * M + I], CIm[J * M + I]) - Sum) / Den,
                  1e-12)
            << "mix " << Mix << " at (" << I << "," << J << ")";
      }
  }
}

TEST(Zgemm, ComplexMatMulThroughOps) {
  // End to end through rt::binary: complex * real-mix products agree with
  // a per-element reference.
  size_t M = 9, K = 8, N = 7;
  std::mt19937_64 Rng(99);
  Value A = Value::zeros(M, K, MClass::Complex);
  Value B = Value::zeros(K, N); // real operand
  std::uniform_real_distribution<double> D(-1.0, 1.0);
  for (size_t I = 0; I != M * K; ++I) {
    A.reRef(I) = D(Rng);
    A.imRef(I) = D(Rng);
  }
  for (size_t I = 0; I != K * N; ++I)
    B.reRef(I) = D(Rng);
  Value C = rt::binary(rt::BinOp::MatMul, A, B);
  ASSERT_TRUE(C.isComplex());
  ASSERT_EQ(C.rows(), M);
  ASSERT_EQ(C.cols(), N);
  for (size_t J = 0; J != N; ++J)
    for (size_t I = 0; I != M; ++I) {
      std::complex<double> Sum = 0;
      for (size_t P = 0; P != K; ++P)
        Sum += std::complex<double>(A.at(I, P), A.atIm(I, P)) * B.at(P, J);
      EXPECT_NEAR(C.at(I, J), Sum.real(), 1e-12);
      EXPECT_NEAR(C.atIm(I, J), Sum.imag(), 1e-12);
    }
}

//===----------------------------------------------------------------------===//
// Small kernels
//===----------------------------------------------------------------------===//

TEST(VectorKernels, DdotAndDaxpyz) {
  std::mt19937_64 Rng(3);
  size_t N = 1003; // exercises the unroll tail
  std::vector<double> X = randomVec(N, Rng), Y = randomVec(N, Rng);
  double Want = 0;
  for (size_t I = 0; I != N; ++I)
    Want += X[I] * Y[I];
  EXPECT_NEAR(blas::ddot(N, X.data(), Y.data()), Want, 1e-12 * N);

  // daxpyz == copy + daxpy, bit for bit (the VM relies on this).
  std::vector<double> Z(N), ViaAxpy = Y;
  blas::daxpyz(N, 1.7, X.data(), Y.data(), Z.data());
  blas::daxpy(N, 1.7, X.data(), ViaAxpy.data());
  EXPECT_EQ(0, std::memcmp(Z.data(), ViaAxpy.data(), N * sizeof(double)));
}

//===----------------------------------------------------------------------===//
// Determinism across thread counts
//===----------------------------------------------------------------------===//

/// Runs \p Fn under each ComputeThreads in {1,2,4} and checks the raw
/// output bytes never change. Restores the automatic thread count.
template <typename Fn> void expectThreadInvariant(Fn Produce) {
  std::vector<double> Baseline = (par::setComputeThreads(1), Produce());
  for (unsigned T : {2u, 4u}) {
    par::setComputeThreads(T);
    std::vector<double> Got = Produce();
    ASSERT_EQ(Got.size(), Baseline.size());
    EXPECT_EQ(0, std::memcmp(Got.data(), Baseline.data(),
                             Got.size() * sizeof(double)))
        << "results changed with " << T << " threads";
  }
  par::setComputeThreads(0);
}

TEST(Determinism, GemmBitIdenticalAcrossThreadCounts) {
  std::mt19937_64 Rng(11);
  size_t M = 151, N = 67, K = 83; // several NC=24 panels, odd edges
  std::vector<double> A = randomVec(M * K, Rng), B = randomVec(K * N, Rng);
  expectThreadInvariant([&] {
    std::vector<double> C(M * N, 0.25);
    blas::dgemm(M, N, K, 1.0, A.data(), B.data(), 0.7, C.data());
    return C;
  });
}

TEST(Determinism, GemvBitIdenticalAcrossThreadCounts) {
  std::mt19937_64 Rng(12);
  size_t M = 4099, N = 53;
  std::vector<double> A = randomVec(M * N, Rng), X = randomVec(N, Rng);
  expectThreadInvariant([&] {
    std::vector<double> Y(M, 1.5);
    blas::dgemv(M, N, 1.0, A.data(), X.data(), 0.3, Y.data());
    return Y;
  });
}

TEST(Determinism, ElementwiseBitIdenticalAcrossThreadCounts) {
  size_t N = 100003; // above the parallel grain, odd tail
  Value A = Value::zeros(N, 1), B = Value::zeros(N, 1);
  for (size_t I = 0; I != N; ++I) {
    A.reRef(I) = std::sin(0.001 * static_cast<double>(I));
    B.reRef(I) = 1.0 + 0.5 * std::cos(0.002 * static_cast<double>(I));
  }
  expectThreadInvariant([&] {
    Value R = rt::binary(rt::BinOp::ElemRDiv, A, B);
    return std::vector<double>(R.reData(), R.reData() + N);
  });
  // Scalar-operand fast path.
  expectThreadInvariant([&] {
    Value R = rt::binary(rt::BinOp::ElemMul, A, Value::scalar(1.000001));
    return std::vector<double>(R.reData(), R.reData() + N);
  });
  // Comparison mask.
  expectThreadInvariant([&] {
    Value R = rt::binary(rt::BinOp::Lt, A, B);
    return std::vector<double>(R.reData(), R.reData() + N);
  });
}

TEST(Determinism, SumBitIdenticalAcrossThreadCounts) {
  size_t N = (1u << 17) + 7; // multiple fixed reduction chunks, odd tail
  Value V = Value::zeros(N, 1);
  for (size_t I = 0; I != N; ++I)
    V.reRef(I) = std::sin(0.37 * static_cast<double>(I));
  Context Ctx;
  const BuiltinDef *Sum = BuiltinTable::instance().lookup("sum");
  ASSERT_NE(Sum, nullptr);
  expectThreadInvariant([&] {
    const Value *Args[] = {&V};
    std::vector<Value> R = BuiltinTable::call(*Sum, Ctx, Args, 1);
    return std::vector<double>{R.at(0).scalarValue()};
  });
}

//===----------------------------------------------------------------------===//
// parallelFor
//===----------------------------------------------------------------------===//

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  par::setComputeThreads(4);
  size_t N = 100001;
  std::vector<std::atomic<int>> Hits(N);
  par::parallelFor(N, 1000, [&](size_t B, size_t E) {
    EXPECT_TRUE(par::inParallelRegion());
    for (size_t I = B; I != E; ++I)
      Hits[I].fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_FALSE(par::inParallelRegion());
  for (size_t I = 0; I != N; ++I)
    ASSERT_EQ(Hits[I].load(), 1) << "index " << I;
  par::setComputeThreads(0);
}

TEST(ParallelFor, SmallRangeRunsAsOneChunk) {
  par::setComputeThreads(4);
  std::atomic<int> Calls{0};
  par::parallelFor(100, 1000, [&](size_t B, size_t E) {
    Calls.fetch_add(1);
    EXPECT_EQ(B, 0u);
    EXPECT_EQ(E, 100u);
  });
  EXPECT_EQ(Calls.load(), 1);
  par::parallelFor(0, 1, [&](size_t, size_t) { Calls.fetch_add(1); });
  EXPECT_EQ(Calls.load(), 1); // empty range: body never runs
  par::setComputeThreads(0);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  par::setComputeThreads(4);
  std::atomic<int> Inner{0};
  par::parallelFor(100000, 100, [&](size_t B, size_t E) {
    // A nested parallelFor must not deadlock or re-enter the pool: it runs
    // the whole inner range inline on this thread.
    par::parallelFor(E - B, 1, [&](size_t IB, size_t IE) {
      EXPECT_EQ(IB, 0u);
      EXPECT_EQ(IE, E - B);
      Inner.fetch_add(1);
    });
  });
  EXPECT_GE(Inner.load(), 1);
  par::setComputeThreads(0);
}

TEST(ParallelFor, PropagatesBodyExceptions) {
  par::setComputeThreads(4);
  EXPECT_THROW(
      par::parallelFor(100000, 100,
                       [](size_t B, size_t) {
                         if (B == 0)
                           throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> Ran{0};
  par::parallelFor(100000, 100,
                   [&](size_t, size_t) { Ran.fetch_add(1); });
  EXPECT_GE(Ran.load(), 1);
  par::setComputeThreads(0);
}

TEST(ParallelFor, ComputeThreadsResolvesToAtLeastOne) {
  par::setComputeThreads(0);
  EXPECT_GE(par::computeThreads(), 1u);
  par::setComputeThreads(3);
  EXPECT_EQ(par::computeThreads(), 3u);
  par::setComputeThreads(0);
}

} // namespace
