//===- examples/profile_smoke.cpp - Two-session profile-guided smoke -------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Scriptable two-session smoke check for profile-guided speculation, used
// by CI:
//
//   profile_smoke <srcdir> <storedir> cold
//     writes a three-function corpus into <srcdir>, then runs a skewed
//     workload (hotfn called 5x, midfn 2x, coldfn never) against the
//     persistent store in <storedir>; teardown persists both the compiled
//     code and the profile.
//
//   profile_smoke <srcdir> <storedir> warm
//     a fresh session on the same directories. Asserts, exiting nonzero
//     on any violation:
//       - the persisted profile loaded (not quarantined);
//       - with the worker paused, snoop() queues speculation hot-first:
//         hotfn before midfn before coldfn;
//       - the first invocation of hotfn is served without a foreground
//         (JIT) compile and produces the expected value.
//
// Run the warm session with MAJIC_METRICS=metrics.json and the CI job
// greps `"engine.jit_compiles": 0` from the dump as an independent check.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace majic;

namespace {

int fail(const char *Msg) {
  std::fprintf(stderr, "profile_smoke: FAIL: %s\n", Msg);
  return 1;
}

// Self-contained bodies (no cross-function calls), so the invocation
// counts - and therefore the expected queue order - are exactly the
// workload's call counts.
void writeCorpus(const std::string &SrcDir) {
  std::filesystem::create_directories(SrcDir);
  std::ofstream(SrcDir + "/hotfn.m") << "function y = hotfn(n)\n"
                                        "y = 0;\n"
                                        "for k = 1:n\ny = y + k;\nend\n";
  std::ofstream(SrcDir + "/midfn.m") << "function y = midfn(n)\n"
                                        "y = 1;\n"
                                        "for k = 1:n\ny = y * 2;\nend\n";
  std::ofstream(SrcDir + "/coldfn.m") << "function y = coldfn(x)\n"
                                         "y = x * x;\n";
}

EngineOptions options(const std::string &StoreDir) {
  EngineOptions O;
  O.Policy = CompilePolicy::Speculative;
  O.BackgroundCompileThreads = 1;
  O.RepoDir = StoreDir;
  return O;
}

ValuePtr intArg(long N) { return makeValue(Value::intScalar(N)); }

int runCold(const std::string &SrcDir, const std::string &StoreDir) {
  writeCorpus(SrcDir);
  Engine E(options(StoreDir));
  E.watchDirectory(SrcDir);
  if (E.snoop() != 3)
    return fail("cold: expected to snoop 3 files");
  E.drainCompiles();

  // The skewed workload the profile must remember.
  for (int I = 0; I != 5; ++I)
    E.callFunction("hotfn", {intArg(10)}, 1, SourceLoc());
  for (int I = 0; I != 2; ++I)
    E.callFunction("midfn", {intArg(4)}, 1, SourceLoc());
  E.drainCompiles();
  E.flushRepoStore();
  std::printf("profile_smoke: cold session done (hotfn x5, midfn x2)\n");
  return 0;
}

int runWarm(const std::string &SrcDir, const std::string &StoreDir) {
  Engine E(options(StoreDir));
  RepoStoreStats St = E.repoStoreStats();
  if (St.ProfilesLoaded == 0)
    return fail("warm: no persisted profiles loaded");
  if (St.ProfilesQuarantined != 0 || St.ProfilesSkewed != 0)
    return fail("warm: profile file was quarantined");

  // Freeze the worker so the ranked queue is observable, then snoop.
  E.pauseBackgroundCompiles();
  E.watchDirectory(SrcDir);
  if (E.snoop() != 3)
    return fail("warm: expected to snoop 3 files");
  std::vector<std::string> Q = E.queuedSpeculations();
  std::printf("profile_smoke: warm speculation queue:");
  for (const std::string &Fn : Q)
    std::printf(" %s", Fn.c_str());
  std::printf("\n");
  if (Q != std::vector<std::string>{"hotfn", "midfn", "coldfn"})
    return fail("warm: queue is not in hot-first profile order");
  E.resumeBackgroundCompiles();
  E.drainCompiles();

  // The call the profile predicted: served from the warm store, no
  // foreground compile.
  auto R = E.callFunction("hotfn", {intArg(10)}, 1, SourceLoc());
  if (R.empty() || R[0]->scalarValue() != 55)
    return fail("warm: hotfn(10) != 55");
  if (E.jitCompiles() != 0)
    return fail("warm: first invocation paid a foreground JIT compile");
  std::printf("profile_smoke: warm session OK (hot-first queue, zero "
              "foreground compiles)\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 4 || (std::strcmp(Argv[3], "cold") != 0 &&
                    std::strcmp(Argv[3], "warm") != 0)) {
    std::fprintf(stderr, "usage: profile_smoke <srcdir> <storedir> cold|warm\n");
    return 2;
  }
  return std::strcmp(Argv[3], "cold") == 0 ? runCold(Argv[1], Argv[2])
                                           : runWarm(Argv[1], Argv[2]);
}
