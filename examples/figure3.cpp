//===- examples/figure3.cpp - Reproducing Figure 3's generated code -------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Figure 3 of the paper shows the same one-line polynomial compiled under
// five different type signatures, from a known constant (the entire call
// collapses to "return 254") down to a fully generic complex matrix (every
// operator a boxed mlf* library call). This example regenerates that table:
// for each signature it runs type inference, code selection and the source
// code generator, and prints the emitted C.
//
//===----------------------------------------------------------------------===//

#include "analysis/Disambiguate.h"
#include "ast/Parser.h"
#include "backend/CEmitter.h"
#include "backend/Compiler.h"

#include <cstdio>

using namespace majic;

int main() {
  const char *Source = "function p = poly(x)\n"
                       "p = x.^5 + 3*x + 2;\n";
  SourceManager SM;
  Diagnostics Diags;
  auto Mod = parseModule("poly", Source, SM, Diags);
  if (!Mod) {
    std::fprintf(stderr, "%s\n", Diags.render(SM).c_str());
    return 1;
  }
  auto Info = disambiguate(*Mod->mainFunction(), *Mod);

  struct Row {
    const char *Label;
    Type ArgType;
    CodeGenMode Mode;
  };
  const Row Rows[] = {
      {"sig0: int scalar, limits <254,254> (constant folds away)",
       Type::scalar(IntrinsicType::Int, Range::constant(254)),
       CodeGenMode::Optimized},
      {"sig1: int scalar, limits top",
       Type::scalar(IntrinsicType::Int), CodeGenMode::Optimized},
      {"sig2: real scalar, limits top",
       Type::scalar(IntrinsicType::Real), CodeGenMode::Optimized},
      {"sig3: real 1x3 vector, exact shape (unrolled)",
       Type::exactMatrix(IntrinsicType::Real, 1, 3), CodeGenMode::Optimized},
      {"sig4: complex matrix, shape top (generic mlf* calls)",
       Type::matrix(IntrinsicType::Complex), CodeGenMode::Optimized},
  };

  for (const Row &R : Rows) {
    std::printf("//========================================================"
                "====================\n");
    std::printf("// %s\n", R.Label);
    std::printf("//========================================================"
                "====================\n");
    CompileRequest Req;
    Req.FI = Info.get();
    Req.Sig = TypeSignature({R.ArgType});
    Req.Mode = R.Mode;

    // Emit the C before register allocation (the native compiler does its
    // own), i.e. re-run inference + codegen + optimizer here.
    TypeAnnotations Ann;
    InferResult Inferred = inferTypes(*Info, Req.Sig, Req.Infer);
    CodeGenOptions CG;
    CG.Mode = R.Mode;
    auto Code = generateCode(*Info, Inferred.Ann, Req.Sig, CG);
    if (!Code) {
      std::printf("// <not compilable>\n\n");
      continue;
    }
    OptimizeOptions OO;
    optimize(*Code, OO);
    std::printf("%s\n", emitCSource(*Code, Req.Sig).c_str());
  }
  return 0;
}
