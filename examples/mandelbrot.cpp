//===- examples/mandelbrot.cpp - A numeric workload end to end ------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// A domain scenario straight out of the paper's motivation: an interactive
// numeric exploration (the Mandelbrot set, one of Table 1's benchmarks)
// where the user cares about both responsiveness and speed. The same
// MATLAB source runs interpreted and JIT-compiled; the result renders as
// ASCII art and the timings show what compiling behind the scenes buys.
//
//===----------------------------------------------------------------------===//

#include "engine/Corpus.h"
#include "engine/Engine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace majic;

static double runOnce(CompilePolicy Policy, int N, int MaxIt,
                      ValuePtr *ResultOut) {
  EngineOptions Opts;
  Opts.Policy = Policy;
  Engine E(Opts);
  if (!E.loadFile(mlibDirectory() + "/mandel.m")) {
    std::fprintf(stderr, "%s\n", E.diagnostics().c_str());
    std::exit(1);
  }
  std::vector<ValuePtr> Args{makeValue(Value::intScalar(N)),
                             makeValue(Value::intScalar(MaxIt))};
  Timer T;
  auto R = E.callFunction("mandel", Args, 1, SourceLoc());
  double Seconds = T.seconds();
  if (ResultOut)
    *ResultOut = R[0];
  return Seconds;
}

int main() {
  const int N = 60, MaxIt = 48;

  ValuePtr M;
  double Interp = runOnce(CompilePolicy::InterpretOnly, N, MaxIt, &M);
  double Jit = runOnce(CompilePolicy::Jit, N, MaxIt, nullptr);

  // Render: rows are the imaginary axis (columns of M), columns the real.
  const char *Shades = " .:-=+*#%@";
  for (size_t Col = 0; Col < M->cols(); Col += 2) {
    for (size_t Row = 0; Row != M->rows(); ++Row) {
      double K = M->at(Row, Col);
      int Shade = static_cast<int>(9.0 * K / MaxIt);
      std::putchar(Shades[Shade]);
    }
    std::putchar('\n');
  }

  std::printf("\nmandel(%d, %d): interpreted %.3f s, JIT (incl. compile) "
              "%.3f s -> speedup %.1fx\n",
              N, MaxIt, Interp, Jit, Interp / Jit);
  std::printf("(the inner loop is complex scalar arithmetic, inlined to "
              "register pairs by the code selector)\n");
  return 0;
}
