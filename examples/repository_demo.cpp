//===- examples/repository_demo.cpp - The code repository at work ---------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Walks through the Section 2 life cycle of compiled code:
//
//   1. a source directory is snooped and compiled speculatively,
//   2. a matching invocation hits the speculative version (zero response
//      time),
//   3. a non-matching invocation is rejected by the signature check and the
//      JIT "kicks in and helps out",
//   4. editing the file invalidates and recompiles,
//   5. the locator picks the best of several coexisting versions.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

using namespace majic;

static void showRepo(Engine &E, const char *FnName) {
  auto Versions = E.repository().versions(FnName);
  if (Versions.empty()) {
    std::printf("  repository: no versions of '%s'\n", FnName);
    return;
  }
  std::printf("  repository versions of '%s':\n", FnName);
  for (const CompiledObjectPtr &Obj : Versions) {
    const char *From = Obj->From == CompiledObject::Origin::Speculative
                           ? "speculative"
                       : Obj->From == CompiledObject::Origin::Jit ? "jit"
                       : Obj->From == CompiledObject::Origin::Batch
                           ? "batch"
                           : "generic";
    std::printf("    %-11s sig=%s hits=%llu\n", From, Obj->Sig.str().c_str(),
                static_cast<unsigned long long>(Obj->Hits.load()));
  }
}

int main() {
  std::string Dir = std::filesystem::temp_directory_path() /
                    "majic_repository_demo";
  std::filesystem::create_directories(Dir);
  {
    std::ofstream F(Dir + "/smooth.m");
    F << "function y = smooth(v, w)\n"
         "% moving average of v with window w\n"
         "n = length(v);\n"
         "y = zeros(1, n);\n"
         "for i = 1:n\n"
         "  lo = i - w;\n"
         "  if lo < 1\n"
         "    lo = 1;\n"
         "  end\n"
         "  hi = i + w;\n"
         "  if hi > n\n"
         "    hi = n;\n"
         "  end\n"
         "  acc = 0;\n"
         "  for k = lo:hi\n"
         "    acc = acc + v(k);\n"
         "  end\n"
         "  y(i) = acc / (hi - lo + 1);\n"
         "end\n";
  }

  EngineOptions Opts;
  Opts.Policy = CompilePolicy::Speculative;
  Engine E(Opts);
  E.watchDirectory(Dir);

  std::printf("1) snooping %s\n", Dir.c_str());
  E.snoop();
  // The speculative compile runs on a background worker; wait for it so
  // the walkthrough below is deterministic.
  E.drainCompiles();
  std::printf("   speculated signature: %s\n",
              E.speculated("smooth").str().c_str());
  showRepo(E, "smooth");

  std::printf("\n2) invoking smooth(rand-vector, 3): the w=int-scalar guess "
              "matches\n");
  Value V = Value::zeros(1, 64);
  for (size_t I = 0; I != 64; ++I)
    V.reRef(I) = static_cast<double>(I % 7);
  auto R = E.callFunction(
      "smooth", {makeValue(V), makeValue(Value::intScalar(3))}, 1,
      SourceLoc());
  std::printf("   smooth(...)(10) = %.4f, jit compiles so far: %llu\n",
              R[0]->re(9), static_cast<unsigned long long>(E.jitCompiles()));
  showRepo(E, "smooth");

  std::printf("\n3) invoking with a real-classed window (3.0 instead of "
              "int 3): the speculative\n   int-scalar signature rejects "
              "it, and the JIT kicks in\n");
  E.callFunction("smooth", {makeValue(V), makeScalar(3.0)}, 1, SourceLoc());
  std::printf("   jit compiles now: %llu\n",
              static_cast<unsigned long long>(E.jitCompiles()));
  showRepo(E, "smooth");

  std::printf("\n4) editing the source file: the snooper notices, stale "
              "code is dropped and recompiled\n");
  std::this_thread::sleep_for(std::chrono::milliseconds(1100));
  {
    std::ofstream F(Dir + "/smooth.m");
    F << "function y = smooth(v, w)\n"
         "% v2: degenerate smoother, returns the input\n"
         "y = v;\n";
  }
  E.snoop();
  E.drainCompiles();
  showRepo(E, "smooth");
  auto R2 = E.callFunction(
      "smooth", {makeValue(V), makeValue(Value::intScalar(3))}, 1,
      SourceLoc());
  std::printf("   after edit smooth(...)(10) = %.4f (identity now)\n",
              R2[0]->re(9));
  showRepo(E, "smooth");
  return 0;
}
