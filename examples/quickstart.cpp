//===- examples/quickstart.cpp - Embedding MaJIC in five minutes ----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The smallest useful embedding: create an engine, register a MATLAB
// function, invoke it. The first call JIT-compiles (Section 2: a repository
// miss "usually triggers a compilation"); later calls hit the repository.
//
// Build and run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "support/Timer.h"

#include <cstdio>

using namespace majic;

int main() {
  // An engine with the default JIT policy.
  Engine E;

  // A MATLAB function: the dot product of the first n squares with their
  // reciprocals, written in scalar style.
  const char *Source = "function s = demo(n)\n"
                       "s = 0;\n"
                       "for k = 1:n\n"
                       "  s = s + (k * k) * (1 / k);\n"
                       "end\n";
  if (!E.addSource("demo", Source)) {
    std::fprintf(stderr, "%s\n", E.diagnostics().c_str());
    return 1;
  }

  // First call: the invocation misses the repository, the JIT compiles.
  std::vector<ValuePtr> Args{makeValue(Value::intScalar(1000000))};
  Timer First;
  std::vector<ValuePtr> R = E.callFunction("demo", Args, 1, SourceLoc());
  double FirstSeconds = First.seconds();
  std::printf("demo(1e6) = %.6g\n", R[0]->scalarValue());
  std::printf("first call (includes JIT compilation): %.3f ms\n",
              FirstSeconds * 1e3);

  // Second call: repository hit, no compilation.
  Timer Second;
  E.callFunction("demo", Args, 1, SourceLoc());
  std::printf("second call (repository hit):          %.3f ms\n",
              Second.seconds() * 1e3);

  // What the repository now holds.
  auto Versions = E.repository().versions("demo");
  std::printf("repository versions of 'demo': %zu\n", Versions.size());
  for (const CompiledObjectPtr &Obj : Versions)
    std::printf("  signature %s, compiled in %.3f ms, %llu hits\n",
                Obj->Sig.str().c_str(), Obj->CompileSeconds * 1e3,
                static_cast<unsigned long long>(Obj->Hits.load()));

  // The interactive front end works too.
  std::printf("\nscript session:\n%s",
              E.runScript("x = demo(10)\ny = x * 2\n").c_str());
  return 0;
}
