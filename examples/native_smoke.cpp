//===- examples/native_smoke.cpp - Three-leg native-tier smoke -------------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Scriptable smoke check for the native (emitted-C) tier, used by CI:
//
//   native_smoke <storedir> cold
//     runs a hot function past the promotion threshold against the
//     persistent store in <storedir>. Asserts the system compiler was
//     invoked (native.compiles >= 1), the promoted version actually
//     served calls (native.hits >= 1), nothing failed, and the .so
//     payload was persisted as a .mjn file.
//
//   native_smoke <storedir> warm
//     a fresh session on the same store. Asserts the first call is
//     served natively with ZERO compiler invocations and zero
//     foreground JIT compiles - the warm-start contract. Run with
//     MAJIC_METRICS=metrics.json and the CI job greps
//     `"native.compiles": 0` from the dump as an independent check.
//
//   native_smoke <storedir> nocc
//     leaves EngineOptions::NativeCC empty so the MAJIC_NATIVE_CC
//     environment fallback applies; CI sets it to a nonexistent path.
//     Asserts results are still bit-correct via the VM, no native
//     counter moved, and no .mjn was written: a missing compiler
//     degrades silently, it never breaks the session.
//
// Every leg checks the same expected values, so a numeric divergence
// between tiers fails the job too.
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

using namespace majic;

namespace {

int fail(const char *Msg) {
  std::fprintf(stderr, "native_smoke: FAIL: %s\n", Msg);
  return 1;
}

// Enough work per call that a native win is plausible, cheap enough
// that CI barely notices: sum of squares 1..n.
const char *kHotSource = "function y = hotfn(n)\n"
                         "y = 0;\n"
                         "for k = 1:n\n"
                         "y = y + k * k;\n"
                         "end\n";

constexpr long kArg = 100;
constexpr double kExpect = 338350; // sum k^2, k=1..100

EngineOptions options(const std::string &StoreDir, bool ExplicitCC) {
  EngineOptions O;
  O.Policy = CompilePolicy::Jit;
  O.BackgroundCompileThreads = 0; // deterministic counters
  O.RepoDir = StoreDir;
  O.NativeTier = true;
  O.NativeHotThreshold = 2;
  if (ExplicitCC)
    O.NativeCC = "cc";
  return O;
}

size_t countFiles(const std::string &Dir, const char *Ext) {
  size_t N = 0;
  std::error_code Ec;
  for (const auto &E :
       std::filesystem::directory_iterator(Dir, Ec))
    if (E.path().extension() == Ext)
      ++N;
  return N;
}

/// Calls hotfn(kArg) and checks the value; every leg goes through this
/// so VM and native answers are held to the same constant.
bool callChecks(Engine &E) {
  auto R = E.callFunction("hotfn", {makeValue(Value::intScalar(kArg))}, 1,
                          SourceLoc());
  return !R.empty() && R[0]->scalarValue() == kExpect;
}

int runCold(const std::string &StoreDir) {
  Engine E(options(StoreDir, /*ExplicitCC=*/true));
  if (!E.nativeTierAvailable())
    return fail("cold: system compiler 'cc' not usable");
  if (!E.addSource("hotfn", kHotSource))
    return fail("cold: addSource rejected the corpus");

  // Threshold is 2: call 1 runs on the VM, call 2 promotes, call 3 reuses.
  for (int I = 0; I != 3; ++I)
    if (!callChecks(E))
      return fail("cold: hotfn(100) != 338350");

  if (E.nativeCompiles() < 1)
    return fail("cold: hot function was never promoted to native");
  if (E.nativeHits() < 1)
    return fail("cold: native version never served a call");
  if (E.nativeFailures() != 0 || E.nativeDeopts() != 0)
    return fail("cold: native tier reported failures");
  E.flushRepoStore();
  if (countFiles(StoreDir, ".mjn") == 0)
    return fail("cold: no .mjn payload persisted");
  std::printf("native_smoke: cold OK (%llu native compile(s), %llu hit(s))\n",
              static_cast<unsigned long long>(E.nativeCompiles()),
              static_cast<unsigned long long>(E.nativeHits()));
  return 0;
}

int runWarm(const std::string &StoreDir) {
  Engine E(options(StoreDir, /*ExplicitCC=*/true));
  RepoStoreStats St = E.repoStoreStats();
  if (St.NativeLoaded == 0)
    return fail("warm: no persisted .mjn payload loaded");
  if (St.NativeQuarantined != 0 || St.NativeSkewed != 0)
    return fail("warm: persisted .mjn payload was rejected");
  if (!E.addSource("hotfn", kHotSource))
    return fail("warm: addSource rejected the corpus");

  // The warm-start contract: served natively, zero compiler invocations.
  if (!callChecks(E))
    return fail("warm: hotfn(100) != 338350");
  if (E.nativeCompiles() != 0)
    return fail("warm: first call invoked the system compiler");
  if (E.nativeHits() == 0)
    return fail("warm: first call was not served by the native tier");
  if (E.jitCompiles() != 0)
    return fail("warm: first call paid a foreground JIT compile");
  std::printf("native_smoke: warm OK (native hit, zero compiler "
              "invocations)\n");
  return 0;
}

int runNoCc(const std::string &StoreDir) {
  // NativeCC left empty: the MAJIC_NATIVE_CC environment fallback
  // applies, and CI points it at a path that does not exist.
  Engine E(options(StoreDir, /*ExplicitCC=*/false));
  if (E.nativeTierAvailable())
    return fail("nocc: expected the native tier to be unavailable");
  if (!E.addSource("hotfn", kHotSource))
    return fail("nocc: addSource rejected the corpus");

  for (int I = 0; I != 3; ++I)
    if (!callChecks(E))
      return fail("nocc: hotfn(100) != 338350 on the VM fallback");
  if (E.nativeCompiles() != 0 || E.nativeHits() != 0)
    return fail("nocc: native counters moved without a compiler");
  E.flushRepoStore();
  if (countFiles(StoreDir, ".mjn") != 0)
    return fail("nocc: wrote a .mjn payload without a compiler");
  std::printf("native_smoke: nocc OK (VM fallback, no native activity)\n");
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc != 3 || (std::strcmp(Argv[2], "cold") != 0 &&
                    std::strcmp(Argv[2], "warm") != 0 &&
                    std::strcmp(Argv[2], "nocc") != 0)) {
    std::fprintf(stderr, "usage: native_smoke <storedir> cold|warm|nocc\n");
    return 2;
  }
  std::filesystem::create_directories(Argv[1]);
  if (std::strcmp(Argv[2], "cold") == 0)
    return runCold(Argv[1]);
  if (std::strcmp(Argv[2], "warm") == 0)
    return runWarm(Argv[1]);
  return runNoCc(Argv[1]);
}
