//===- examples/repl.cpp - The interactive MATLAB-like front end ----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The user-facing MaJIC experience (Section 1: "an interactive frontend
// that looks like MATLAB and compiles/optimizes code behind the scenes").
// Statements typed at the prompt run in the interpreter over a persistent
// workspace; function files in watched directories are picked up by the
// snooping repository and compiled speculatively before first use.
//
// Usage:  ./build/examples/repl [directory-with-m-files ...]
//         echo "x = 2 + 2" | ./build/examples/repl
//
// Meta commands: \quit, \repo (repository contents), \phases (timers).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "engine/Corpus.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace majic;

int main(int Argc, char **Argv) {
  EngineOptions Opts;
  Opts.Policy = CompilePolicy::Speculative;
  Engine E(Opts);

  // Watch the corpus directory plus any directories on the command line;
  // the snooper speculatively compiles everything it finds (Section 2).
  E.watchDirectory(mlibDirectory());
  for (int A = 1; A != Argc; ++A)
    E.watchDirectory(Argv[A]);
  unsigned Loaded = E.snoop();
  std::printf("MaJIC interactive front end (reproduction). %u function(s) "
              "snooped and compiled speculatively.\n",
              Loaded);
  std::printf("Try: s = fibonacci(20), M = mandel(24, 30), \\repo, \\quit\n");

  std::string Line;
  while (true) {
    std::printf(">> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    if (Line == "\\quit" || Line == "\\q")
      break;
    if (Line == "\\repo") {
      std::printf("repository: %zu object(s), %llu hits, %llu misses\n",
                  E.repository().totalObjects(),
                  static_cast<unsigned long long>(E.repository().lookupHits()),
                  static_cast<unsigned long long>(
                      E.repository().lookupMisses()));
      continue;
    }
    if (Line == "\\phases") {
      const PhaseTimes &P = E.phases();
      for (unsigned K = 0; K != static_cast<unsigned>(Phase::NumPhases); ++K)
        std::printf("  %-8s %.4f s\n",
                    PhaseTimes::phaseName(static_cast<Phase>(K)),
                    P.get(static_cast<Phase>(K)));
      continue;
    }
    if (Line.empty())
      continue;
    // Pick up any new/changed source files before executing.
    E.snoop();
    std::fputs(E.runScript(Line).c_str(), stdout);
  }
  std::printf("\n");
  return 0;
}
