//===- examples/repl.cpp - The interactive MATLAB-like front end ----------------===//
//
// Part of the MaJIC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// The user-facing MaJIC experience (Section 1: "an interactive frontend
// that looks like MATLAB and compiles/optimizes code behind the scenes").
// Statements typed at the prompt run in the interpreter over a persistent
// workspace; function files in watched directories are picked up by the
// snooping repository and compiled speculatively before first use.
//
// Usage:  ./build/examples/repl [directory-with-m-files ...]
//         echo "x = 2 + 2" | ./build/examples/repl
//
// Meta commands: \quit, \repo (repository contents), \phases (timers).
//
//===----------------------------------------------------------------------===//

#include "engine/Engine.h"
#include "engine/Corpus.h"

#include <cstdio>
#include <iostream>
#include <string>

using namespace majic;

int main(int Argc, char **Argv) {
  EngineOptions Opts;
  Opts.Policy = CompilePolicy::Speculative;
  Opts.BackgroundCompileThreads = 2;
  Engine E(Opts);

  // Watch the corpus directory plus any directories on the command line;
  // the snooper queues everything it finds for background speculative
  // compilation (Section 2.5) - the prompt appears immediately, the
  // compiler works while the user types.
  E.watchDirectory(mlibDirectory());
  for (int A = 1; A != Argc; ++A)
    E.watchDirectory(Argv[A]);
  unsigned Loaded = E.snoop();
  std::printf("MaJIC interactive front end (reproduction). %u function(s) "
              "snooped; compiling speculatively on %u background worker(s).\n",
              Loaded, Opts.BackgroundCompileThreads);
  std::printf("Try: s = fibonacci(20), M = mandel(24, 30), \\repo, \\spec, "
              "\\quit\n");

  std::string Line;
  while (true) {
    std::printf(">> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    if (Line == "\\quit" || Line == "\\q")
      break;
    if (Line == "\\repo") {
      std::printf("repository: %zu object(s), %llu hits, %llu misses "
                  "(%llu no-function + %llu no-safe-version), "
                  "%.3f s total compile time\n",
                  E.repository().totalObjects(),
                  static_cast<unsigned long long>(E.repository().lookupHits()),
                  static_cast<unsigned long long>(
                      E.repository().lookupMisses()),
                  static_cast<unsigned long long>(
                      E.repository().lookupMissesNoFunction()),
                  static_cast<unsigned long long>(
                      E.repository().lookupMissesNoSafeVersion()),
                  E.repository().totalCompileSeconds());
      continue;
    }
    if (Line == "\\spec") {
      SpeculationStats S = E.speculationStats();
      std::printf("background speculation: %llu queued, %llu completed, "
                  "%llu dropped, %llu deduped, %llu interpreted-in-flight\n",
                  static_cast<unsigned long long>(S.Queued),
                  static_cast<unsigned long long>(S.Completed),
                  static_cast<unsigned long long>(S.Dropped),
                  static_cast<unsigned long long>(S.DedupedRequests),
                  static_cast<unsigned long long>(S.InFlightInterpreted));
      std::printf("  %.3f s compiled in the background; time to first "
                  "result: %s\n",
                  S.BackgroundCompileSeconds,
                  S.TimeToFirstResultSeconds < 0
                      ? "(no invocation yet)"
                      : (std::to_string(S.TimeToFirstResultSeconds) + " s")
                            .c_str());
      continue;
    }
    if (Line == "\\phases") {
      const PhaseTimes &P = E.phases();
      for (unsigned K = 0; K != static_cast<unsigned>(Phase::NumPhases); ++K)
        std::printf("  %-8s %.4f s\n",
                    PhaseTimes::phaseName(static_cast<Phase>(K)),
                    P.get(static_cast<Phase>(K)));
      continue;
    }
    if (Line.empty())
      continue;
    // Pick up any new/changed source files before executing.
    E.snoop();
    std::fputs(E.runScript(Line).c_str(), stdout);
  }
  std::printf("\n");
  return 0;
}
